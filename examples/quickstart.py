"""Quickstart: create a table, run queries, watch H2O adapt.

Run:  python examples/quickstart.py
"""

from repro import EngineConfig, H2OEngine, generate_table

# A 40-attribute relation of 200k uniform integers, initially stored
# column-major (the paper's preferred starting point: easy to morph).
table = generate_table("readings", num_attrs=40, num_rows=200_000, rng=7)
engine = H2OEngine(table, EngineConfig(window_size=10))

print("Initial storage:")
print(table.layout_summary())
print()

# A recurring analytical pattern: aggregate a hot group of attributes,
# filtered on two more.  After a few repetitions H2O proposes a column
# group for the pattern and materializes it while answering a query.
HOT_QUERY = (
    "SELECT sum(a1 + a2 + a3 + a4 + a5), max(a6), count(*) "
    "FROM readings WHERE a7 < 0 AND a8 > -500000000"
)

for index in range(25):
    report = engine.execute(HOT_QUERY)
    marker = ""
    if report.layout_created:
        marker = (
            f"  <-- built group of {len(report.layout_created)} attrs "
            f"online ({report.reorg_seconds * 1e3:.1f} ms)"
        )
    elif report.adaptation_ran:
        marker = "  <-- adaptation phase ran"
    print(
        f"query {index:2d}: {report.seconds * 1e3:7.2f} ms "
        f"[{report.strategy:5s}] {marker}"
    )

print()
print("Result row:", engine.reports[-1].result.scalars())
print()
print(engine.describe())
