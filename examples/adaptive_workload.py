"""The Fig. 7 story at example scale: H2O vs static row/column engines.

A drifting, recurring-pattern analytical workload runs through four
engines.  The static engines are stuck with their layout; the optimal
oracle gets a free tailored layout per query; H2O adapts online and
should land between the column store and the oracle.

Run:  python examples/adaptive_workload.py
"""

import gc

from repro import ColumnStoreEngine, H2OEngine, OptimalEngine, RowStoreEngine
from repro.bench.harness import warm_table
from repro.workloads import fig7_sequence

workload = fig7_sequence(
    num_attrs=100, num_rows=120_000, num_queries=60, rng=7
)
print(f"workload: {workload.description}")
print(
    f"          {len(workload.pattern_histogram())} distinct access "
    f"patterns, {workload.mean_attrs_per_query():.1f} attrs/query mean"
)
print()

engines = {}
for name, factory in [
    ("row-store", RowStoreEngine),
    ("column-store", ColumnStoreEngine),
    ("optimal", OptimalEngine),
    ("H2O", H2OEngine),
]:
    gc.collect()
    table = workload.make_table(rng=1)
    warm_table(table)
    engine = factory(table)
    for query in workload.queries:
        engine.execute(query)
    engines[name] = engine
    print(f"{name:13s} cumulative: {engine.cumulative_seconds():7.3f} s")

h2o = engines["H2O"]
print()
print("H2O adaptation trace:")
for event in h2o.manager.creation_log:
    print(
        f"  query {event.query_index:2d}: built a "
        f"{len(event.attrs)}-attribute group online "
        f"({event.seconds * 1e3:.1f} ms)"
    )
fused = sum(1 for r in h2o.reports if r.strategy == "fused")
print(
    f"  {fused}/{len(h2o.reports)} queries ran fused on column groups; "
    f"phase totals: "
    + ", ".join(
        f"{k}={v:.3f}s" for k, v in sorted(h2o.phase_totals().items())
    )
)

# Sanity: all engines agreed on every answer.
reference = engines["column-store"].reports
for name, engine in engines.items():
    if name == "column-store":
        continue
    for mine, theirs in zip(engine.reports, reference):
        assert mine.result.allclose(theirs.result)
print("\nall engines returned identical results for all queries")
