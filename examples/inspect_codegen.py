"""Inspect the operators H2O generates on the fly (paper Figs. 5 & 6).

The same query gets completely different specialized source depending on
how the data is physically stored: a single fused loop when one column
group holds everything, and a selection-vector pipeline when the
predicate and projection attributes live in different layouts.

Run:  python examples/inspect_codegen.py
"""

from repro import generate_table, parse_query
from repro.codegen import operator_source
from repro.execution.strategies import AccessPlan, ExecutionStrategy
from repro.sql import analyze_query
from repro.storage.stitcher import stitch_group

table = generate_table("r", 10, 10_000, rng=3, initial_layout="column")

# The paper's running example Q1: two predicates, one arithmetic output.
query = parse_query(
    "SELECT sum(a1 + a2 + a3) FROM r WHERE a4 < 100 AND a5 > -100"
)
info = analyze_query(query, table.schema)

# Case 1 (Fig. 5): all five attributes in a single column group.
single_group, _ = stitch_group(
    table.layouts, ("a1", "a2", "a3", "a4", "a5"), table.schema
)
plan = AccessPlan(ExecutionStrategy.FUSED, (single_group,))
print("=" * 72)
print("Fig. 5 analog: one column group R(a1..a5), fused evaluation")
print("=" * 72)
print(operator_source(info, plan))

# Case 2 (Fig. 6): R1(a1,a2,a3) for the select clause, R2(a4,a5) for the
# predicates — a selection vector connects them.
r1, _ = stitch_group(table.layouts, ("a1", "a2", "a3"), table.schema)
r2, _ = stitch_group(table.layouts, ("a4", "a5"), table.schema)
plan2 = AccessPlan(ExecutionStrategy.LATE, (r1, r2))
print()
print("=" * 72)
print("Fig. 6 analog: R1(a1,a2,a3) + R2(a4,a5), selection vector")
print("=" * 72)
print(operator_source(info, plan2))

# Same structure, different constants -> the cached operator is reused.
from repro.codegen.generator import operator_key
from repro.config import EngineConfig

other = analyze_query(
    parse_query("SELECT sum(a1 + a2 + a3) FROM r WHERE a4 < 7 AND a5 > 3"),
    table.schema,
)
same = operator_key(info, plan, EngineConfig()) == operator_key(
    other, plan, EngineConfig()
)
print()
print(f"operator cache key identical across constants: {same}")
