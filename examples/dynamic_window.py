"""Workload shift and the dynamic adaptation window (paper Fig. 9).

A 60-query sequence abruptly changes its focus attributes after query
15.  With a static 30-query window, the engine cannot re-adapt until the
scheduled boundary; the dynamic window notices the novel access patterns,
shrinks, and re-adapts early.

Run:  python examples/dynamic_window.py
"""

from repro import EngineConfig, H2OEngine
from repro.bench.harness import warm_table
from repro.workloads import fig9_sequence

workload = fig9_sequence(num_attrs=100, num_rows=80_000, rng=5)
print(f"workload: {workload.description}\n")

configs = {
    "static": EngineConfig(
        window_size=30, min_window=30, max_window=30, dynamic_window=False
    ),
    "dynamic": EngineConfig(window_size=30, min_window=8, max_window=60),
}

engines = {}
for name, config in configs.items():
    table = workload.make_table(rng=3)
    warm_table(table)
    engine = H2OEngine(table, config)
    for query in workload.queries:
        engine.execute(query)
    engines[name] = engine

print(f"{'query':>5s} {'static(ms)':>11s} {'dynamic(ms)':>12s}  events")
for index in range(len(workload.queries)):
    static_report = engines["static"].reports[index]
    dynamic_report = engines["dynamic"].reports[index]
    events = []
    if index == 15:
        events.append("<<< workload shifts here")
    if dynamic_report.shift_detected:
        events.append("dynamic: shift detected")
    if dynamic_report.layout_created:
        events.append("dynamic: builds layout")
    if static_report.layout_created:
        events.append("static: builds layout")
    print(
        f"{index:5d} {static_report.seconds * 1e3:11.2f} "
        f"{dynamic_report.seconds * 1e3:12.2f}  {' | '.join(events)}"
    )

print()
for name, engine in engines.items():
    first_post_shift = min(
        (
            e.query_index
            for e in engine.manager.creation_log
            if e.query_index is not None and e.query_index >= 15
        ),
        default=None,
    )
    print(
        f"{name:8s} total {engine.cumulative_seconds():6.3f}s, window "
        f"ended at {engine.window.size}, first post-shift layout at "
        f"query {first_post_shift}"
    )
