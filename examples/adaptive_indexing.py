"""Adaptive indexing beside adaptive layouts (the paper's future work).

The paper closes by naming "(adaptive) indexing together with adaptive
data layouts" as the high-impact next step.  This example runs a
selective, recurring range workload through the plain column store and
through the cracking-augmented one: every query leaves the index a
little more refined, so the predicate phase keeps getting cheaper —
storage that organizes itself around the queries, one level below the
layouts H2O adapts.

Run:  python examples/adaptive_indexing.py
"""

import numpy as np

from repro import ColumnStoreEngine, generate_table
from repro.bench.harness import warm_table
from repro.extensions import CrackingColumnStoreEngine

ROWS = 400_000
QUERIES = 60

rng = np.random.default_rng(21)
thresholds = rng.integers(-(10**9), 10**9, size=QUERIES)
workload = [
    f"SELECT sum(a1 + a2) FROM r WHERE a3 BETWEEN {t} AND {t + 10**7}"
    for t in thresholds
]

# The cracking pipeline is interpreted, so the fair baseline is the
# interpreted column store (codegen off); the generated-kernel engine
# is shown too, as the bar an integrated cracker+codegen would aim for.
from repro import EngineConfig

engines = {}
for name, factory, config in (
    (
        "column-store",
        ColumnStoreEngine,
        EngineConfig(use_codegen=False),
    ),
    ("with cracking", CrackingColumnStoreEngine, None),
    ("column-store+codegen", ColumnStoreEngine, EngineConfig()),
):
    table = generate_table("r", 6, ROWS, rng=2)
    warm_table(table)
    engine = factory(table, config) if config else factory(table)
    for sql in workload:
        engine.execute(sql)
    engines[name] = engine

plain = engines["column-store"]
cracked = engines["with cracking"]
for mine, theirs in zip(cracked.reports, plain.reports):
    assert mine.result.allclose(theirs.result)

print(f"{QUERIES} selective range queries over {ROWS} rows:")
for name, engine in engines.items():
    first = sum(r.seconds for r in engine.reports[:10])
    last = sum(r.seconds for r in engine.reports[-10:])
    print(
        f"  {name:14s} total {engine.cumulative_seconds():6.3f}s | "
        f"first 10: {first * 100:5.1f}ms, last 10: {last * 100:5.1f}ms"
    )

pieces, cracks = cracked.index.stats()["a3"]
touched = cracked.index._columns["a3"].last_touched
print(
    f"\nthe cracker split a3 into {pieces} pieces over {cracks} cracks;"
    f" the final query inspected {touched} of {ROWS} values "
    f"({touched / ROWS:.1%}) where a scan reads 100%"
)
print(
    "early queries pay for cracking big pieces; once the index has "
    "adapted, each range costs two boundary cracks over small pieces "
    "plus one contiguous slice — storage organized by the queries, one "
    "level below the layouts H2O adapts"
)
