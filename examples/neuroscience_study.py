"""Exploratory analysis over a very wide scientific table (paper §1).

The paper motivates adaptive stores with neuro-imaging studies whose
tables have thousands of attributes while each analysis session touches
only a drifting region-of-interest subset.  This example runs such a
session-structured study through H2O and a static row store (how such
data usually ships) and reports what H2O built.

Run:  python examples/neuroscience_study.py
"""

from repro import H2OEngine, RowStoreEngine
from repro.bench.harness import warm_table
from repro.workloads import neuroscience_workload

workload = neuroscience_workload(
    num_rows=60_000,
    num_sessions=6,
    queries_per_session=15,
    extra_metrics=5,  # widen to 212 attributes
    rng=11,
)
print(f"workload: {workload.description}")
print(f"          {workload.mean_attrs_per_query():.1f} attrs/query over "
      f"{workload.table_spec.num_attrs} total")
print()

table_row = workload.make_table(rng=4)
warm_table(table_row)
row_engine = RowStoreEngine(table_row)
for query in workload.queries:
    row_engine.execute(query)

table_h2o = workload.make_table(rng=4)
warm_table(table_h2o)
h2o = H2OEngine(table_h2o)
for query in workload.queries:
    h2o.execute(query)

print(f"row store (as shipped): {row_engine.cumulative_seconds():7.3f} s")
print(f"H2O (adapts online):    {h2o.cumulative_seconds():7.3f} s")
print()
print("H2O built these region-of-interest groups:")
for event in h2o.manager.creation_log:
    roi = ", ".join(event.attrs[:4])
    more = f" ... (+{len(event.attrs) - 4})" if len(event.attrs) > 4 else ""
    print(
        f"  query {event.query_index:3d}: [{roi}{more}] "
        f"({event.seconds * 1e3:.0f} ms, online)"
    )

for mine, theirs in zip(h2o.reports, row_engine.reports):
    assert mine.result.allclose(theirs.result)
print("\nresults identical to the row store on all "
      f"{len(workload.queries)} queries")
