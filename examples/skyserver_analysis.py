"""SkyServer-style analysis: online H2O vs the offline AutoPart tool.

The Fig. 8 scenario: a 128-attribute PhotoObjAll-style table serves 150
template-clustered queries.  AutoPart is given the whole workload up
front, computes one vertical partitioning, applies it (that costs time),
then executes.  H2O starts from the raw row-major table and adapts as
queries arrive.

Run:  python examples/skyserver_analysis.py
"""

from repro import AutoPartEngine, H2OEngine
from repro.bench.harness import warm_table
from repro.workloads import skyserver_workload

workload = skyserver_workload(num_rows=60_000, num_queries=150, rng=13)
print(f"workload: {workload.description}")
print()

# --- AutoPart: perfect workload knowledge, one static answer ------------
table = workload.make_table(rng=2)
warm_table(table)
autopart = AutoPartEngine(table, workload.queries)
partitioning = autopart.prepare()
print(
    f"AutoPart chose {len(partitioning.groups)} fragments, e.g.: "
    + ", ".join(
        "{" + ",".join(sorted(g)[:4]) + ("...}" if len(g) > 4 else "}")
        for g in list(partitioning.groups)[:3]
    )
)
autopart_exec = sum(
    autopart.execute(q).seconds for q in workload.queries
)
autopart_total = autopart_exec + autopart.layout_creation_seconds

# --- H2O: no workload knowledge, adapts per query ------------------------
table2 = workload.make_table(rng=2)
warm_table(table2)
h2o = H2OEngine(table2)
h2o_total = sum(h2o.execute(q).seconds for q in workload.queries)
h2o_creation = h2o.layout_creation_seconds()

print()
print(f"{'engine':10s} {'execution':>10s} {'creation':>10s} {'total':>10s}")
print(
    f"{'AutoPart':10s} {autopart_exec:9.3f}s "
    f"{autopart.layout_creation_seconds:9.3f}s {autopart_total:9.3f}s"
)
print(
    f"{'H2O':10s} {h2o_total - h2o_creation:9.3f}s "
    f"{h2o_creation:9.3f}s {h2o_total:9.3f}s"
)
print()
print(
    f"H2O built {len(h2o.manager.creation_log)} groups online, "
    f"driven by {len(workload.pattern_histogram())} observed patterns"
)
