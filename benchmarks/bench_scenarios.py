"""Greedy vs guarded switching on the adversarial scenario pack.

Replays every scenario in ``repro.workloads.scenarios`` through the
inline engine under both policies and records, per (scenario, policy):
total runtime, reorganization count, and worst-window latency (the
slowest sliding window of ``WINDOW`` consecutive queries — the thrash a
client actually feels when a reorganization lands mid-phase).

The acceptance gates ride on the two scenarios built to punish greedy
(the issue's headline claim):

- on **ping-pong** and **periodic-shift**, guarded performs at most
  *half* of greedy's reorganizations;
- while total runtime stays within 1.10x of greedy's.

Methodology notes. The engine runs with ``parallel_scans=False``: the
scan pool's thread scheduling adds tens-of-ms noise per query, which at
this scale swamps the policy effect being measured (reorganization
spend).  Each (scenario, policy) cell is the best of ``TRIALS``
fresh-table replays — min, not mean, because the contamination is
strictly additive (GC, CPU contention).  The artifact is written to
``BENCH_scenarios.json`` (or ``$BENCH_SCENARIOS_JSON``) so CI records
the trend.

Run directly (``python benchmarks/bench_scenarios.py``) or via pytest.
"""

import json
import os

from repro.config import EngineConfig, scaled_rows
from repro.core.engine import H2OEngine
from repro.sql.parser import parse_query
from repro.workloads.scenarios import SCENARIOS, build_scenario

#: Sliding-window width (queries) for worst-window latency.
WINDOW = 8

#: Fresh-table replays per (scenario, policy); best trial is recorded.
TRIALS = 2

#: The two scenarios the acceptance gates apply to.
GATED = ("ping-pong", "periodic-shift")

#: Scenario-pack shapes at benchmark scale.  The gated adversaries run
#: long (12 phases) so greedy's thrash has room to compound; the other
#: three ride along at their default shapes for the record.
SCENARIO_KWARGS = {
    "periodic-shift": dict(phases=12, phase_len=8),
    "ping-pong": dict(phases=12, phase_len=8),
    "flash-crowd": {},
    "mixed-olap-point": {},
    "trickle-append": {},
}

ENGINE_KNOBS = dict(
    window_size=4,
    min_window=2,
    max_window=12,
    amortization_threshold=1.0,
    parallel_scans=False,
)

#: Hedging factor for the guarded side.  High enough that a phase of
#: the gated adversaries cannot pay a hot trio's hedged build cost by
#: itself — only genuinely recurring groups clear the gate.
HEDGING_FACTOR = 6.0


def _artifact_path() -> str:
    return os.environ.get("BENCH_SCENARIOS_JSON", "BENCH_scenarios.json")


def _config(policy: str) -> EngineConfig:
    if policy == "guarded":
        return EngineConfig(
            adaptation_policy="guarded",
            hedging_factor=HEDGING_FACTOR,
            **ENGINE_KNOBS,
        )
    return EngineConfig(**ENGINE_KNOBS)


def _replay_once(scenario, policy: str) -> dict:
    engine = H2OEngine(scenario.make_table(), _config(policy))
    seconds = []
    for op in scenario.ops:
        if op[0] == "query":
            seconds.append(engine.execute(parse_query(op[1])).seconds)
        else:
            engine.table.append_rows(
                scenario.append_batch(op[1], op[2])
            )
    worst = max(
        sum(seconds[i : i + WINDOW])
        for i in range(max(1, len(seconds) - WINDOW + 1))
    )
    return {
        "policy": policy,
        "queries": len(seconds),
        "runtime_seconds": sum(seconds),
        "worst_window_seconds": worst,
        "reorgs": len(engine.manager.creation_log),
        "deferrals": engine.policy.deferrals,
        "switches": engine.policy.switch_count,
    }


def _measure_cell(scenario, policy: str) -> dict:
    trials = [_replay_once(scenario, policy) for _ in range(TRIALS)]
    best = min(trials, key=lambda t: t["runtime_seconds"])
    # Reorg/deferral counts are deterministic across trials (same seed,
    # same stream, serial engine); timing is the only noisy column.
    return best


def measure() -> dict:
    num_rows = scaled_rows(262_144)
    data = {
        "num_rows": num_rows,
        "trials": TRIALS,
        "window": WINDOW,
        "hedging_factor": HEDGING_FACTOR,
        "scenarios": {},
    }
    for name in SCENARIOS:
        scenario = build_scenario(
            name, 0, num_rows=num_rows, **SCENARIO_KWARGS[name]
        )
        cell = {
            policy: _measure_cell(scenario, policy)
            for policy in ("greedy-paper", "guarded")
        }
        greedy, guarded = cell["greedy-paper"], cell["guarded"]
        cell["runtime_ratio"] = (
            guarded["runtime_seconds"] / greedy["runtime_seconds"]
            if greedy["runtime_seconds"]
            else 0.0
        )
        data["scenarios"][name] = cell
    with open(_artifact_path(), "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
    return data


def test_guarded_halves_reorgs_within_runtime_budget():
    data = measure()
    for name in GATED:
        cell = data["scenarios"][name]
        greedy, guarded = cell["greedy-paper"], cell["guarded"]
        assert 2 * guarded["reorgs"] <= greedy["reorgs"], (
            f"{name}: guarded performed {guarded['reorgs']} reorgs vs "
            f"greedy's {greedy['reorgs']} — not at most half"
        )
        assert cell["runtime_ratio"] <= 1.10, (
            f"{name}: guarded runtime {guarded['runtime_seconds']:.3f}s "
            f"exceeded 1.10x greedy's {greedy['runtime_seconds']:.3f}s "
            f"({cell['runtime_ratio']:.2f}x)"
        )


if __name__ == "__main__":
    result = measure()
    print(json.dumps(result, indent=2, sort_keys=True))
    for name, cell in result["scenarios"].items():
        greedy, guarded = cell["greedy-paper"], cell["guarded"]
        print(
            f"{name}: reorgs {greedy['reorgs']} -> {guarded['reorgs']}, "
            f"runtime ratio {cell['runtime_ratio']:.2f}x, worst window "
            f"{greedy['worst_window_seconds']:.3f}s -> "
            f"{guarded['worst_window_seconds']:.3f}s"
        )
