"""Fig. 10 — the three layouts under each query template (20 attrs)."""

import pytest

from repro.execution.strategies import AccessPlan, ExecutionStrategy
from repro.sql.analyzer import analyze_query
from repro.workloads.microbench import (
    aggregation_query,
    arithmetic_query,
    projection_query,
)

ACCESSED = [f"a{i}" for i in range(1, 21)]

TEMPLATES = {
    "projection": projection_query(ACCESSED),
    "aggregation": aggregation_query(ACCESSED),
    "arithmetic": arithmetic_query(ACCESSED),
    "agg_filtered": aggregation_query(
        ACCESSED[:-1], where_attrs=[ACCESSED[-1]], selectivity=0.4
    ),
}


def _plan(table, layout_name, info):
    if layout_name == "row":
        row = [l for l in table.layouts if l.width == table.schema.width]
        return AccessPlan(ExecutionStrategy.FUSED, (row[0],))
    if layout_name == "group":
        group = table.find_group(set(ACCESSED))
        return AccessPlan(ExecutionStrategy.FUSED, (group,))
    return AccessPlan(
        ExecutionStrategy.LATE, table.narrowest_cover(info.all_attrs)
    )


@pytest.mark.parametrize("template", list(TEMPLATES))
@pytest.mark.parametrize("layout", ["row", "group", "column"])
def test_fig10_point(benchmark, bench_table, executor, template, layout):
    query = TEMPLATES[template]
    info = analyze_query(query, bench_table.schema)
    plan = _plan(bench_table, layout, info)
    executor.run_plan(info, plan)  # warm codegen
    benchmark(executor.run_plan, info, plan)
