"""Fig. 9 — static vs dynamic adaptation window under a workload shift."""

import pytest

from repro.bench.harness import warm_table
from repro.config import EngineConfig
from repro.core.engine import H2OEngine
from repro.workloads.sequences import fig9_sequence

WORKLOAD = fig9_sequence(num_attrs=80, num_rows=30_000, rng=5)

CONFIGS = {
    "static": EngineConfig(
        window_size=30, min_window=30, max_window=30, dynamic_window=False
    ),
    "dynamic": EngineConfig(window_size=30, min_window=8, max_window=60),
}


@pytest.mark.parametrize("variant", list(CONFIGS))
def test_fig9_window_variant(benchmark, variant):
    config = CONFIGS[variant]

    def run():
        table = WORKLOAD.make_table(rng=3)
        warm_table(table)
        engine = H2OEngine(table, config)
        for query in WORKLOAD.queries:
            engine.execute(query)
        return engine

    benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
