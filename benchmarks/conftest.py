"""Shared fixtures for the pytest-benchmark suite.

These benchmarks exercise the same code paths as the full experiment
drivers (``python -m repro.bench <id>``) at a reduced, fixed size so the
whole suite runs in a few minutes.  The full paper-style sweeps and the
recorded results live in EXPERIMENTS.md.
"""

import pytest

from repro.bench.harness import warm_table
from repro.config import EngineConfig
from repro.execution.executor import Executor
from repro.storage.generator import generate_table
from repro.storage.stitcher import stitch_group

ROWS = 60_000
ATTRS = 100


@pytest.fixture(scope="session")
def bench_table():
    """Column-major table + row layout + a 20-attribute group."""
    table = generate_table(
        "r", ATTRS, ROWS, rng=101, initial_layout="column"
    )
    row, _ = stitch_group(
        table.layouts, table.schema.names, table.schema, full_width=True
    )
    table.add_layout(row)
    group, _ = stitch_group(
        table.layouts,
        tuple(f"a{i}" for i in range(1, 21)),
        table.schema,
    )
    table.add_layout(group)
    warm_table(table)
    return table


@pytest.fixture(scope="session")
def executor():
    return Executor(EngineConfig())


@pytest.fixture(scope="session")
def interpreted_executor():
    return Executor(EngineConfig(use_codegen=False))
