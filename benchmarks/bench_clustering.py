"""Adaptive clustering + encoded layouts: the bytes-per-scan story.

Three physical states of the same >= 1M-row table, same logical bytes:

- **shuffled** — rows in a seeded random order: zone maps exist but a
  selective range query can prune (almost) nothing;
- **clustered** — the adaptive engine, hands-free, sorts the table on
  the hot predicate column mid-stream; the same query then skips >= 90%
  of morsels with bit-identical answers;
- **clustered + encoded** — both knobs on: the engine additionally
  materializes an encoded (dictionary / bit-packed) replica of the
  low-cardinality probe column, and the compiled equality scan runs
  over 1-byte codes instead of 8-byte values.

A separate **encoded probe** isolates the codec speedup from the
advisor: the same equality scan over an explicit encoded replica vs the
plain column, min-of-``TRIALS`` wall time both ways.

Gates (all data math, honest on any host — the scan pool uses 4
threads only when the host has >= 4 usable cores, else it stays
serial, and no gate depends on the thread count):

- shuffled ``pruned_fraction`` < 0.1 and clustered >= 0.9, answers
  bit-identical across all three states;
- the hands-free run must actually materialize an encoded replica of
  the low-cardinality column;
- the encoded equality scan is >= 1.3x the plain scan (8 bytes -> 1
  byte per scanned value; bandwidth math, not hardware).

The measurement lands in ``BENCH_clustering.json`` (or
``$BENCH_CLUSTERING_JSON``).  Run directly
(``python benchmarks/bench_clustering.py``) or via pytest.
"""

import json
import os
import time

import numpy as np

from repro.config import EngineConfig, scaled_rows
from repro.core.engine import H2OEngine
from repro.execution.parallel import ScanPool
from repro.storage import Schema, Table
from repro.storage.encoded_layout import encode_column
from repro.storage.generator import shuffle_columns
from repro.storage.layout import LayoutKind

NUM_ROWS = scaled_rows(1_048_576, minimum=1_048_576)
MORSEL_ROWS = 16_384
TRIALS = 2
LOW_CARDINALITY = 50

SELECTIVE_SQL = "SELECT sum(a3), count(*) FROM r WHERE a1 < {t}"
# COUNT-only keeps the probe about scanned bytes: the count-mask late
# path needs no selection vector, so predicate evaluation over 1-byte
# codes vs 8-byte values is the whole scan.
EQUALITY_SQL = "SELECT count(*) FROM r WHERE a2 = 7"


def _artifact_path() -> str:
    return os.environ.get("BENCH_CLUSTERING_JSON", "BENCH_clustering.json")


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _scan_threads() -> int:
    return 4 if _usable_cores() >= 4 else 1


def _make_shuffled_table() -> Table:
    """a1 clustered-by-construction then shuffled; a2 low-cardinality."""
    rng = np.random.default_rng(29)
    columns = {
        "a1": np.arange(NUM_ROWS, dtype=np.int64),
        "a2": rng.integers(0, LOW_CARDINALITY, size=NUM_ROWS, dtype=np.int64),
        "a3": rng.integers(-(10**9), 10**9, size=NUM_ROWS, dtype=np.int64),
        "a4": rng.integers(-(10**9), 10**9, size=NUM_ROWS, dtype=np.int64),
    }
    columns = shuffle_columns(columns, rng)
    schema = Schema.from_names(tuple(columns))
    return Table.from_columns("r", schema, columns, "column")


def _config(**overrides) -> EngineConfig:
    knobs = dict(
        morsel_rows=MORSEL_ROWS,
        parallel_threshold_rows=MORSEL_ROWS,
        max_scan_threads=_scan_threads(),
        # Static runs: no adaptation churn unless a sweep turns it on.
        window_size=10**6,
        max_window=10**6,
        dynamic_window=False,
    )
    knobs.update(overrides)
    return EngineConfig(**knobs)


_ADAPT_KNOBS = dict(
    window_size=4,
    min_window=2,
    max_window=12,
    dynamic_window=True,
    amortization_threshold=0.1,
    adaptive_clustering=True,
    cluster_rows_min=1024,
)


def _engine(table: Table, **overrides) -> H2OEngine:
    engine = H2OEngine(table, _config(**overrides))
    engine.executor.scan_pool = ScanPool(max_threads=_scan_threads())
    return engine


def _time_best(engine: H2OEngine, sql: str) -> dict:
    best = float("inf")
    report = None
    for _ in range(TRIALS):
        started = time.perf_counter()
        report = engine.execute(sql)
        best = min(best, time.perf_counter() - started)
    return {
        "seconds": best,
        "morsels_total": report.morsels_total,
        "morsels_pruned": report.morsels_pruned,
        "pruned_fraction": (
            report.morsels_pruned / max(1, report.morsels_total)
        ),
        "answer": list(report.result.scalars()),
    }


def _measure_shuffled(sql: str) -> dict:
    engine = _engine(_make_shuffled_table())
    engine.execute(sql)  # warm: plan + kernel cached
    return _time_best(engine, sql)


def _measure_clustered(sql: str) -> dict:
    """Hands-free: drive the selective query until the engine clusters."""
    engine = _engine(_make_shuffled_table(), **_ADAPT_KNOBS)
    queries_to_cluster = 0
    for _ in range(30):
        if engine.table.cluster_key == "a1":
            break
        queries_to_cluster += 1
        engine.execute(sql)
    run = _time_best(engine, sql)
    run["queries_to_cluster"] = queries_to_cluster
    run["cluster_key"] = engine.table.cluster_key
    run["clustered_fraction"] = engine.table.clustered_fraction
    return run


def _measure_clustered_encoded(selective_sql: str, equality_sql: str) -> dict:
    """Both knobs on; a mixed stream must cluster *and* encode."""
    engine = _engine(
        _make_shuffled_table(),
        encoded_layouts=True,
        encoding_min_rows=1024,
        **_ADAPT_KNOBS,
    )
    queries_driven = 0
    for _ in range(40):
        encoded = any(
            layout.kind is LayoutKind.ENCODED and layout.attrs == ("a2",)
            for layout in engine.table.layouts
        )
        if engine.table.cluster_key == "a1" and encoded:
            break
        queries_driven += 1
        engine.execute(selective_sql)
        engine.execute(equality_sql)
    run = _time_best(engine, equality_sql)
    run["selective"] = _time_best(engine, selective_sql)
    run["queries_driven"] = queries_driven
    run["cluster_key"] = engine.table.cluster_key
    run["clustered_fraction"] = engine.table.clustered_fraction
    run["layouts"] = [layout.describe() for layout in engine.table.layouts]
    run["encoded_materialized"] = any(
        layout.kind is LayoutKind.ENCODED for layout in engine.table.layouts
    )
    return run


def _measure_encoded_probe(sql: str) -> dict:
    """Codec speedup in isolation: plain vs explicit encoded replica."""
    plain = _engine(_make_shuffled_table())
    plain.execute(sql)
    plain_run = _time_best(plain, sql)

    table = _make_shuffled_table()
    replica = encode_column("a2", table.column("a2"))
    assert replica is not None, "low-cardinality column refused to encode"
    table.add_layout(replica)
    encoded = _engine(table)
    encoded.execute(sql)
    encoded_run = _time_best(encoded, sql)
    return {
        "sql": sql,
        "encoding": replica.describe(),
        "plain": plain_run,
        "encoded": encoded_run,
        "speedup": plain_run["seconds"] / encoded_run["seconds"],
        "answers_identical": plain_run["answer"] == encoded_run["answer"],
    }


def measure() -> dict:
    threshold = NUM_ROWS // 25
    selective_sql = SELECTIVE_SQL.format(t=threshold)
    shuffled = _measure_shuffled(selective_sql)
    clustered = _measure_clustered(selective_sql)
    clustered_encoded = _measure_clustered_encoded(
        selective_sql, EQUALITY_SQL
    )
    encoded_probe = _measure_encoded_probe(EQUALITY_SQL)
    data = {
        "cores": _usable_cores(),
        "scan_threads": _scan_threads(),
        "num_rows": NUM_ROWS,
        "morsel_rows": MORSEL_ROWS,
        "trials": TRIALS,
        "selective_sql": selective_sql,
        "qualifying_fraction": threshold / NUM_ROWS,
        "shuffled": shuffled,
        "clustered": clustered,
        "clustered_encoded": clustered_encoded,
        "encoded_probe": encoded_probe,
        "clustering_speedup": shuffled["seconds"] / clustered["seconds"],
        "answers_identical": (
            shuffled["answer"]
            == clustered["answer"]
            == clustered_encoded["selective"]["answer"]
        ),
    }
    with open(_artifact_path(), "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
    return data


def test_clustering_and_encoding_gates():
    data = measure()
    assert data["answers_identical"], (
        "physical state changed the selective answer"
    )
    assert data["shuffled"]["pruned_fraction"] < 0.1, (
        f"shuffled rows should start nearly unprunable, got "
        f"{data['shuffled']['pruned_fraction']:.0%}"
    )
    assert data["clustered"]["cluster_key"] == "a1", (
        "adaptive clustering never fired on the hot column"
    )
    assert data["clustered"]["pruned_fraction"] >= 0.9, (
        f"clustering only lifted pruning to "
        f"{data['clustered']['pruned_fraction']:.0%}"
    )
    assert data["clustered_encoded"]["encoded_materialized"], (
        "hands-free run never materialized an encoded replica: "
        f"{data['clustered_encoded']['layouts']}"
    )
    probe = data["encoded_probe"]
    assert probe["answers_identical"], "encoding changed the answer"
    assert probe["speedup"] >= 1.3, (
        f"encoded equality scan only {probe['speedup']:.2f}x of plain "
        f"({probe['encoding']})"
    )


if __name__ == "__main__":
    result = measure()
    print(json.dumps(result, indent=2, sort_keys=True))
    probe = result["encoded_probe"]
    print(
        f"\npruning: {result['shuffled']['pruned_fraction']:.0%} shuffled "
        f"-> {result['clustered']['pruned_fraction']:.0%} clustered "
        f"({result['clustering_speedup']:.2f}x, "
        f"{result['clustered']['queries_to_cluster']} queries to cluster); "
        f"encoded equality scan {probe['speedup']:.2f}x of plain "
        f"({probe['encoding']})"
    )
