"""Fig. 12 — one group vs the same attributes split across five."""

import pytest

from repro.execution.strategies import AccessPlan, ExecutionStrategy
from repro.sql.analyzer import analyze_query
from repro.storage.stitcher import stitch_group
from repro.workloads.microbench import aggregation_query

ATTRS = [f"a{i}" for i in range(1, 26)]


@pytest.fixture(scope="module")
def plans(bench_table):
    query = aggregation_query(
        ATTRS[:-1], where_attrs=[ATTRS[-1]], selectivity=0.5
    )
    info = analyze_query(query, bench_table.schema)
    single, _ = stitch_group(bench_table.layouts, ATTRS, bench_table.schema)
    five = []
    for start in range(0, 25, 5):
        group, _ = stitch_group(
            bench_table.layouts, ATTRS[start : start + 5],
            bench_table.schema,
        )
        five.append(group)
    return info, {
        "1_group": AccessPlan(ExecutionStrategy.FUSED, (single,)),
        "5_groups": AccessPlan(ExecutionStrategy.FUSED, tuple(five)),
    }


@pytest.mark.parametrize("variant", ["1_group", "5_groups"])
def test_fig12_point(benchmark, plans, executor, variant):
    info, plan_map = plans
    plan = plan_map[variant]
    executor.run_plan(info, plan)
    benchmark(executor.run_plan, info, plan)
