"""Fig. 11 — whole 20-attribute group vs a perfectly tailored group."""

import pytest

from repro.execution.strategies import AccessPlan, ExecutionStrategy
from repro.sql.analyzer import analyze_query
from repro.storage.stitcher import stitch_group
from repro.workloads.microbench import aggregation_query

USEFUL = 5  # of the 20-attribute group


@pytest.fixture(scope="module")
def case(bench_table):
    group = bench_table.find_group({f"a{i}" for i in range(1, 21)})
    attrs = [f"a{i}" for i in range(1, USEFUL)]
    where = f"a{USEFUL}"
    query = aggregation_query(attrs, where_attrs=[where], selectivity=0.5)
    info = analyze_query(query, bench_table.schema)
    tailored, _ = stitch_group(
        bench_table.layouts, info.all_attrs, bench_table.schema
    )
    return info, group, tailored


def test_fig11_whole_group(benchmark, case, executor):
    info, group, _tailored = case
    plan = AccessPlan(ExecutionStrategy.FUSED, (group,))
    executor.run_plan(info, plan)
    benchmark(executor.run_plan, info, plan)


def test_fig11_perfect_group(benchmark, case, executor):
    info, _group, tailored = case
    plan = AccessPlan(ExecutionStrategy.FUSED, (tailored,))
    executor.run_plan(info, plan)
    benchmark(executor.run_plan, info, plan)
