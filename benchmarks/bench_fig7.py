"""Fig. 7 — one adaptive sequence per engine (reduced to 30 queries).

Measures the cumulative cost of running the recurring-pattern workload
through each engine; expected ordering per round matches Table 1.
"""

import pytest

from repro.baselines import ColumnStoreEngine, OptimalEngine, RowStoreEngine
from repro.bench.harness import warm_table
from repro.core.engine import H2OEngine
from repro.workloads.sequences import fig7_sequence

WORKLOAD = fig7_sequence(
    num_attrs=60, num_rows=40_000, num_queries=30, rng=7
)

ENGINES = {
    "h2o": H2OEngine,
    "column": ColumnStoreEngine,
    "row": RowStoreEngine,
    "optimal": OptimalEngine,
}


@pytest.mark.parametrize("engine_name", list(ENGINES))
def test_fig7_sequence(benchmark, engine_name):
    factory = ENGINES[engine_name]

    def run():
        table = WORKLOAD.make_table(rng=1)
        warm_table(table)
        engine = factory(table)
        for query in WORKLOAD.queries:
            engine.execute(query)
        return engine

    benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
