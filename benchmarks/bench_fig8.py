"""Fig. 8 — H2O vs AutoPart on the SkyServer surrogate (reduced)."""

import pytest

from repro.baselines import AutoPartEngine
from repro.bench.harness import warm_table
from repro.core.engine import H2OEngine
from repro.workloads.skyserver import skyserver_workload

WORKLOAD = skyserver_workload(num_rows=20_000, num_queries=60, rng=13)


def test_fig8_autopart_total(benchmark):
    """Offline fit + physical partitioning + execution."""

    def run():
        table = WORKLOAD.make_table(rng=2)
        warm_table(table)
        engine = AutoPartEngine(table, WORKLOAD.queries)
        engine.prepare()
        for query in WORKLOAD.queries:
            engine.execute(query)
        return engine

    benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)


def test_fig8_h2o_total(benchmark):
    """Fully online adaptation over the same queries."""

    def run():
        table = WORKLOAD.make_table(rng=2)
        warm_table(table)
        engine = H2OEngine(table)
        for query in WORKLOAD.queries:
            engine.execute(query)
        return engine

    benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
