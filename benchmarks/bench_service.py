"""Service throughput scaling — QPS at 1/2/4/8 workers plus overload.

Measures the concurrent query service on a steady-state mixed workload:

- **scaling sweep** — queries/second, p50, and p99 latency at 1, 2, 4,
  and 8 workers over the same shape mix (big scans, so NumPy's
  GIL-released kernels can genuinely overlap);
- **overload probe** — floods a 1-worker, small-capacity service and
  records how many submissions were gracefully rejected (back-pressure,
  not crashes).

The measurement lands in ``BENCH_service.json`` (or
``$BENCH_SERVICE_JSON``).  The scaling assertion is honest about the
host: parallel speedup needs parallel hardware, so the >= 1.5x bar for
4 workers vs 1 only applies when the machine has at least 2 usable
cores.  On a single-core host the sweep still runs and the test instead
asserts the service does not *collapse* under added workers (>= 0.6x)
and that scan overlap was actually observed.

Run directly (``python benchmarks/bench_service.py``) or via pytest.
"""

import json
import os
import time

from repro.config import EngineConfig
from repro.errors import ServiceOverloadedError
from repro.service import H2OService
from repro.storage.generator import generate_table

WORKER_COUNTS = (1, 2, 4, 8)
QUERIES_PER_RUN = 320
NUM_ATTRS = 24
NUM_ROWS = 60_000


def _artifact_path() -> str:
    return os.environ.get("BENCH_SERVICE_JSON", "BENCH_service.json")


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _workload():
    """A steady mix of shapes with rotating literals (fast-lane heavy)."""
    queries = []
    for i in range(QUERIES_PER_RUN):
        threshold = (i % 40 - 20) * 10_000_000
        kind = i % 4
        if kind == 0:
            sql = (
                f"SELECT sum(a1 + a2 + a3) FROM r WHERE a4 > {threshold}"
            )
        elif kind == 1:
            sql = f"SELECT count(*) FROM r WHERE a5 < {threshold}"
        elif kind == 2:
            sql = (
                f"SELECT min(a6), max(a7) FROM r "
                f"WHERE a8 > {threshold} AND a6 < 900000000"
            )
        else:
            sql = f"SELECT sum(a9 - a10) FROM r WHERE a11 > {threshold}"
        queries.append(sql)
    return queries


def _measure_workers(num_workers: int, queries) -> dict:
    service = H2OService(
        config=EngineConfig(adaptation_mode="background"),
        num_workers=num_workers,
        max_pending=4 * QUERIES_PER_RUN,
        name=f"bench-{num_workers}w",
    )
    try:
        service.register(
            generate_table("r", num_attrs=NUM_ATTRS, num_rows=NUM_ROWS, rng=23)
        )
        # Warmup: let the fast lane and background adaptation settle.
        for sql in queries[:40]:
            service.execute(sql, timeout=120.0)
        started = time.perf_counter()
        futures = [
            service.submit(sql, timeout=300.0) for sql in queries
        ]
        for future in futures:
            future.result(300.0)
        elapsed = time.perf_counter() - started
        snap = service.stats.snapshot()
        return {
            "workers": num_workers,
            "queries": len(queries),
            "seconds": elapsed,
            "qps": len(queries) / elapsed,
            "p50_ms": snap["p50_ms"],
            "p99_ms": snap["p99_ms"],
            "peak_concurrency": snap["peak_concurrency"],
        }
    finally:
        service.close()


def _measure_overload() -> dict:
    service = H2OService(
        config=EngineConfig(),
        num_workers=1,
        max_pending=8,
        name="bench-overload",
    )
    try:
        service.register(
            generate_table("r", num_attrs=NUM_ATTRS, num_rows=NUM_ROWS, rng=23)
        )
        futures = []
        rejected = 0
        for i in range(200):
            try:
                futures.append(
                    service.submit(
                        f"SELECT sum(a1 + a2) FROM r WHERE a3 > {i}",
                        timeout=300.0,
                    )
                )
            except ServiceOverloadedError:
                rejected += 1
        for future in futures:
            future.result(300.0)
        snap = service.stats.snapshot()
        return {
            "submitted": 200,
            "admitted": len(futures),
            "rejected": rejected,
            "completed": snap["completed"],
            "failed": snap["failed"],
        }
    finally:
        service.close()


def measure() -> dict:
    queries = _workload()
    sweep = [_measure_workers(n, queries) for n in WORKER_COUNTS]
    by_workers = {entry["workers"]: entry for entry in sweep}
    data = {
        "cores": _usable_cores(),
        "num_rows": NUM_ROWS,
        "num_attrs": NUM_ATTRS,
        "queries_per_run": QUERIES_PER_RUN,
        "sweep": sweep,
        "scaling_4v1": by_workers[4]["qps"] / by_workers[1]["qps"],
        "overload": _measure_overload(),
    }
    with open(_artifact_path(), "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
    return data


def test_service_scales_and_sheds_load():
    data = measure()
    ratio = data["scaling_4v1"]
    if data["cores"] >= 2:
        assert ratio >= 1.5, (
            f"4-worker QPS only {ratio:.2f}x of 1-worker on "
            f"{data['cores']} cores"
        )
    else:
        # Single-core host: parallel speedup is physically impossible;
        # require that concurrency does not collapse throughput and
        # that scans actually overlapped.
        assert ratio >= 0.6, (
            f"4 workers collapsed throughput to {ratio:.2f}x on a "
            "single-core host"
        )
    multi = [e for e in data["sweep"] if e["workers"] >= 4]
    assert all(e["peak_concurrency"] >= 2 for e in multi), (
        "no scan overlap observed with >= 4 workers"
    )
    overload = data["overload"]
    assert overload["rejected"] > 0, "overload probe never hit capacity"
    assert overload["completed"] == overload["admitted"]
    assert overload["failed"] == 0


if __name__ == "__main__":
    result = measure()
    print(json.dumps(result, indent=2, sort_keys=True))
    for entry in result["sweep"]:
        print(
            f"{entry['workers']} workers: {entry['qps']:7.1f} QPS  "
            f"p50={entry['p50_ms']:.2f}ms p99={entry['p99_ms']:.2f}ms "
            f"(peak concurrency {entry['peak_concurrency']})"
        )
    print(
        f"\n4v1 scaling: {result['scaling_4v1']:.2f}x on "
        f"{result['cores']} core(s); overload rejected "
        f"{result['overload']['rejected']}/200 submissions"
    )
