"""Gateway serving throughput and the WAL durability ablation.

Two measurements against a real in-process gateway (asyncio server on a
private loop, actual sockets on 127.0.0.1):

- **query sweep** — HTTP QPS and p50/p99 latency of a repeated-shape
  aggregation at 1, 4 and 16 concurrent clients (one keep-alive
  connection per client thread).  The gates are host-honest: on a
  single-core runner more clients only add queueing, so the sweep
  asserts correctness, sane latency ordering (p99 >= p50) and that
  concurrency does not collapse throughput (worst config >= 0.2x best),
  not linear scaling;
- **WAL ablation** — append throughput from 4 concurrent clients with
  the write-ahead log fsync'd per group commit vs disabled entirely.
  Durability has a price, group commit caps it: the bench records both
  rates plus how many riders each fsync amortized, and asserts the
  coalescing actually happened (commits < acknowledged appends).

The measurement lands in ``BENCH_gateway.json`` (or
``$BENCH_GATEWAY_JSON``).  Run directly
(``python benchmarks/bench_gateway.py``) or via pytest.
"""

import asyncio
import contextlib
import json
import os
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.config import EngineConfig, GatewayConfig
from repro.gateway import DurableStore, Gateway, GatewayClient
from repro.service import percentile

NUM_ROWS = 50_000
QUERIES_PER_CLIENT = 40
CLIENT_SWEEP = (1, 4, 16)
APPEND_CLIENTS = 4
APPENDS_PER_CLIENT = 50
SQL = "SELECT sum(a), max(b), count(*) FROM r WHERE a > 100"


def _artifact_path() -> str:
    return os.environ.get("BENCH_GATEWAY_JSON", "BENCH_gateway.json")


@contextlib.contextmanager
def running_gateway(data_dir, **overrides):
    overrides.setdefault("port", 0)
    overrides.setdefault("snapshot_every_records", 0)
    config = GatewayConfig(**overrides)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    store = DurableStore(
        data_dir,
        engine_config=EngineConfig(),
        gateway_config=config,
        num_workers=2,
    )
    gateway = Gateway(store, config)
    asyncio.run_coroutine_threadsafe(gateway.start(), loop).result(30)
    try:
        yield gateway
    finally:
        asyncio.run_coroutine_threadsafe(
            gateway.close(checkpoint=False), loop
        ).result(120)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()


def _seed(client) -> None:
    rng = np.random.default_rng(7)
    client.create_table(
        "r",
        [{"name": "a", "dtype": "int64"}, {"name": "b", "dtype": "int64"}],
        {
            "a": rng.integers(-1000, 1000, size=NUM_ROWS, dtype=np.int64).tolist(),
            "b": rng.integers(-1000, 1000, size=NUM_ROWS, dtype=np.int64).tolist(),
        },
    )


def _query_sweep(port, expected_rows):
    sweep = {}
    for clients in CLIENT_SWEEP:
        latencies = []
        lock = threading.Lock()

        def worker(_):
            mine = []
            with GatewayClient("127.0.0.1", port, timeout=120.0) as client:
                for _ in range(QUERIES_PER_CLIENT):
                    started = time.perf_counter()
                    answer = client.query(SQL)
                    mine.append(time.perf_counter() - started)
                    assert answer["rows"] == expected_rows
            with lock:
                latencies.extend(mine)

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            list(pool.map(worker, range(clients)))
        elapsed = time.perf_counter() - started
        millis = sorted(s * 1e3 for s in latencies)
        sweep[str(clients)] = {
            "clients": clients,
            "queries": len(latencies),
            "qps": len(latencies) / elapsed,
            "p50_ms": percentile(millis, 0.5),
            "p99_ms": percentile(millis, 0.99),
            "elapsed_seconds": elapsed,
        }
    return sweep


def _append_rate(data_dir, wal_enabled):
    with running_gateway(
        data_dir,
        wal_enabled=wal_enabled,
        wal_fsync=wal_enabled,
        group_commit_window=0.002,
    ) as gateway:
        port = gateway.port
        with GatewayClient("127.0.0.1", port) as setup:
            setup.create_table(
                "w",
                [{"name": "x", "dtype": "int64"}],
                {"x": []},
            )

        def worker(base):
            with GatewayClient("127.0.0.1", port, timeout=120.0) as client:
                for i in range(APPENDS_PER_CLIENT):
                    client.append("w", {"x": [base * APPENDS_PER_CLIENT + i]})

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=APPEND_CLIENTS) as pool:
            list(pool.map(worker, range(APPEND_CLIENTS)))
        elapsed = time.perf_counter() - started
        total = APPEND_CLIENTS * APPENDS_PER_CLIENT
        with GatewayClient("127.0.0.1", port) as check:
            count = int(check.query("SELECT count(*) FROM w")["rows"][0][0])
        stats = gateway.store.stats()
        return {
            "wal_enabled": wal_enabled,
            "appends": total,
            "rows_confirmed": count,
            "appends_per_second": total / elapsed,
            "elapsed_seconds": elapsed,
            "group_commits": stats["wal_group_commits"],
            "fsyncs": stats["wal_fsyncs"],
            "riders_per_commit": (
                stats["wal_records_written"] / stats["wal_group_commits"]
                if stats["wal_group_commits"]
                else 0.0
            ),
        }


def measure():
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        with running_gateway(tmp / "query") as gateway:
            port = gateway.port
            with GatewayClient("127.0.0.1", port, timeout=120.0) as client:
                _seed(client)
                expected = client.query(SQL)["rows"]
            sweep = _query_sweep(port, expected)
        wal_on = _append_rate(tmp / "wal_on", wal_enabled=True)
        wal_off = _append_rate(tmp / "wal_off", wal_enabled=False)
    data = {
        "num_rows": NUM_ROWS,
        "sql": SQL,
        "cores": os.cpu_count(),
        "query_sweep": sweep,
        "wal_ablation": {
            "on": wal_on,
            "off": wal_off,
            "durability_cost": (
                wal_off["appends_per_second"] / wal_on["appends_per_second"]
                if wal_on["appends_per_second"]
                else 0.0
            ),
        },
    }
    with open(_artifact_path(), "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
    return data


def test_gateway_serving_and_durability():
    data = measure()
    sweep = data["query_sweep"]
    for entry in sweep.values():
        assert entry["qps"] > 0
        assert entry["p99_ms"] >= entry["p50_ms"]
        assert entry["queries"] == entry["clients"] * QUERIES_PER_CLIENT
    best = max(entry["qps"] for entry in sweep.values())
    worst = min(entry["qps"] for entry in sweep.values())
    assert worst >= 0.2 * best, (
        "concurrency collapsed throughput: "
        f"worst={worst:.0f} best={best:.0f} QPS"
    )
    ablation = data["wal_ablation"]
    for side in (ablation["on"], ablation["off"]):
        assert side["rows_confirmed"] == side["appends"]
    on = ablation["on"]
    assert on["group_commits"] < on["appends"] + 1, (
        "group commit never coalesced: "
        f"{on['group_commits']} commits for {on['appends']} appends"
    )
    assert on["fsyncs"] == on["group_commits"]


if __name__ == "__main__":
    result = measure()
    print(json.dumps(result, indent=2, sort_keys=True))
    sweep = result["query_sweep"]
    for key in sorted(sweep, key=int):
        entry = sweep[key]
        print(
            f"{entry['clients']:>2} clients: {entry['qps']:7.0f} QPS  "
            f"p50={entry['p50_ms']:.2f}ms p99={entry['p99_ms']:.2f}ms"
        )
    ablation = result["wal_ablation"]
    print(
        f"appends/s: wal+fsync={ablation['on']['appends_per_second']:.0f} "
        f"({ablation['on']['riders_per_commit']:.1f} riders/commit), "
        f"no-wal={ablation['off']['appends_per_second']:.0f} "
        f"(cost {ablation['durability_cost']:.2f}x)"
    )
