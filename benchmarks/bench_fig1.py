"""Fig. 1 — DBMS-C vs DBMS-R at low/high projectivity (selectivity 40%).

Expected shape: the column engine wins the low-projectivity point, the
row engine the high-projectivity point.
"""

import pytest

from repro.baselines import ColumnStoreEngine, RowStoreEngine
from repro.bench.harness import warm_table
from repro.storage.generator import generate_table
from repro.workloads.microbench import aggregation_query

ROWS = 40_000
ATTRS = 120


def _query(fraction):
    count = max(1, int(fraction * ATTRS))
    attrs = [f"a{i}" for i in range(1, count + 1)]
    return aggregation_query(attrs, where_attrs=attrs, selectivity=0.4)


@pytest.fixture(scope="module")
def engines():
    column = ColumnStoreEngine(
        generate_table("r", ATTRS, ROWS, rng=1, initial_layout="column")
    )
    row = RowStoreEngine(
        generate_table("r", ATTRS, ROWS, rng=1, initial_layout="column")
    )
    warm_table(column.table)
    warm_table(row.table)
    return {"column": column, "row": row}


@pytest.mark.parametrize("engine_name", ["column", "row"])
@pytest.mark.parametrize("fraction", [0.05, 0.8])
def test_fig1_point(benchmark, engines, engine_name, fraction):
    engine = engines[engine_name]
    query = _query(fraction)
    engine.execute(query)  # warm the operator cache
    benchmark(engine.execute, query)
