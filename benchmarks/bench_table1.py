"""Table 1 — cumulative execution time of the Fig. 7 sequence.

The benchmark measures the H2O engine's cumulative run; the recorded
comparison against row/column/optimal (the actual Table 1 rows) is
produced by ``python -m repro.bench table1`` and recorded in
EXPERIMENTS.md.  A correctness assertion checks that H2O's answers match
the column baseline's on every query of the sequence.
"""

from repro.baselines import ColumnStoreEngine
from repro.bench.harness import warm_table
from repro.core.engine import H2OEngine
from repro.workloads.sequences import fig7_sequence

WORKLOAD = fig7_sequence(
    num_attrs=60, num_rows=40_000, num_queries=30, rng=17
)


def test_table1_h2o_cumulative(benchmark):
    def run():
        table = WORKLOAD.make_table(rng=1)
        warm_table(table)
        engine = H2OEngine(table)
        return [engine.execute(q).result for q in WORKLOAD.queries]

    results = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)

    reference_table = WORKLOAD.make_table(rng=1)
    reference = ColumnStoreEngine(reference_table)
    for query, mine in zip(WORKLOAD.queries, results):
        assert mine.allclose(reference.execute(query).result)
