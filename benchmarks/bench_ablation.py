"""Ablations: operator cache, codegen, lazy materialization (DESIGN.md §5)."""

import pytest

from repro.bench.harness import warm_table
from repro.config import EngineConfig
from repro.core.engine import H2OEngine
from repro.workloads.sequences import fig7_sequence

WORKLOAD = fig7_sequence(
    num_attrs=60, num_rows=30_000, num_queries=25, rng=23
)

VARIANTS = {
    "full": EngineConfig(),
    "no_operator_cache": EngineConfig(operator_cache=False),
    "no_codegen": EngineConfig(use_codegen=False),
    "eager_materialization": EngineConfig(materialization="eager"),
    "no_materialization": EngineConfig(materialization="never"),
}


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_ablation_sequence(benchmark, variant):
    config = VARIANTS[variant]

    def run():
        table = WORKLOAD.make_table(rng=1)
        warm_table(table)
        engine = H2OEngine(table, config)
        for query in WORKLOAD.queries:
            engine.execute(query)
        return engine

    benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
