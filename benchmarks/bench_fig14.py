"""Fig. 14 — generic (interpreted) operator vs generated code.

The generated path runs with the operator cache disabled, so template
instantiation + compilation is paid on every measured iteration, as the
paper charges its external-compiler runs.
"""

import pytest

from repro.config import EngineConfig
from repro.execution.executor import Executor
from repro.execution.strategies import AccessPlan, ExecutionStrategy
from repro.sql.analyzer import analyze_query
from repro.workloads.microbench import aggregation_query, arithmetic_query

ACCESSED = [f"a{i}" for i in range(1, 21)]

QUERIES = {
    "aggregation": aggregation_query(
        ACCESSED[:-1], where_attrs=[ACCESSED[-1]], selectivity=0.4
    ),
    "arithmetic": arithmetic_query(
        ACCESSED[:-1], where_attrs=[ACCESSED[-1]], selectivity=0.4
    ),
}


@pytest.fixture(scope="module")
def generated_executor():
    return Executor(EngineConfig(operator_cache=False))


def _group_plan(table, info):
    group = table.find_group({f"a{i}" for i in range(1, 21)})
    return AccessPlan(ExecutionStrategy.FUSED, (group,))


@pytest.mark.parametrize("query_name", list(QUERIES))
def test_fig14_generic(
    benchmark, bench_table, interpreted_executor, query_name
):
    info = analyze_query(QUERIES[query_name], bench_table.schema)
    plan = _group_plan(bench_table, info)
    benchmark(interpreted_executor.run_plan, info, plan)


@pytest.mark.parametrize("query_name", list(QUERIES))
def test_fig14_generated(
    benchmark, bench_table, generated_executor, query_name
):
    info = analyze_query(QUERIES[query_name], bench_table.schema)
    plan = _group_plan(bench_table, info)
    benchmark(generated_executor.run_plan, info, plan)
