"""Fig. 2(a–c) — projectivity 20%, selectivities 100% / 40% / 1%."""

import pytest

from repro.baselines import ColumnStoreEngine, RowStoreEngine
from repro.bench.harness import warm_table
from repro.storage.generator import generate_table
from repro.workloads.microbench import aggregation_query

ROWS = 40_000
ATTRS = 120
ACCESSED = [f"a{i}" for i in range(1, 25)]


@pytest.fixture(scope="module")
def engines():
    column = ColumnStoreEngine(
        generate_table("r", ATTRS, ROWS, rng=2, initial_layout="column")
    )
    row = RowStoreEngine(
        generate_table("r", ATTRS, ROWS, rng=2, initial_layout="column")
    )
    warm_table(column.table)
    warm_table(row.table)
    return {"column": column, "row": row}


@pytest.mark.parametrize("engine_name", ["column", "row"])
@pytest.mark.parametrize("selectivity", [None, 0.4, 0.01])
def test_fig2_point(benchmark, engines, engine_name, selectivity):
    engine = engines[engine_name]
    where = ACCESSED if selectivity is not None else ()
    query = aggregation_query(
        ACCESSED, where_attrs=where, selectivity=selectivity
    )
    engine.execute(query)
    benchmark(engine.execute, query)
