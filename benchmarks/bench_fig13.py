"""Fig. 13 — online vs offline reorganization (Q1: row-major source)."""

import pytest

from repro.bench.harness import warm_table
from repro.config import EngineConfig
from repro.core.reorganizer import Reorganizer
from repro.execution.executor import Executor
from repro.execution.strategies import AccessPlan, ExecutionStrategy
from repro.sql.analyzer import analyze_query
from repro.storage.generator import generate_table
from repro.workloads.microbench import aggregation_query

ROWS = 50_000
GROUP_ATTRS = [f"a{i}" for i in range(1, 11)]
QUERY = aggregation_query(GROUP_ATTRS, func="sum")


@pytest.fixture(scope="module")
def source_table():
    table = generate_table("r", 60, ROWS, rng=41, initial_layout="row")
    warm_table(table)
    return table


def test_fig13_offline(benchmark, source_table):
    reorganizer = Reorganizer()
    executor = Executor(EngineConfig())
    info = analyze_query(QUERY, source_table.schema)

    def run():
        outcome = reorganizer.offline(source_table, GROUP_ATTRS)
        plan = AccessPlan(ExecutionStrategy.FUSED, (outcome.group,))
        return executor.run_plan(info, plan)

    benchmark(run)


def test_fig13_online(benchmark, source_table):
    reorganizer = Reorganizer()
    info = analyze_query(QUERY, source_table.schema)

    def run():
        return reorganizer.online(source_table, GROUP_ATTRS, info)

    benchmark(run)
