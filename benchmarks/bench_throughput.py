"""Steady-state throughput — the plan-cache fast lane on vs off.

Runs the ``throughput`` experiment's measurement at benchmark scale and
asserts the headline claim of the fast lane: once the store has adapted
and the workload repeats its query shapes, enabling the signature-keyed
plan cache at least doubles queries/second.  The measurement is written
to a JSON artifact (``BENCH_throughput.json`` or
``$BENCH_THROUGHPUT_JSON``) so CI can record the trend.

Run directly (``python benchmarks/bench_throughput.py``) or via pytest.
"""

import json
import os

from repro.bench.experiments.throughput import run_throughput


def _artifact_path() -> str:
    return os.environ.get("BENCH_THROUGHPUT_JSON", "BENCH_throughput.json")


def measure():
    data = run_throughput()
    with open(_artifact_path(), "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
    return data


def test_fast_lane_doubles_steady_state_qps():
    data = measure()
    assert data["fast_lane_hits"] > 0.9 * data["total_queries"] / 2, (
        "the fast lane barely engaged: "
        f"{data['fast_lane_hits']}/{data['total_queries']} hits"
    )
    assert data["speedup"] >= 2.0, (
        "steady-state speedup below 2x: "
        f"on={data['qps_on']:.0f} QPS, off={data['qps_off']:.0f} QPS "
        f"({data['speedup']:.2f}x); trials on={data['qps_on_trials']} "
        f"off={data['qps_off_trials']}"
    )


if __name__ == "__main__":
    result = measure()
    print(json.dumps(result, indent=2, sort_keys=True))
    print(
        f"\nsteady-state speedup: {result['speedup']:.2f}x "
        f"(on={result['qps_on']:.0f} QPS, off={result['qps_off']:.0f} QPS)"
    )
