"""Extension: adaptive indexing (database cracking) vs full scans.

Steady-state behaviour after the index has adapted: a two-sided range
costs two boundary cracks over small pieces plus one contiguous slice,
versus a full-column predicate scan.
"""

import numpy as np
import pytest

from repro.bench.harness import warm_table
from repro.baselines import ColumnStoreEngine
from repro.config import EngineConfig
from repro.extensions import CrackingColumnStoreEngine
from repro.storage.generator import generate_table

ROWS = 200_000


def _workload(count=30, seed=21):
    rng = np.random.default_rng(seed)
    thresholds = rng.integers(-(10**9), 10**9, size=count)
    return [
        f"SELECT sum(a1 + a2) FROM r WHERE a3 BETWEEN {t} AND {t + 10**7}"
        for t in thresholds
    ]


@pytest.fixture(scope="module")
def warmed_cracking_engine():
    table = generate_table("r", 4, ROWS, rng=2)
    warm_table(table)
    engine = CrackingColumnStoreEngine(table)
    for sql in _workload():  # adapt the index first
        engine.execute(sql)
    return engine


@pytest.fixture(scope="module")
def scan_engine():
    table = generate_table("r", 4, ROWS, rng=2)
    warm_table(table)
    return ColumnStoreEngine(table, EngineConfig(use_codegen=False))


def test_cracking_steady_state(benchmark, warmed_cracking_engine):
    query = _workload(count=1, seed=99)[0]
    warmed_cracking_engine.execute(query)  # crack this range's bounds
    benchmark(warmed_cracking_engine.execute, query)


def test_scan_baseline(benchmark, scan_engine):
    query = _workload(count=1, seed=99)[0]
    scan_engine.execute(query)
    benchmark(scan_engine.execute, query)
