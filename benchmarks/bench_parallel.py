"""Morsel-parallel scan scaling, shard-process scaling, and pruning.

Three measurements on a >= 1M-row table:

- **thread sweep** — wall time of a scan-heavy aggregation at 1, 2, and
  4 scan threads (the engine's shared pool is swapped per run), plus the
  4v1 speedup ratio;
- **process sweep** — the same aggregation through a
  :class:`~repro.sharding.coordinator.ShardedSystem` at 1, 2, and 4
  shard processes (each shard a full engine over its shared-memory
  slice), plus the best-shard vs best-thread ratio — the GIL-ceiling
  question the sharding tier exists to answer;
- **pruning ablation** — a selective (< 5% qualifying) range query over
  a clustered column with ``zone_maps`` on vs off: fraction of morsels
  skipped, wall time both ways, and bit-identical answers.

The measurement lands in ``BENCH_parallel.json`` (or
``$BENCH_PARALLEL_JSON``).  The scaling assertions are honest about the
host: parallelism needs parallel hardware.  Threads: >= 2x for 4v1 only
with >= 4 usable cores (>= 1.5x at 2).  Processes: >= 1.5x over the
best thread config with >= 4 cores; on fewer cores, extra processes
merely time-slice one CPU and pay scatter overhead, so the sweep still
runs but the gate relaxes to no-collapse (>= 0.2x of the best thread
config) + bit-identical answers at every shard count.  The pruning
bar — a < 5% qualifying query skips >= 80% of morsels — holds on any
host: pruning is data math, not hardware.

Run directly (``python benchmarks/bench_parallel.py``) or via pytest.
"""

import json
import os
import time

import numpy as np

from repro.config import EngineConfig, scaled_rows
from repro.core.engine import H2OEngine
from repro.core.system import build_system
from repro.execution.parallel import ScanPool
from repro.storage import Schema, Table
from repro.storage.generator import shuffle_columns

THREAD_COUNTS = (1, 2, 4)
SHARD_COUNTS = (1, 2, 4)
NUM_ROWS = scaled_rows(1_048_576, minimum=1_048_576)
MORSEL_ROWS = 16_384
REPEATS = 5

SCAN_SQL = "SELECT sum(a1 + a2 + a3), min(a4), max(a5) FROM r WHERE a6 > {t}"
SELECTIVE_SQL = "SELECT sum(a2), count(*) FROM r WHERE a1 < {t}"


def _artifact_path() -> str:
    return os.environ.get("BENCH_PARALLEL_JSON", "BENCH_parallel.json")


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _make_table() -> Table:
    """1M+ rows, clustered a1 (the pruning target), random a2..a6."""
    rng = np.random.default_rng(41)
    columns = {"a1": np.arange(NUM_ROWS, dtype=np.int64)}
    for i in range(2, 7):
        columns[f"a{i}"] = rng.integers(
            -(10**9), 10**9, size=NUM_ROWS, dtype=np.int64
        )
    schema = Schema.from_names(tuple(columns))
    return Table.from_columns("r", schema, columns, "column")


def _config(**overrides) -> EngineConfig:
    knobs = dict(
        morsel_rows=MORSEL_ROWS,
        parallel_threshold_rows=MORSEL_ROWS,
        max_scan_threads=4,
        # Keep the sweep about scan time: no adaptation churn mid-run.
        window_size=10**6,
        max_window=10**6,
        dynamic_window=False,
    )
    knobs.update(overrides)
    return EngineConfig(**knobs)


def _time_best(engine: H2OEngine, sql_template: str) -> dict:
    """Best-of-N wall time (plus the report of the final run)."""
    best = float("inf")
    report = None
    for i in range(REPEATS):
        sql = sql_template.format(t=0)
        started = time.perf_counter()
        report = engine.execute(sql)
        best = min(best, time.perf_counter() - started)
    return {"seconds": best, "report": report}


def _measure_threads(table: Table) -> list:
    sweep = []
    for threads in THREAD_COUNTS:
        engine = H2OEngine(table, _config())
        engine.executor.scan_pool = ScanPool(max_threads=threads)
        engine.execute(SCAN_SQL.format(t=0))  # warm: plan + kernel cached
        timing = _time_best(engine, SCAN_SQL)
        report = timing["report"]
        sweep.append(
            {
                "threads": threads,
                "seconds": timing["seconds"],
                "rows_per_second": NUM_ROWS / timing["seconds"],
                "scan_threads_used": report.scan_threads_used,
                "parallel_scan": report.parallel_scan,
                "morsels_total": report.morsels_total,
                "answer": list(report.result.scalars()),
            }
        )
    return sweep


def _measure_shards(table: Table) -> list:
    """The same scan through 1/2/4 shard *processes* (shared memory).

    Each shard runs single-threaded inline (the coordinator forces
    ``parallel_scans=False`` per worker), so this isolates process-level
    parallelism: N full engines, each scanning its slice of the table
    from /dev/shm, partials gathered over the framed pipe protocol.
    """
    sweep = []
    for shards in SHARD_COUNTS:
        system = build_system(_config(shard_count=shards))
        try:
            system.register(table)
            system.execute(SCAN_SQL.format(t=0))  # warm: spawn + plan
            best = float("inf")
            report = None
            for _ in range(REPEATS):
                started = time.perf_counter()
                report = system.execute(SCAN_SQL.format(t=0))
                best = min(best, time.perf_counter() - started)
            sweep.append(
                {
                    "shards": shards,
                    "seconds": best,
                    "rows_per_second": NUM_ROWS / best,
                    "shards_used": report.shards_used,
                    "strategy": report.strategy,
                    "answer": list(report.result.scalars()),
                }
            )
        finally:
            system.close()
    return sweep


def _make_shuffled_table() -> Table:
    """The probe table with its rows physically shuffled.

    Same bytes as :func:`_make_table` rows, but one seeded permutation
    destroys a1's arrival-order clustering — the worst case for zone
    maps, which adaptive clustering must repair hands-free.
    """
    rng = np.random.default_rng(41)
    columns = {"a1": np.arange(NUM_ROWS, dtype=np.int64)}
    for i in range(2, 7):
        columns[f"a{i}"] = rng.integers(
            -(10**9), 10**9, size=NUM_ROWS, dtype=np.int64
        )
    columns = shuffle_columns(columns, rng)
    schema = Schema.from_names(tuple(columns))
    return Table.from_columns("r", schema, columns, "column")


def _measure_pruning(table: Table) -> dict:
    # < 5% qualifying: a1 < NUM_ROWS // 25.  The probe starts from
    # *shuffled* rows (zone maps on arrival order prune nothing) and
    # lets the adaptive engine cluster on a1 mid-stream; the timed runs
    # then measure pruning over the repaired order.
    threshold = NUM_ROWS // 25
    sql = SELECTIVE_SQL.format(t=threshold)
    adapt_knobs = dict(
        window_size=4,
        min_window=2,
        max_window=12,
        dynamic_window=True,
        amortization_threshold=0.1,
        adaptive_clustering=True,
        cluster_rows_min=1024,
    )
    runs = {}
    before = None
    queries_to_cluster = 0
    for label, zone_maps in (("pruned", True), ("unpruned", False)):
        engine = H2OEngine(
            _make_shuffled_table(), _config(zone_maps=zone_maps, **adapt_knobs)
        )
        engine.executor.scan_pool = ScanPool(max_threads=4)
        first = engine.execute(sql)
        if label == "pruned":
            before = {
                "morsels_total": first.morsels_total,
                "morsels_pruned": first.morsels_pruned,
                "pruned_fraction": (
                    first.morsels_pruned / max(1, first.morsels_total)
                ),
            }
            for _ in range(30):
                if engine.table.cluster_key == "a1":
                    break
                queries_to_cluster += 1
                engine.execute(sql)
        best = float("inf")
        report = None
        for _ in range(REPEATS):
            started = time.perf_counter()
            report = engine.execute(sql)
            best = min(best, time.perf_counter() - started)
        runs[label] = {
            "seconds": best,
            "morsels_total": report.morsels_total,
            "morsels_pruned": report.morsels_pruned,
            "answer": list(report.result.scalars()),
        }
        if label == "pruned":
            runs[label]["cluster_key"] = engine.table.cluster_key
            runs[label]["clustered_fraction"] = engine.table.clustered_fraction
    pruned = runs["pruned"]
    total = max(1, pruned["morsels_total"])
    return {
        "sql": sql,
        "qualifying_fraction": threshold / NUM_ROWS,
        "before_clustering": before,
        "queries_to_cluster": queries_to_cluster,
        "pruned": pruned,
        "unpruned": runs["unpruned"],
        "pruned_fraction": pruned["morsels_pruned"] / total,
        "speedup": runs["unpruned"]["seconds"] / pruned["seconds"],
        "answers_identical": pruned["answer"] == runs["unpruned"]["answer"],
    }


def measure() -> dict:
    table = _make_table()
    sweep = _measure_threads(table)
    by_threads = {entry["threads"]: entry for entry in sweep}
    shard_sweep = _measure_shards(table)
    best_thread = min(entry["seconds"] for entry in sweep)
    best_shard = min(entry["seconds"] for entry in shard_sweep)
    data = {
        "cores": _usable_cores(),
        "num_rows": NUM_ROWS,
        "morsel_rows": MORSEL_ROWS,
        "sweep": sweep,
        "scaling_4v1": by_threads[1]["seconds"] / by_threads[4]["seconds"],
        "scaling_2v1": by_threads[1]["seconds"] / by_threads[2]["seconds"],
        "shard_sweep": shard_sweep,
        "best_thread_seconds": best_thread,
        "best_shard_seconds": best_shard,
        "process_vs_best_thread": best_thread / best_shard,
        "pruning": _measure_pruning(table),
    }
    with open(_artifact_path(), "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
    return data


def test_parallel_scan_scales_and_prunes():
    data = measure()
    sweep = {entry["threads"]: entry for entry in data["sweep"]}
    # Identical answers at every thread count (bit-identity bar).
    answers = {tuple(entry["answer"]) for entry in data["sweep"]}
    assert len(answers) == 1, f"thread count changed the answer: {answers}"
    ratio = data["scaling_4v1"]
    if data["cores"] >= 4:
        assert ratio >= 2.0, (
            f"4-thread scan only {ratio:.2f}x of 1-thread on "
            f"{data['cores']} cores"
        )
    elif data["cores"] >= 2:
        assert ratio >= 1.5, (
            f"4-thread scan only {ratio:.2f}x of 1-thread on "
            f"{data['cores']} cores"
        )
    else:
        # Single-core host: speedup is physically impossible; require
        # that fan-out does not collapse the scan and actually engaged.
        assert ratio >= 0.5, (
            f"morsel fan-out collapsed the scan to {ratio:.2f}x on a "
            "single-core host"
        )
    assert sweep[4]["parallel_scan"], "4-thread run never went parallel"
    assert sweep[4]["scan_threads_used"] >= 2
    assert sweep[1]["scan_threads_used"] == 1
    # Process sweep: every shard count must agree bit-for-bit with the
    # thread-sweep answer (the aggregation gather contract), and the
    # scatter must have actually fanned out.
    shard_answers = {tuple(e["answer"]) for e in data["shard_sweep"]}
    assert shard_answers == answers, (
        f"sharding changed the answer: {shard_answers} vs {answers}"
    )
    by_shards = {e["shards"]: e for e in data["shard_sweep"]}
    for shards, entry in by_shards.items():
        assert entry["shards_used"] == shards, entry
    ratio = data["process_vs_best_thread"]
    if data["cores"] >= 4:
        assert ratio >= 1.5, (
            f"best shard config only {ratio:.2f}x of best thread config "
            f"on {data['cores']} cores"
        )
    else:
        # Too few cores for process parallelism to win: N workers
        # time-slice the CPU and pay scatter/gather overhead on top.
        # Require that sharding does not collapse the scan.
        assert ratio >= 0.2, (
            f"sharded scatter-gather collapsed the scan to {ratio:.2f}x "
            f"of the best thread config on {data['cores']} core(s)"
        )
    pruning = data["pruning"]
    assert pruning["answers_identical"], "pruning changed the answer"
    assert pruning["before_clustering"]["pruned_fraction"] <= 0.1, (
        "shuffled rows should start nearly unprunable, got "
        f"{pruning['before_clustering']['pruned_fraction']:.0%}"
    )
    assert pruning["pruned"]["cluster_key"] == "a1", (
        "adaptive clustering never fired on the probe column"
    )
    assert pruning["pruned_fraction"] >= 0.8, (
        f"selective query only skipped {pruning['pruned_fraction']:.0%} "
        "of morsels"
    )
    assert pruning["unpruned"]["morsels_pruned"] == 0


if __name__ == "__main__":
    result = measure()
    print(json.dumps(result, indent=2, sort_keys=True))
    for entry in result["sweep"]:
        print(
            f"{entry['threads']} threads: {entry['seconds'] * 1e3:8.1f} ms  "
            f"({entry['rows_per_second'] / 1e6:6.1f} Mrows/s, "
            f"used {entry['scan_threads_used']})"
        )
    for entry in result["shard_sweep"]:
        print(
            f"{entry['shards']} shards:  {entry['seconds'] * 1e3:8.1f} ms  "
            f"({entry['rows_per_second'] / 1e6:6.1f} Mrows/s, "
            f"{entry['strategy']})"
        )
    pruning = result["pruning"]
    print(
        f"\n4v1 scaling: {result['scaling_4v1']:.2f}x on "
        f"{result['cores']} core(s); best shard config "
        f"{result['process_vs_best_thread']:.2f}x of best thread config; "
        f"pruning skipped {pruning['pruned_fraction']:.0%} of morsels "
        f"({pruning['speedup']:.2f}x vs unpruned)"
    )
