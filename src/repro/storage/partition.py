"""Abstract vertical partitionings.

A :class:`Partitioning` is the *logical* description of a layout
configuration: an ordered collection of attribute groups.  The advisor
(paper section 3.2) searches over partitionings; the layout manager turns
chosen groups into physical :class:`~repro.storage.column_group.ColumnGroup`
objects.  By default a partitioning must cover the schema exactly once,
but H2O also keeps *replicated* groups ("the same piece of data may be
stored in more than one format"), so overlapping configurations can be
represented with ``allow_overlap=True``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Sequence, Tuple

from ..errors import LayoutError
from .schema import Schema

Group = FrozenSet[str]


class Partitioning:
    """An ordered set of attribute groups over one schema."""

    __slots__ = ("_schema", "_groups", "_allow_overlap")

    def __init__(
        self,
        schema: Schema,
        groups: Iterable[Iterable[str]],
        allow_overlap: bool = False,
        require_cover: bool = True,
    ) -> None:
        normalized: List[Group] = []
        seen: set = set()
        for group in groups:
            frozen = frozenset(group)
            if not frozen:
                raise LayoutError("empty group in partitioning")
            unknown = [n for n in frozen if n not in schema]
            if unknown:
                raise LayoutError(
                    f"partitioning references unknown attributes: {unknown}"
                )
            if frozen in seen:
                continue  # identical duplicate groups collapse
            if not allow_overlap and seen & {frozenset({n}) for n in frozen}:
                pass  # cheap pre-check is not sufficient; real check below
            normalized.append(frozen)
            seen.add(frozen)
        if not allow_overlap:
            counted: set = set()
            for group in normalized:
                overlap = counted & group
                if overlap:
                    raise LayoutError(
                        f"overlapping attributes across groups: "
                        f"{sorted(overlap)}"
                    )
                counted |= group
        if require_cover:
            covered = frozenset().union(*normalized) if normalized else frozenset()
            missing = set(schema.names) - covered
            if missing:
                raise LayoutError(
                    f"partitioning does not cover attributes: "
                    f"{sorted(missing)}"
                )
        self._schema = schema
        self._groups = tuple(normalized)
        self._allow_overlap = allow_overlap

    # Introspection --------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def groups(self) -> Tuple[Group, ...]:
        return self._groups

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self) -> Iterator[Group]:
        return iter(self._groups)

    def __contains__(self, group: Iterable[str]) -> bool:
        return frozenset(group) in set(self._groups)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partitioning):
            return NotImplemented
        return (
            self._schema == other._schema
            and frozenset(self._groups) == frozenset(other._groups)
        )

    def __hash__(self) -> int:
        return hash((self._schema, frozenset(self._groups)))

    def __repr__(self) -> str:
        shown = ", ".join(
            "{" + ",".join(sorted(g)) + "}" for g in self._groups[:4]
        )
        if len(self._groups) > 4:
            shown += f", ... ({len(self._groups)} groups)"
        return f"Partitioning({shown})"

    def group_of(self, attr: str) -> Group:
        """The first group containing ``attr`` (raises if uncovered)."""
        for group in self._groups:
            if attr in group:
                return group
        raise LayoutError(f"attribute {attr!r} is not in any group")

    def groups_covering(self, attrs: Iterable[str]) -> Tuple[Group, ...]:
        """A minimal-ish set of groups that together contain ``attrs``.

        Greedy set cover: repeatedly pick the group covering the most
        still-uncovered attributes, breaking ties toward narrower groups
        (less useless width to scan).
        """
        needed = set(attrs)
        chosen: List[Group] = []
        while needed:
            best: "Group | None" = None
            best_key = (-1, 0)
            for group in self._groups:
                covered = len(needed & group)
                if covered == 0:
                    continue
                key = (covered, -len(group))
                if key > best_key:
                    best_key = key
                    best = group
            if best is None:
                raise LayoutError(
                    f"attributes not covered by any group: {sorted(needed)}"
                )
            chosen.append(best)
            needed -= best
        return tuple(chosen)

    def merge(self, first: Iterable[str], second: Iterable[str]) -> "Partitioning":
        """A new partitioning with two groups replaced by their union."""
        a, b = frozenset(first), frozenset(second)
        current = list(self._groups)
        if a not in current or b not in current:
            raise LayoutError("merge: both groups must exist")
        if a == b:
            return self
        merged = a | b
        new_groups = [g for g in current if g not in (a, b)]
        new_groups.append(merged)
        return Partitioning(
            self._schema,
            new_groups,
            allow_overlap=self._allow_overlap,
            require_cover=False,
        )

    def signature(self) -> FrozenSet[Group]:
        """Order-independent identity of this configuration."""
        return frozenset(self._groups)


def row_partitioning(schema: Schema) -> Partitioning:
    """The row-major configuration: one group with every attribute."""
    return Partitioning(schema, [schema.names])


def column_partitioning(schema: Schema) -> Partitioning:
    """The column-major configuration: one singleton group per attribute."""
    return Partitioning(schema, [[name] for name in schema.names])


def partitioning_from_sets(
    schema: Schema, groups: Sequence[Iterable[str]]
) -> Partitioning:
    """Build a (possibly overlapping, possibly partial) configuration."""
    return Partitioning(
        schema, groups, allow_overlap=True, require_cover=False
    )
