"""Encoded column layouts: dictionary and bit-packed codecs.

ByteStore-style compressed layout family members living *alongside* the
plain ``SingleColumn``/``ColumnGroup`` layouts of a table (they are
additive replicas, never the sole provider of an attribute).  Scanning
an encoded column reads 1–4 bytes per value instead of 8; the codegen
templates evaluate comparison predicates **directly on the codes**
(dictionary-code range comparison, packed-word threshold scans) and
decode only qualifying rows, so selective scans get cheaper per byte
without giving up bit-exact answers.

Codec selection (:func:`encode_column`) is driven by per-column stats:

- **bit-packed** (int64 only): value range fits an unsigned 8/16/32-bit
  code; stores ``value - offset``.  Order-preserving, so a predicate
  literal translates to a single integer threshold on the codes.
- **dictionary**: cardinality at most ``dict_max_cardinality``; stores
  per-row codes into a *sorted* dictionary.  Sortedness makes every
  comparison a code-range test computed with two ``searchsorted`` calls
  against the dictionary buffer at kernel run time (literals stay
  runtime parameters, so operator caching is unaffected).

Bit-exactness discipline (the ``test_io_roundtrip.py`` contract): float
dictionaries are built over distinct **bit patterns**, ordered by
``(isnan, value, bits)`` — ``-0.0`` and ``+0.0`` keep separate codes
(adjacent, so ``searchsorted`` spans both for a ``0.0`` literal, which
matches numpy's ``==``), NaNs sort last with their payloads preserved,
and decoding reproduces the original array byte for byte.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import LayoutError
from .layout import Layout, LayoutKind

#: Default cardinality ceiling for dictionary encoding (kept in sync
#: with ``EngineConfig.dict_max_cardinality``).
DEFAULT_DICT_MAX_CARDINALITY = 4096


def _smallest_uint(max_code: int) -> np.dtype:
    """Narrowest unsigned dtype that can hold codes ``0..max_code``."""
    if max_code <= np.iinfo(np.uint8).max:
        return np.dtype(np.uint8)
    if max_code <= np.iinfo(np.uint16).max:
        return np.dtype(np.uint16)
    if max_code <= np.iinfo(np.uint32).max:
        return np.dtype(np.uint32)
    return np.dtype(np.uint64)


def _sorted_float_dictionary(
    values: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """(dictionary, codes) over distinct float64 *bit patterns*.

    The dictionary is ordered by ``(isnan, value, bits)``: all finite
    and infinite values ascending (with ``-0.0`` immediately before
    ``+0.0``), NaN payloads last — exactly the order ``searchsorted``
    needs for code-space range predicates.
    """
    bits = np.ascontiguousarray(values).view(np.int64)
    unique_bits, inverse = np.unique(bits, return_inverse=True)
    unique_vals = unique_bits.view(np.float64)
    order = np.lexsort(
        (unique_bits, unique_vals, np.isnan(unique_vals))
    )
    rank = np.empty(order.shape[0], dtype=np.intp)
    rank[order] = np.arange(order.shape[0], dtype=np.intp)
    return unique_vals[order].copy(), rank[inverse.ravel()]


class EncodedColumn(Layout):
    """Shared behaviour of the encoded single-attribute layouts."""

    @property
    def kind(self) -> LayoutKind:
        return LayoutKind.ENCODED

    @property
    def name(self) -> str:
        return self._name  # type: ignore[attr-defined]

    @property
    def attrs(self) -> Tuple[str, ...]:
        return (self._name,)  # type: ignore[attr-defined]

    @property
    def codes(self) -> np.ndarray:
        """The per-row code array (the layout's scan target)."""
        return self._codes  # type: ignore[attr-defined]

    @property
    def data(self) -> np.ndarray:
        """Alias for :attr:`codes` — the buffer generic scans bind."""
        return self._codes  # type: ignore[attr-defined]

    @property
    def num_rows(self) -> int:
        return int(self._codes.shape[0])  # type: ignore[attr-defined]

    @property
    def scan_bytes_per_value(self) -> int:
        """Bytes read per value during a code-space scan (cost model)."""
        return int(self._codes.dtype.itemsize)  # type: ignore[attr-defined]

    # Subclass contract ----------------------------------------------------

    @property
    def codec(self) -> str:
        raise NotImplementedError

    @property
    def value_dtype(self) -> np.dtype:
        """Dtype of the *decoded* values (what expressions compute on)."""
        raise NotImplementedError

    def encoding_signature(self) -> Tuple:
        """Hashable codec identity for the operator-cache key.

        Everything a generated kernel *burns into source* must appear
        here; runtime buffers (the dictionary) must not.
        """
        raise NotImplementedError

    def _decode_codes(self, codes: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def reordered(self, perm: np.ndarray) -> "EncodedColumn":
        raise NotImplementedError

    # Shared plumbing ------------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        if name != self._name:  # type: ignore[attr-defined]
            raise LayoutError(
                f"attribute {name!r} is not stored in this layout "
                f"({self.describe()})"
            )
        return self._decode_codes(self._codes)  # type: ignore[attr-defined]

    def extended(self, columns: Dict[str, np.ndarray]) -> "EncodedColumn":
        """A new encoded column with the given rows appended.

        Appends may introduce values outside the current dictionary or
        packing range, so the codec is rebuilt over the full decoded
        column — correctness first; the reorganizer re-evaluates whether
        the encoding still pays off on the next adaptation cycle.

        Raises :class:`LayoutError` when the appended values outgrow the
        codec family entirely (a bit-packed span no narrow code dtype
        can hold): ``Table.append_rows`` treats that as "drop the
        replica", since encoded layouts are additive.
        """
        name = self._name  # type: ignore[attr-defined]
        if name not in columns:
            raise LayoutError(f"append is missing attribute {name!r}")
        decoded = self.column(name)
        fresh = np.asarray(columns[name], dtype=decoded.dtype)
        merged = np.concatenate([decoded, fresh])
        grown = encode_column(
            name, merged, dict_max_cardinality=np.inf, force=self.codec
        )
        if grown is None:
            raise LayoutError(
                f"could not re-encode {name!r} after append"
            )
        maps = getattr(self, "_zone_maps", None)
        if maps is not None:
            from .zonemap import attach_zone_maps, extend_zone_maps

            attach_zone_maps(grown, extend_zone_maps(maps, grown))
        return grown


class DictEncodedColumn(EncodedColumn):
    """One attribute stored as codes into a sorted dictionary."""

    __slots__ = (
        "_name",
        "_codes",
        "_dictionary",
        "_attr_set_cache",
        "_zone_maps",
    )

    def __init__(
        self, name: str, codes: np.ndarray, dictionary: np.ndarray
    ) -> None:
        if codes.ndim != 1 or dictionary.ndim != 1:
            raise LayoutError(
                "dictionary layout needs 1-D codes and dictionary, got "
                f"{codes.shape} / {dictionary.shape}"
            )
        if codes.dtype.kind != "u":
            raise LayoutError(
                f"dictionary codes must be unsigned, got {codes.dtype}"
            )
        if codes.shape[0] and int(codes.max()) >= dictionary.shape[0]:
            raise LayoutError(
                f"code {int(codes.max())} out of range for dictionary of "
                f"{dictionary.shape[0]} entries"
            )
        self._name = name
        self._codes = np.ascontiguousarray(codes)
        self._dictionary = np.ascontiguousarray(dictionary)

    @property
    def codec(self) -> str:
        return "dict"

    @property
    def value_dtype(self) -> np.dtype:
        return self._dictionary.dtype

    @property
    def dictionary(self) -> np.ndarray:
        """Sorted distinct values; ``dictionary[codes]`` decodes."""
        return self._dictionary

    @property
    def cardinality(self) -> int:
        return int(self._dictionary.shape[0])

    @property
    def nbytes(self) -> int:
        return int(self._codes.nbytes + self._dictionary.nbytes)

    def kernel_buffers(self) -> Tuple[np.ndarray, ...]:
        return (self._codes, self._dictionary)

    def encoding_signature(self) -> Tuple:
        return (
            "dict",
            self._codes.dtype.name,
            self._dictionary.dtype.name,
        )

    def _decode_codes(self, codes: np.ndarray) -> np.ndarray:
        return self._dictionary.take(codes)

    def reordered(self, perm: np.ndarray) -> "DictEncodedColumn":
        return DictEncodedColumn(
            self._name, self._codes.take(perm), self._dictionary
        )

    def describe(self) -> str:
        return (
            f"dict[{self._name}:{self._codes.dtype.name}"
            f"x{self.cardinality}]"
        )

    def __repr__(self) -> str:
        return (
            f"DictEncodedColumn({self._name!r}, rows={self.num_rows}, "
            f"codes={self._codes.dtype}, cardinality={self.cardinality})"
        )


class BitPackedColumn(EncodedColumn):
    """One int64 attribute stored as ``value - offset`` narrow codes.

    Order-preserving: ``code_a < code_b  ⇔  value_a < value_b``, so a
    comparison against a literal becomes one integer threshold on the
    codes (the threshold — including clamping for out-of-range or
    fractional literals — is computed from the runtime parameter inside
    the kernel; ``offset`` and ``max_code`` are burned into the source
    and therefore part of :meth:`encoding_signature`).
    """

    __slots__ = (
        "_name",
        "_codes",
        "_offset",
        "_max_code",
        "_attr_set_cache",
        "_zone_maps",
    )

    def __init__(
        self, name: str, codes: np.ndarray, offset: int, max_code: int
    ) -> None:
        if codes.ndim != 1:
            raise LayoutError(
                f"bit-packed codes must be 1-D, got shape {codes.shape}"
            )
        if codes.dtype.kind != "u":
            raise LayoutError(
                f"bit-packed codes must be unsigned, got {codes.dtype}"
            )
        self._name = name
        self._codes = np.ascontiguousarray(codes)
        self._offset = int(offset)
        self._max_code = int(max_code)

    @property
    def codec(self) -> str:
        return "pack"

    @property
    def value_dtype(self) -> np.dtype:
        return np.dtype(np.int64)

    @property
    def offset(self) -> int:
        return self._offset

    @property
    def max_code(self) -> int:
        return self._max_code

    @property
    def nbytes(self) -> int:
        return int(self._codes.nbytes)

    def kernel_buffers(self) -> Tuple[np.ndarray, ...]:
        return (self._codes,)

    def encoding_signature(self) -> Tuple:
        return (
            "pack",
            self._codes.dtype.name,
            self._offset,
            self._max_code,
        )

    def _decode_codes(self, codes: np.ndarray) -> np.ndarray:
        out = codes.astype(np.int64)
        if self._offset:
            np.add(out, np.int64(self._offset), out=out)
        return out

    def reordered(self, perm: np.ndarray) -> "BitPackedColumn":
        return BitPackedColumn(
            self._name, self._codes.take(perm), self._offset, self._max_code
        )

    def describe(self) -> str:
        return f"pack[{self._name}:{self._codes.dtype.name}]"

    def __repr__(self) -> str:
        return (
            f"BitPackedColumn({self._name!r}, rows={self.num_rows}, "
            f"codes={self._codes.dtype}, offset={self._offset})"
        )


# Codec selection ------------------------------------------------------------


def _bit_pack(name: str, values: np.ndarray) -> Optional[BitPackedColumn]:
    lo = int(values.min())
    hi = int(values.max())
    span = hi - lo
    if span > np.iinfo(np.uint32).max:
        return None
    dtype = _smallest_uint(span)
    if dtype.itemsize >= values.dtype.itemsize:
        return None
    codes = (values - np.int64(lo)).astype(dtype)
    return BitPackedColumn(name, codes, lo, span)


def _dict_encode(
    name: str, values: np.ndarray, max_cardinality: float
) -> Optional[DictEncodedColumn]:
    if values.dtype.kind == "f":
        dictionary, codes = _sorted_float_dictionary(values)
    else:
        dictionary, codes = np.unique(values, return_inverse=True)
        codes = codes.ravel()
    if dictionary.shape[0] > max_cardinality:
        return None
    code_dtype = _smallest_uint(max(int(dictionary.shape[0]) - 1, 0))
    if code_dtype.itemsize >= values.dtype.itemsize:
        return None
    return DictEncodedColumn(name, codes.astype(code_dtype), dictionary)


def encode_column(
    name: str,
    values: np.ndarray,
    *,
    dict_max_cardinality: float = DEFAULT_DICT_MAX_CARDINALITY,
    force: Optional[str] = None,
) -> Optional[EncodedColumn]:
    """Pick and apply the best codec for one column, or None.

    Selection by per-column stats: int64 columns whose value *range*
    fits 8/16 bits bit-pack (cheapest codec, no side buffer); otherwise
    a cardinality probe decides dictionary encoding; wide-range int
    columns may still pack into 32 bits.  Float columns only dictionary-
    encode (bit-exactly).  Returns ``None`` when no codec would shrink
    the column — callers treat that as "leave it plain".

    ``force`` pins the codec (used when re-encoding after an append so
    a layout never silently changes family mid-flight).
    """
    values = np.ascontiguousarray(values)
    if values.ndim != 1:
        raise LayoutError(
            f"encode_column needs a 1-D array, got shape {values.shape}"
        )
    if values.shape[0] == 0:
        return None
    if values.dtype == np.dtype(np.float64):
        if force == "pack":
            raise LayoutError("cannot bit-pack a float column")
        return _dict_encode(name, values, dict_max_cardinality)
    if values.dtype != np.dtype(np.int64):
        raise LayoutError(
            f"unsupported dtype for encoding: {values.dtype}"
        )
    if force == "pack":
        return _bit_pack(name, values)
    if force == "dict":
        return _dict_encode(name, values, dict_max_cardinality)
    lo = int(values.min())
    hi = int(values.max())
    if hi - lo <= np.iinfo(np.uint16).max:
        return _bit_pack(name, values)
    encoded = _dict_encode(name, values, dict_max_cardinality)
    if encoded is not None:
        return encoded
    return _bit_pack(name, values)
