"""Storage substrate: schemas, physical layouts, tables, transformation.

H2O's three layout families (paper section 3.1) are unified around the
*column group*: a row-major layout is one group containing every
attribute; a column-major layout is one single-column group per
attribute.  A :class:`~repro.storage.partition.Partitioning` describes a
covering set of groups abstractly; a
:class:`~repro.storage.relation.Table` owns the physical layouts actually
materialized (possibly replicating attributes across groups, as H2O
allows when different query classes access the same data differently).

The :mod:`~repro.storage.stitcher` implements the physical reorganization
primitive — reading blocks from source layouts and stitching them into a
new group — that the online reorganizer (paper section 3.2, Fig. 13)
fuses with query execution.
"""

from .schema import Attribute, Schema
from .layout import Layout, LayoutKind
from .column_group import ColumnGroup
from .column_layout import SingleColumn
from .row_layout import build_row_layout
from .partition import (
    Partitioning,
    column_partitioning,
    row_partitioning,
)
from .relation import LayoutSnapshot, Table
from .catalog import Catalog
from .generator import generate_table, uniform_columns, wide_schema
from .stitcher import stitch_group, stitch_single_columns

__all__ = [
    "Attribute",
    "Schema",
    "Layout",
    "LayoutKind",
    "ColumnGroup",
    "SingleColumn",
    "build_row_layout",
    "Partitioning",
    "row_partitioning",
    "column_partitioning",
    "Table",
    "LayoutSnapshot",
    "Catalog",
    "generate_table",
    "uniform_columns",
    "wide_schema",
    "stitch_group",
    "stitch_single_columns",
]
