"""Column groups: the workload-aware vertical partitions at H2O's core.

A :class:`ColumnGroup` stores a subset of a table's attributes densely in
one C-contiguous 2-D array (rows × group attributes).  A group covering
the entire schema *is* the row-major layout; the class therefore reports
its :class:`~repro.storage.layout.LayoutKind` as ``ROW`` when it is known
to span the whole table (paper: "groups of columns are modeled similarly
to the row-major layouts").
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from ..errors import LayoutError
from .layout import Layout, LayoutKind


class ColumnGroup(Layout):
    """A vertical partition backed by one C-contiguous 2-D array.

    Parameters
    ----------
    attrs:
        Attribute names in physical column order.
    data:
        Array of shape ``(num_rows, len(attrs))``.  It is made
        C-contiguous on construction because the whole point of a group
        is a dense, sequential tuple scan.
    full_width:
        Set when this group is known to contain every attribute of its
        table, which classifies it as the row-major layout.
    """

    __slots__ = (
        "_attrs",
        "_data",
        "_positions",
        "_full_width",
        "_attr_set_cache",
        "_zone_maps",
    )

    def __init__(
        self,
        attrs: Sequence[str],
        data: np.ndarray,
        full_width: bool = False,
    ) -> None:
        attrs = tuple(attrs)
        if not attrs:
            raise LayoutError("a column group needs at least one attribute")
        if len(set(attrs)) != len(attrs):
            raise LayoutError(f"duplicate attributes in group: {attrs}")
        if data.ndim != 2:
            raise LayoutError(
                f"group data must be 2-D, got shape {data.shape}"
            )
        if data.shape[1] != len(attrs):
            raise LayoutError(
                f"group has {len(attrs)} attributes but data has "
                f"{data.shape[1]} columns"
            )
        self._attrs = attrs
        self._data = np.ascontiguousarray(data)
        self._positions = {name: i for i, name in enumerate(attrs)}
        self._full_width = full_width

    # Layout interface ---------------------------------------------------

    @property
    def kind(self) -> LayoutKind:
        return LayoutKind.ROW if self._full_width else LayoutKind.GROUP

    @property
    def attrs(self) -> Tuple[str, ...]:
        return self._attrs

    @property
    def num_rows(self) -> int:
        return int(self._data.shape[0])

    @property
    def nbytes(self) -> int:
        return int(self._data.nbytes)

    @property
    def data(self) -> np.ndarray:
        """The backing (rows × width) array."""
        return self._data

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    def column(self, name: str) -> np.ndarray:
        """Strided 1-D view of one attribute (no copy)."""
        return self._data[:, self.index_of(name)]

    def index_of(self, name: str) -> int:
        try:
            return self._positions[name]
        except KeyError:
            raise LayoutError(
                f"attribute {name!r} is not stored in this layout "
                f"({self.describe()})"
            ) from None

    def describe(self) -> str:
        kind = "row-major" if self._full_width else "group"
        if self.width <= 6:
            names = ",".join(self._attrs)
        else:
            names = ",".join(self._attrs[:5]) + f",...x{self.width}"
        return f"{kind}[{names}]"

    # Group-specific access ----------------------------------------------

    def positions_of(self, names: Iterable[str]) -> np.ndarray:
        """Physical column indices for ``names`` within this group."""
        return np.array([self.index_of(n) for n in names], dtype=np.intp)

    def block(self, start: int, stop: int) -> np.ndarray:
        """Contiguous (stop-start, width) view of a row range."""
        return self._data[start:stop]

    def gather_rows(self, positions: np.ndarray) -> np.ndarray:
        """Materialize the given tuple positions as a new dense block."""
        return self._data[positions]

    def project(self, names: Sequence[str]) -> Dict[str, np.ndarray]:
        """Strided views of the named attributes."""
        return {name: self.column(name) for name in names}

    def extended(self, columns: Dict[str, np.ndarray]) -> "ColumnGroup":
        """A new group with the given rows appended (dense, no slack).

        The paper's layouts are densely packed with no update slack
        (section 3.1), so growth reallocates — exactly what this does.
        """
        missing = [a for a in self._attrs if a not in columns]
        if missing:
            raise LayoutError(
                f"append is missing attributes for {self.describe()}: "
                f"{missing}"
            )
        lengths = {len(columns[a]) for a in self._attrs}
        if len(lengths) != 1:
            raise LayoutError(f"appended columns differ in length: {lengths}")
        (extra,) = lengths
        block = np.empty((extra, self.width), dtype=self._data.dtype)
        for position, attr in enumerate(self._attrs):
            block[:, position] = columns[attr]
        data = np.concatenate([self._data, block], axis=0)
        grown = ColumnGroup(self._attrs, data, full_width=self._full_width)
        maps = getattr(self, "_zone_maps", None)
        if maps is not None:
            # Incremental zone-map maintenance: reuse every complete
            # morsel's stats, recompute only the tail (storage/zonemap).
            from .zonemap import attach_zone_maps, extend_zone_maps

            attach_zone_maps(grown, extend_zone_maps(maps, grown))
        return grown

    def reordered(self, perm: np.ndarray) -> "ColumnGroup":
        """A new group with rows permuted by ``perm`` (clustering).

        Zone maps are intentionally dropped; the reorganizer rebuilds
        them eagerly after a clustering pass.
        """
        return ColumnGroup(
            self._attrs,
            self._data.take(perm, axis=0),
            full_width=self._full_width,
        )

    def __repr__(self) -> str:
        return (
            f"ColumnGroup({self.describe()}, rows={self.num_rows}, "
            f"dtype={self._data.dtype})"
        )
