"""Row-major (NSM) layout construction.

The row-major layout is the full-width column group: every attribute of
the schema, densely packed, stored tuple-at-a-time (paper section 3.1,
Fig. 4b).  This module provides the constructor that assembles it from
per-attribute arrays.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..errors import LayoutError
from .column_group import ColumnGroup
from .schema import Schema


def build_row_layout(
    schema: Schema, columns: Mapping[str, np.ndarray]
) -> ColumnGroup:
    """Assemble the row-major layout of a table from its columns.

    ``columns`` must supply one 1-D array per schema attribute, all of
    equal length.  The result is a single C-contiguous (rows × width)
    group flagged as full-width so it reports ``LayoutKind.ROW``.
    """
    missing = [name for name in schema.names if name not in columns]
    if missing:
        raise LayoutError(f"missing columns for row layout: {missing}")
    lengths = {len(columns[name]) for name in schema.names}
    if len(lengths) != 1:
        raise LayoutError(f"columns have differing lengths: {lengths}")
    (num_rows,) = lengths
    dtype = schema.common_dtype(schema.names).numpy_dtype
    data = np.empty((num_rows, schema.width), dtype=dtype)
    for position, name in enumerate(schema.names):
        data[:, position] = columns[name]
    return ColumnGroup(schema.names, data, full_width=True)
