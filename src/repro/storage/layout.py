"""Abstract physical layout interface.

Every physical layout stores some subset of a table's attributes for all
of its rows, row-aligned with every other layout of the same table (the
layout manager only creates layouts through the stitcher, which preserves
tuple order).  Row alignment is what lets a selection vector computed
from one layout be applied to another (Fig. 6's two-group plan).
"""

from __future__ import annotations

import abc
import enum
from typing import Dict, FrozenSet, Iterable, Iterator, Tuple

import numpy as np

from ..errors import LayoutError


class LayoutKind(enum.Enum):
    """The three layout families of the paper (section 3.1), plus the
    encoded (dictionary / bit-packed) family added on top of it."""

    ROW = "row"
    COLUMN = "column"
    GROUP = "group"
    ENCODED = "encoded"


class Layout(abc.ABC):
    """A physical materialization of some attributes of a table."""

    @property
    @abc.abstractmethod
    def kind(self) -> LayoutKind:
        """Which layout family this materialization belongs to."""

    @property
    @abc.abstractmethod
    def attrs(self) -> Tuple[str, ...]:
        """Attribute names stored here, in physical (storage) order."""

    @property
    @abc.abstractmethod
    def num_rows(self) -> int:
        """Number of tuples stored."""

    @property
    @abc.abstractmethod
    def nbytes(self) -> int:
        """Total bytes of attribute data held by this layout."""

    @abc.abstractmethod
    def column(self, name: str) -> np.ndarray:
        """A 1-D array of attribute ``name`` (a view where possible)."""

    @property
    def width(self) -> int:
        """Number of attributes stored."""
        return len(self.attrs)

    @property
    def attr_set(self) -> FrozenSet[str]:
        cached = getattr(self, "_attr_set_cache", None)
        if cached is None:
            cached = frozenset(self.attrs)
            try:
                object.__setattr__(self, "_attr_set_cache", cached)
            except AttributeError:
                pass  # __slots__ without the cache slot; recompute
        return cached

    def contains(self, names: Iterable[str]) -> bool:
        """Whether every name in ``names`` is stored in this layout."""
        return self.attr_set.issuperset(names)

    def columns(self, names: Iterable[str]) -> Dict[str, np.ndarray]:
        """1-D arrays for each requested attribute."""
        return {name: self.column(name) for name in names}

    def index_of(self, name: str) -> int:
        """Physical position of ``name`` within this layout."""
        try:
            return self.attrs.index(name)
        except ValueError:
            raise LayoutError(
                f"attribute {name!r} is not stored in this layout "
                f"({self.describe()})"
            ) from None

    def kernel_buffers(self) -> Tuple[np.ndarray, ...]:
        """Arrays a generated kernel binds for this layout.

        Plain layouts expose their single backing array; encoded layouts
        add side buffers (e.g. the dictionary).  The first buffer is
        always the per-row scan target — the one a morsel ``[lo:hi]``
        slice applies to; any further buffers are row-independent and
        passed whole.
        """
        return (self.data,)  # type: ignore[attr-defined]

    @abc.abstractmethod
    def describe(self) -> str:
        """Short human-readable identification for errors and reports."""

    def block_ranges(self, block_rows: int) -> Iterator[Tuple[int, int]]:
        """Yield (start, stop) row ranges of at most ``block_rows`` rows."""
        if block_rows <= 0:
            raise LayoutError(f"block_rows must be positive: {block_rows}")
        for start in range(0, self.num_rows, block_rows):
            yield start, min(start + block_rows, self.num_rows)


def flatten_kernel_buffers(layouts) -> Tuple[np.ndarray, ...]:
    """Flattened kernel buffers of every layout of a plan, in order.

    Generated kernels bind one flat ``bufs`` tuple; each layout
    contributes ``layout.kernel_buffers()`` at a base index computed by
    the template planner, so plain and encoded layouts mix freely.
    """
    flat = []
    for layout in layouts:
        flat.extend(layout.kernel_buffers())
    return tuple(flat)
