"""Physical layout transformation ("stitching").

The paper (section 3.2, Data Reorganization) describes building a new
layout by reading blocks from source layouts and *stitching* them into
blocks of the target layout.  This module is that primitive, used both
offline (create the layout, then query it — the slow path of Fig. 13)
and online (the reorganizer fuses this copy loop with query evaluation).

The stitcher always preserves tuple order, which maintains the
row-alignment invariant every other component relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import LayoutError
from .column_group import ColumnGroup
from .column_layout import SingleColumn
from .layout import Layout
from .schema import Schema
from .zonemap import ZoneMaps, _minmax_per_morsel, attach_zone_maps


@dataclass(frozen=True)
class TransformStats:
    """Data volume moved by one stitching operation.

    ``bytes_read`` counts the source bytes actually fetched (for a group
    source, whole tuples are fetched even if only some attributes are
    needed — that is the row-layout reading penalty the cost model also
    charges).  ``bytes_written`` is the size of the new layout.
    """

    bytes_read: int
    bytes_written: int
    source_layouts: int

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written


def _plan_sources(
    sources: Sequence[Layout], attrs: Sequence[str]
) -> Dict[str, Layout]:
    """Pick, per target attribute, which source layout provides it."""
    providers: Dict[str, Layout] = {}
    for attr in attrs:
        candidates = [s for s in sources if attr in s.attr_set]
        if not candidates:
            raise LayoutError(
                f"no source layout provides attribute {attr!r}"
            )
        # Prefer the narrowest provider: fewest useless bytes to read.
        providers[attr] = min(candidates, key=lambda lay: lay.width)
    return providers


def _read_bytes(providers: Dict[str, Layout]) -> int:
    """Source bytes fetched: each used layout is scanned once, fully."""
    used = {id(lay): lay for lay in providers.values()}
    return sum(lay.nbytes for lay in used.values())


def stitch_group(
    sources: Sequence[Layout],
    attrs: Sequence[str],
    schema: Schema,
    full_width: bool = False,
    morsel_rows: int = 0,
) -> Tuple[ColumnGroup, TransformStats]:
    """Build a new :class:`ColumnGroup` over ``attrs`` from ``sources``.

    ``attrs`` are stored in the order given (callers normally pass them
    in schema order).  The group dtype is the promoted dtype of its
    members.  Returns the new group plus the data-movement stats used by
    the cost model's transformation term (paper Eq. 1).

    When ``morsel_rows`` is positive, per-morsel zone maps are built in
    the same pass — each source column is reduced while it is still hot
    from the copy — and attached to the new group.
    """
    attrs = tuple(attrs)
    if not attrs:
        raise LayoutError("cannot stitch an empty attribute set")
    providers = _plan_sources(sources, attrs)
    rows = {lay.num_rows for lay in providers.values()}
    if len(rows) != 1:
        raise LayoutError(f"source layouts disagree on row count: {rows}")
    (num_rows,) = rows
    dtype = schema.common_dtype(attrs).numpy_dtype
    data = np.empty((num_rows, len(attrs)), dtype=dtype)
    mins: Dict[str, np.ndarray] = {}
    maxs: Dict[str, np.ndarray] = {}
    for position, attr in enumerate(attrs):
        values = providers[attr].column(attr)
        data[:, position] = values
        if morsel_rows > 0:
            # Fused stats pass: reduce the target column we just wrote
            # (contiguous in neither axis here, so reduce the written
            # strided view — the data is cache-resident from the copy).
            mins[attr], maxs[attr] = _minmax_per_morsel(
                data[:, position], morsel_rows
            )
    group = ColumnGroup(attrs, data, full_width=full_width)
    if morsel_rows > 0:
        attach_zone_maps(
            group, ZoneMaps(morsel_rows, num_rows, mins, maxs)
        )
    stats = TransformStats(
        bytes_read=_read_bytes(providers),
        bytes_written=group.nbytes,
        source_layouts=len({id(lay) for lay in providers.values()}),
    )
    return group, stats


def stitch_single_columns(
    sources: Sequence[Layout],
    attrs: Iterable[str],
    morsel_rows: int = 0,
) -> Tuple[List[SingleColumn], TransformStats]:
    """Decompose attributes out of ``sources`` into single columns.

    Used when the advisor decides an attribute is always accessed alone
    (splitting a group back toward the column-major extreme).  With a
    positive ``morsel_rows``, zone maps are built on the freshly copied
    (still cache-hot) column and attached.
    """
    attrs = tuple(attrs)
    providers = _plan_sources(sources, attrs)
    columns: List[SingleColumn] = []
    written = 0
    for attr in attrs:
        values = np.ascontiguousarray(providers[attr].column(attr))
        column = SingleColumn(attr, values)
        if morsel_rows > 0:
            mins, maxs = _minmax_per_morsel(values, morsel_rows)
            attach_zone_maps(
                column,
                ZoneMaps(
                    morsel_rows, column.num_rows, {attr: mins}, {attr: maxs}
                ),
            )
        columns.append(column)
        written += column.nbytes
    stats = TransformStats(
        bytes_read=_read_bytes(providers),
        bytes_written=written,
        source_layouts=len({id(lay) for lay in providers.values()}),
    )
    return columns, stats


def stitched_block_iter(
    sources: Sequence[Layout],
    attrs: Sequence[str],
    block_rows: int,
    dtype: np.dtype,
):
    """Yield ``(start, stop, block)`` where ``block`` is the stitched
    (stop-start, len(attrs)) array for that row range.

    This is the building block of *online* reorganization: the caller
    evaluates the query on each stitched block while also writing the
    block into the new layout, so the relation is scanned once for both
    tasks (Fig. 13's "online" bars).
    """
    attrs = tuple(attrs)
    providers = _plan_sources(sources, attrs)
    rows = {lay.num_rows for lay in providers.values()}
    if len(rows) != 1:
        raise LayoutError(f"source layouts disagree on row count: {rows}")
    (num_rows,) = rows
    if block_rows <= 0:
        raise LayoutError(f"block_rows must be positive: {block_rows}")
    for start in range(0, num_rows, block_rows):
        stop = min(start + block_rows, num_rows)
        block = np.empty((stop - start, len(attrs)), dtype=dtype)
        for position, attr in enumerate(attrs):
            block[:, position] = providers[attr].column(attr)[start:stop]
        yield start, stop, block
