"""Relation schemas with fixed-width attributes.

All layouts in H2O hold fixed-length attributes (paper section 3.1); a
:class:`Schema` is an ordered sequence of uniquely named
:class:`Attribute` values.  Attribute order is the canonical order used
whenever a deterministic ordering of attribute subsets is needed
(analyzer, partitionings, group layouts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Sequence, Tuple

from ..errors import SchemaError
from ..sql.types import DataType


@dataclass(frozen=True)
class Attribute:
    """One named, typed, fixed-width attribute."""

    name: str
    dtype: DataType = DataType.INT64

    def __post_init__(self) -> None:
        if not self.name or not self.name[0].isalpha() and self.name[0] != "_":
            raise SchemaError(f"invalid attribute name: {self.name!r}")

    @property
    def width_bytes(self) -> int:
        return self.dtype.width_bytes


class Schema:
    """Ordered, immutable collection of uniquely named attributes."""

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes: Iterable[Attribute]) -> None:
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("a schema needs at least one attribute")
        index: Dict[str, int] = {}
        for position, attr in enumerate(attrs):
            if attr.name in index:
                raise SchemaError(f"duplicate attribute name: {attr.name!r}")
            index[attr.name] = position
        self._attributes = attrs
        self._index = index

    # Constructors -------------------------------------------------------

    @classmethod
    def of(cls, *names: str, dtype: DataType = DataType.INT64) -> "Schema":
        """Schema with the given attribute names, all of one type."""
        return cls(Attribute(name, dtype) for name in names)

    @classmethod
    def from_names(
        cls, names: Sequence[str], dtype: DataType = DataType.INT64
    ) -> "Schema":
        return cls(Attribute(name, dtype) for name in names)

    # Introspection ------------------------------------------------------

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(attr.name for attr in self._attributes)

    @property
    def width(self) -> int:
        """Number of attributes."""
        return len(self._attributes)

    @property
    def row_bytes(self) -> int:
        """Width of one full tuple in bytes."""
        return sum(attr.width_bytes for attr in self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Attribute:
        return self._attributes[self.index_of(name)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        shown = ", ".join(
            f"{a.name}:{a.dtype.value}" for a in self._attributes[:6]
        )
        if self.width > 6:
            shown += f", ... ({self.width} attributes)"
        return f"Schema({shown})"

    def index_of(self, name: str) -> int:
        """Position of attribute ``name``; raises SchemaError if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"unknown attribute: {name!r}") from None

    def dtype_of(self, name: str) -> DataType:
        """Value type of attribute ``name``."""
        return self._attributes[self.index_of(name)].dtype

    def ordered(self, names: Iterable[str]) -> Tuple[str, ...]:
        """The given attribute names sorted into schema order."""
        unique = set(names)
        for name in unique:
            self.index_of(name)  # validate
        return tuple(
            attr.name for attr in self._attributes if attr.name in unique
        )

    def subset(self, names: Iterable[str]) -> "Schema":
        """A new schema containing only ``names``, in schema order."""
        wanted = self.ordered(names)
        return Schema(self[name] for name in wanted)

    def common_dtype(self, names: Iterable[str]) -> DataType:
        """Promoted storage dtype for a group over ``names``.

        A column group is backed by one 2-D array and therefore one
        dtype; mixed int/float groups are stored as float64.
        """
        result = DataType.INT64
        saw_any = False
        for name in names:
            saw_any = True
            result = DataType.common(result, self.dtype_of(name))
        if not saw_any:
            raise SchemaError("common_dtype of an empty attribute set")
        return result
