"""Tables: a schema plus the set of row-aligned physical layouts.

A :class:`Table` does not privilege any layout: the "data" of the table
*is* whatever layouts currently exist, and the only invariant is
coverage — every attribute must be stored in at least one layout.  This
is exactly H2O's storage view (paper section 3): several formats coexist,
the same attribute may be replicated across formats, and layouts come and
go as the workload evolves.

All layouts of one table are row-aligned: tuple ``i`` means the same
logical tuple in every layout.  The stitcher preserves order, so the
invariant holds by construction; :meth:`Table.add_layout` enforces the
row-count part of it.

**Concurrency model.**  Individual layouts are immutable once built
(appends create *new* layout objects via ``Layout.extended``), so the
whole physical state of a table at one instant is described by an
immutable :class:`LayoutSnapshot`: the tuple of layouts, the row count,
and the layout epoch.  The table holds exactly one reference to the
current snapshot; every mutation builds a complete replacement snapshot
under the writer lock and publishes it with a single attribute
assignment (atomic under the GIL).  Readers call :meth:`Table.snapshot`
to pin the state once and then plan/scan against it without further
synchronization — a concurrent reorganization can only ever publish a
*new* snapshot, never mutate a pinned one.  This is the snapshot
isolation the concurrent query service builds on.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import LayoutError, StorageError
from .column_group import ColumnGroup
from .column_layout import SingleColumn
from .layout import Layout, LayoutKind
from .row_layout import build_row_layout
from .schema import Schema


class LayoutSnapshot:
    """An immutable view of one table's physical state at one epoch.

    A snapshot pins everything a reader needs to plan and execute a
    query — the layout tuple, the row count, the schema — and exposes
    the same cover-selection API as :class:`Table`, so planners work
    interchangeably against a live table (which delegates to its current
    snapshot) or a pinned snapshot.  Snapshots are never mutated after
    construction; the attribute index is built lazily, which is a benign
    race (two threads may build the same index, the last assignment
    wins, both results are identical).
    """

    __slots__ = (
        "table_name",
        "schema",
        "epoch",
        "num_rows",
        "layouts",
        "cluster_key",
        "clustered_rows",
        "_attr_index",
    )

    def __init__(
        self,
        table_name: str,
        schema: Schema,
        epoch: int,
        num_rows: int,
        layouts: Iterable[Layout],
        cluster_key: Optional[str] = None,
        clustered_rows: int = 0,
    ) -> None:
        self.table_name = table_name
        self.schema = schema
        self.epoch = epoch
        self.num_rows = num_rows
        self.layouts: Tuple[Layout, ...] = tuple(layouts)
        #: Attribute the leading ``clustered_rows`` rows are sorted on
        #: (None = unclustered).  Appends land *after* the clustered
        #: prefix, so the tail is unclustered until the next clustering
        #: pass; zone maps stay exact either way — clustering only
        #: concentrates qualifying rows so pruning approaches 1.0.
        self.cluster_key = cluster_key
        self.clustered_rows = int(clustered_rows)
        self._attr_index: Optional[Dict[str, List[Layout]]] = None

    @property
    def clustered_fraction(self) -> float:
        """Fraction of rows inside the sorted prefix (telemetry and the
        cost model's clustering-aware scan_fraction discount)."""
        if self.cluster_key is None or self.num_rows == 0:
            return 0.0
        return min(1.0, self.clustered_rows / self.num_rows)

    # Attribute index -----------------------------------------------------

    def _index(self) -> Dict[str, List[Layout]]:
        """attr → layouts storing it, narrowest first (lazily built)."""
        index = self._attr_index
        if index is None:
            index = {name: [] for name in self.schema.names}
            for layout in sorted(self.layouts, key=lambda l: l.width):
                for attr in layout.attrs:
                    index[attr].append(layout)
            self._attr_index = index
        return index

    # Access --------------------------------------------------------------

    def layouts_containing(self, attr: str) -> Tuple[Layout, ...]:
        """All layouts storing ``attr``, narrowest first."""
        try:
            return tuple(self._index()[attr])
        except KeyError:
            return ()

    def covering_layouts(self, attrs: Iterable[str]) -> Tuple[Layout, ...]:
        """A small set of layouts that together store ``attrs``.

        Greedy set cover preferring layouts that add the most uncovered
        attributes with the least useless width — the same preference
        order H2O's planner uses when the perfect group is absent
        (section 4.2.2: subsets of groups and multi-group access).
        """
        needed = set(attrs)
        if not needed:
            # Attribute-free queries (a bare ``SELECT count(*)``) still
            # need a row count from *some* layout; the narrowest does.
            if not self.layouts:
                return ()
            return (min(self.layouts, key=lambda l: l.width),)
        unknown = [a for a in needed if a not in self.schema]
        if unknown:
            raise LayoutError(f"unknown attributes: {sorted(unknown)}")
        index = self._index()
        # Only layouts that store at least one needed attribute matter.
        relevant: List[Layout] = []
        seen: set = set()
        for attr in needed:
            for layout in index[attr]:
                if id(layout) not in seen:
                    seen.add(id(layout))
                    relevant.append(layout)
        chosen: List[Layout] = []
        while needed:
            best: Optional[Layout] = None
            best_key: Tuple[float, float] = (-1.0, 0.0)
            for layout in relevant:
                covered = len(needed & layout.attr_set)
                if covered == 0:
                    continue
                key = (float(covered), -float(layout.width))
                if key > best_key:
                    best_key = key
                    best = layout
            if best is None:
                raise LayoutError(
                    f"attributes not stored anywhere: {sorted(needed)}"
                )
            chosen.append(best)
            needed -= best.attr_set
        return tuple(chosen)

    def narrowest_cover(self, attrs: Iterable[str]) -> Tuple[Layout, ...]:
        """Per-attribute narrowest providers (the column-store-ish cover).

        Complements :meth:`covering_layouts` (which minimizes the number
        of layouts): this cover minimizes useless width per attribute,
        e.g. preferring single columns over a wide group that happens to
        contain everything.  The planner considers both.
        """
        chosen: List[Layout] = []
        seen: set = set()
        for attr in attrs:
            providers = self.layouts_containing(attr)
            if not providers:
                raise LayoutError(f"attribute {attr!r} is not stored")
            narrowest = providers[0]
            if id(narrowest) not in seen:
                seen.add(id(narrowest))
                chosen.append(narrowest)
        return tuple(chosen)

    def column(self, name: str) -> np.ndarray:
        """Values of one attribute, read from the narrowest layout."""
        layouts = self.layouts_containing(name)
        if not layouts:
            raise LayoutError(f"attribute {name!r} is not stored")
        return layouts[0].column(name)

    def columns(self, names: Sequence[str]) -> Dict[str, np.ndarray]:
        return {name: self.column(name) for name in names}

    def find_group(self, attrs: Iterable[str]) -> Optional[ColumnGroup]:
        """An existing group storing exactly ``attrs``, if any."""
        wanted = frozenset(attrs)
        for layout in self.layouts:
            if isinstance(layout, ColumnGroup) and layout.attr_set == wanted:
                return layout
        return None

    @property
    def nbytes(self) -> int:
        """Total bytes across all layouts (replication counts twice)."""
        return sum(layout.nbytes for layout in self.layouts)

    def __repr__(self) -> str:
        return (
            f"LayoutSnapshot({self.table_name!r}, epoch={self.epoch}, "
            f"rows={self.num_rows}, layouts={len(self.layouts)})"
        )


class Table:
    """One relation: schema, row count, and its physical layouts.

    All *reads* delegate to the current :class:`LayoutSnapshot` (pin it
    explicitly with :meth:`snapshot` for multi-step consistency); all
    *mutations* are serialized by an internal writer lock and publish a
    complete new snapshot atomically, bumping the layout epoch exactly
    once per logical change.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        layouts: Iterable[Layout],
        num_rows: Optional[int] = None,
    ) -> None:
        self.name = name
        self.schema = schema
        layouts = list(layouts)
        if not layouts:
            raise StorageError(f"table {name!r} needs at least one layout")
        rows = {layout.num_rows for layout in layouts}
        if len(rows) != 1:
            raise LayoutError(
                f"table {name!r}: layouts disagree on row count: {rows}"
            )
        (row_count,) = rows
        if num_rows is not None and num_rows != row_count:
            raise LayoutError(
                f"table {name!r}: expected {num_rows} rows, layouts have "
                f"{row_count}"
            )
        #: Serializes writers (layout create/retire, appends).  Readers
        #: never take it — they pin the published snapshot instead.
        self._write_lock = threading.RLock()
        self._snapshot = LayoutSnapshot(name, schema, 0, row_count, layouts)
        self._check_coverage(self._snapshot.layouts)

    # Construction --------------------------------------------------------

    @classmethod
    def from_columns(
        cls,
        name: str,
        schema: Schema,
        columns: Mapping[str, np.ndarray],
        initial_layout: str = "column",
    ) -> "Table":
        """Create a table from per-attribute arrays.

        ``initial_layout`` selects how the data is physically stored at
        the start: ``"column"`` (one SingleColumn per attribute, the
        paper's preferred starting point since it is "easier to morph to
        other layouts") or ``"row"`` (one full-width group).
        """
        if initial_layout == "column":
            layouts: List[Layout] = [
                SingleColumn(attr, np.asarray(columns[attr]))
                for attr in schema.names
            ]
        elif initial_layout == "row":
            layouts = [build_row_layout(schema, columns)]
        else:
            raise StorageError(
                f"unknown initial layout {initial_layout!r}; "
                "expected 'column' or 'row'"
            )
        return cls(name, schema, layouts)

    # Snapshot publication ------------------------------------------------

    def snapshot(self) -> LayoutSnapshot:
        """Pin the current physical state (immutable, epoch-tagged).

        The returned snapshot never changes; a concurrent layout
        creation/retirement or append publishes a *new* snapshot with a
        higher epoch, leaving every pinned one intact.  Queries pin one
        snapshot at admission and plan + scan entirely against it.
        """
        return self._snapshot

    def _publish(
        self,
        layouts: Sequence[Layout],
        num_rows: int,
        cluster_key: Optional[str] = None,
        clustered_rows: Optional[int] = None,
    ) -> None:
        """Replace the current snapshot (writer lock held), one epoch bump.

        Clustering state carries forward unless explicitly replaced:
        appends and layout create/retire leave the sorted prefix intact
        (new rows land after it), so only :meth:`reorder_rows` passes
        new values.
        """
        current = self._snapshot
        if cluster_key is None and clustered_rows is None:
            cluster_key = current.cluster_key
            clustered_rows = current.clustered_rows
        self._snapshot = LayoutSnapshot(
            self.name,
            self.schema,
            current.epoch + 1,
            num_rows,
            layouts,
            cluster_key,
            int(clustered_rows or 0),
        )

    # Delegating read views ----------------------------------------------

    @property
    def layouts(self) -> Tuple[Layout, ...]:
        return self._snapshot.layouts

    @property
    def num_rows(self) -> int:
        return self._snapshot.num_rows

    @property
    def layout_epoch(self) -> int:
        """Monotonic counter bumped whenever the physical state changes
        (layout added/dropped, rows appended).  Anything caching a
        decision derived from the layouts — the engine's plan cache
        above all — tags its entries with the epoch and treats a
        mismatch as invalidation."""
        return self._snapshot.epoch

    # Layout management -----------------------------------------------------

    def add_layout(self, layout: Layout) -> None:
        """Register a new row-aligned layout (atomic publish)."""
        with self._write_lock:
            current = self._snapshot
            if layout.num_rows != current.num_rows:
                raise LayoutError(
                    f"layout has {layout.num_rows} rows, table "
                    f"{self.name!r} has {current.num_rows}"
                )
            unknown = [a for a in layout.attrs if a not in self.schema]
            if unknown:
                raise LayoutError(
                    f"layout stores attributes not in schema: {unknown}"
                )
            self._publish(
                current.layouts + (layout,), current.num_rows
            )

    def drop_layout(self, layout: Layout) -> None:
        """Remove a layout; refuses to break attribute coverage."""
        with self._write_lock:
            current = self._snapshot
            if layout not in current.layouts:
                raise LayoutError("layout is not part of this table")
            remaining = [
                lay for lay in current.layouts if lay is not layout
            ]
            covered: set = set()
            for lay in remaining:
                covered |= lay.attr_set
            missing = set(self.schema.names) - covered
            if missing:
                raise LayoutError(
                    f"dropping {layout.describe()} would leave attributes "
                    f"unstored: {sorted(missing)}"
                )
            self._publish(remaining, current.num_rows)

    def _check_coverage(self, layouts: Sequence[Layout]) -> None:
        covered: set = set()
        for layout in layouts:
            covered |= layout.attr_set
        missing = set(self.schema.names) - covered
        if missing:
            raise LayoutError(
                f"table {self.name!r}: attributes not stored in any "
                f"layout: {sorted(missing)}"
            )

    def append_rows(self, columns: Mapping[str, np.ndarray]) -> None:
        """Append new tuples, extending *every* layout consistently.

        All layouts grow by the same rows in the same order, preserving
        the row-alignment invariant (replicated attributes receive the
        same values everywhere).  The paper's layouts are densely packed
        with no update slack, so each layout reallocates.

        The extended layouts are built first and published as one new
        snapshot with a **single** epoch bump after *all* secondary
        layouts are updated — a concurrent reader therefore either sees
        the complete pre-append state or the complete post-append state,
        never a half-appended layout set, and a cached plan can never
        validate against an intermediate epoch.
        """
        missing = [n for n in self.schema.names if n not in columns]
        if missing:
            raise LayoutError(f"append is missing attributes: {missing}")
        lengths = {len(columns[n]) for n in self.schema.names}
        if len(lengths) != 1:
            raise LayoutError(
                f"appended columns differ in length: {lengths}"
            )
        (extra,) = lengths
        if extra == 0:
            return
        with self._write_lock:
            current = self._snapshot
            extended = []
            for layout in current.layouts:
                try:
                    extended.append(layout.extended(columns))
                except LayoutError:
                    if layout.kind is not LayoutKind.ENCODED:
                        raise
                    # The appended values outgrew the codec (e.g. a
                    # bit-packed span no narrow code dtype can hold).
                    # Encoded layouts are additive replicas — the plain
                    # layouts still cover the attribute — so the append
                    # drops the replica rather than failing; the advisor
                    # re-proposes an encoding later if it still pays.
                    continue
            self._publish(extended, current.num_rows + extra)

    def reorder_rows(
        self,
        perm: np.ndarray,
        cluster_key: str,
        clustered_rows: int,
    ) -> None:
        """Apply one row permutation to *every* layout atomically.

        This is the clustering primitive: ``perm`` maps new row position
        → old row position (``new[i] = old[perm[i]]``), so applying it
        uniformly preserves row alignment across layouts and the
        logical multiset of tuples — only their order changes.  SQL
        answers are therefore unchanged (aggregations exactly;
        projections up to row order, which SQL does not promise).

        Raises :class:`LayoutError` when ``perm`` no longer matches the
        current row count — the caller computed it from a stale snapshot
        while an append raced in; clustering is opportunistic, so
        callers just retry on a later trigger.
        """
        perm = np.asarray(perm)
        with self._write_lock:
            current = self._snapshot
            if perm.shape != (current.num_rows,):
                raise LayoutError(
                    f"permutation covers {perm.shape[0] if perm.ndim == 1 else perm.shape} "
                    f"rows, table {self.name!r} has {current.num_rows}"
                )
            if cluster_key not in self.schema:
                raise LayoutError(
                    f"cluster key {cluster_key!r} is not in the schema"
                )
            reordered = [
                layout.reordered(perm) for layout in current.layouts
            ]
            self._publish(
                reordered,
                current.num_rows,
                cluster_key=cluster_key,
                clustered_rows=min(int(clustered_rows), current.num_rows),
            )

    def seed_cluster_state(
        self, cluster_key: Optional[str], clustered_rows: int
    ) -> None:
        """Restore clustering telemetry after recovery.

        Snapshots persist columns in logical row order — i.e. *post*
        permutation — so the data already sits clustered on disk; only
        the bookkeeping (key + sorted-prefix length) needs re-seeding.
        WAL-replayed appends have already grown the unclustered tail by
        the time this runs, hence the clamp to the current row count.
        """
        with self._write_lock:
            current = self._snapshot
            if cluster_key is not None and cluster_key not in self.schema:
                return
            self._snapshot = LayoutSnapshot(
                self.name,
                self.schema,
                current.epoch,
                current.num_rows,
                current.layouts,
                cluster_key,
                min(int(clustered_rows), current.num_rows),
            )

    # Access ----------------------------------------------------------------

    @property
    def cluster_key(self) -> Optional[str]:
        return self._snapshot.cluster_key

    @property
    def clustered_rows(self) -> int:
        return self._snapshot.clustered_rows

    @property
    def clustered_fraction(self) -> float:
        return self._snapshot.clustered_fraction

    def layouts_containing(self, attr: str) -> Tuple[Layout, ...]:
        """All layouts storing ``attr``, narrowest first."""
        return self._snapshot.layouts_containing(attr)

    def covering_layouts(self, attrs: Iterable[str]) -> Tuple[Layout, ...]:
        """A small set of layouts that together store ``attrs``.

        See :meth:`LayoutSnapshot.covering_layouts`.
        """
        return self._snapshot.covering_layouts(attrs)

    def narrowest_cover(self, attrs: Iterable[str]) -> Tuple[Layout, ...]:
        """Per-attribute narrowest providers.

        See :meth:`LayoutSnapshot.narrowest_cover`.
        """
        return self._snapshot.narrowest_cover(attrs)

    def column(self, name: str) -> np.ndarray:
        """Values of one attribute, read from the narrowest layout."""
        return self._snapshot.column(name)

    def columns(self, names: Sequence[str]) -> Dict[str, np.ndarray]:
        return self._snapshot.columns(names)

    # Reporting ---------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Total bytes across all layouts (replication counts twice)."""
        return self._snapshot.nbytes

    def layout_summary(self) -> str:
        """One line per layout for logs and reports."""
        snapshot = self._snapshot
        lines = [
            f"table {self.name!r}: {snapshot.num_rows} rows x "
            f"{self.schema.width} attrs, {len(snapshot.layouts)} layouts, "
            f"{snapshot.nbytes / 1e6:.1f} MB"
        ]
        for layout in snapshot.layouts:
            lines.append(
                f"  - {layout.describe()} ({layout.nbytes / 1e6:.1f} MB)"
            )
        return "\n".join(lines)

    def kinds(self) -> Tuple[LayoutKind, ...]:
        """The kinds of the current layouts (for tests and reports)."""
        return tuple(layout.kind for layout in self._snapshot.layouts)

    def find_group(self, attrs: Iterable[str]) -> Optional[ColumnGroup]:
        """An existing group storing exactly ``attrs``, if any."""
        return self._snapshot.find_group(attrs)

    def __repr__(self) -> str:
        snapshot = self._snapshot
        return (
            f"Table({self.name!r}, rows={snapshot.num_rows}, "
            f"attrs={self.schema.width}, layouts={len(snapshot.layouts)})"
        )
