"""Single-column layouts (the column-major / DSM extreme).

A column-major table is a set of :class:`SingleColumn` layouts, one per
attribute, each a 1-D contiguous array holding only the attribute values
(the paper stores no tuple IDs; positions are implicit, section 3.1).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import LayoutError
from .layout import Layout, LayoutKind


class SingleColumn(Layout):
    """One attribute stored contiguously."""

    __slots__ = ("_name", "_data", "_attr_set_cache", "_zone_maps")

    def __init__(self, name: str, data: np.ndarray) -> None:
        if data.ndim != 1:
            raise LayoutError(
                f"column data must be 1-D, got shape {data.shape}"
            )
        self._name = name
        self._data = np.ascontiguousarray(data)

    @property
    def kind(self) -> LayoutKind:
        return LayoutKind.COLUMN

    @property
    def name(self) -> str:
        return self._name

    @property
    def attrs(self) -> Tuple[str, ...]:
        return (self._name,)

    @property
    def num_rows(self) -> int:
        return int(self._data.shape[0])

    @property
    def nbytes(self) -> int:
        return int(self._data.nbytes)

    @property
    def data(self) -> np.ndarray:
        """The backing 1-D array."""
        return self._data

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    def column(self, name: str) -> np.ndarray:
        if name != self._name:
            raise LayoutError(
                f"attribute {name!r} is not stored in this layout "
                f"({self.describe()})"
            )
        return self._data

    def extended(self, columns) -> "SingleColumn":
        """A new column with the given rows appended."""
        if self._name not in columns:
            raise LayoutError(
                f"append is missing attribute {self._name!r}"
            )
        new_values = np.asarray(columns[self._name], dtype=self._data.dtype)
        grown = SingleColumn(
            self._name, np.concatenate([self._data, new_values])
        )
        maps = getattr(self, "_zone_maps", None)
        if maps is not None:
            # Incremental zone-map maintenance: reuse every complete
            # morsel's stats, recompute only the tail (storage/zonemap).
            from .zonemap import attach_zone_maps, extend_zone_maps

            attach_zone_maps(grown, extend_zone_maps(maps, grown))
        return grown

    def reordered(self, perm: np.ndarray) -> "SingleColumn":
        """A new column with rows permuted by ``perm`` (clustering).

        Zone maps are intentionally dropped: a reorder invalidates every
        per-morsel min/max, and the reorganizer rebuilds them eagerly in
        its fused pass.
        """
        return SingleColumn(self._name, self._data.take(perm))

    def describe(self) -> str:
        return f"column[{self._name}]"

    def __repr__(self) -> str:
        return (
            f"SingleColumn({self._name!r}, rows={self.num_rows}, "
            f"dtype={self._data.dtype})"
        )
