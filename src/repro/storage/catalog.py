"""Table catalog: name → :class:`~repro.storage.relation.Table`."""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from ..errors import CatalogError
from .relation import Table


class Catalog:
    """Holds the tables an engine can query."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}

    def register(self, table: Table, replace: bool = False) -> None:
        """Add ``table`` under its name; refuses duplicates by default."""
        if table.name in self._tables and not replace:
            raise CatalogError(
                f"table {table.name!r} is already registered"
            )
        self._tables[table.name] = table

    def get(self, name: str) -> Table:
        """Look up a table; raises CatalogError when unknown."""
        try:
            return self._tables[name]
        except KeyError:
            known = ", ".join(sorted(self._tables)) or "<none>"
            raise CatalogError(
                f"unknown table {name!r} (registered: {known})"
            ) from None

    def drop(self, name: str) -> None:
        """Remove a table from the catalog."""
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[name]

    def __contains__(self, name: object) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(self._tables)

    def __len__(self) -> int:
        return len(self._tables)

    def items(self) -> Tuple[Tuple[str, Table], ...]:
        return tuple(self._tables.items())
