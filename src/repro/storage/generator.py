"""Synthetic data generation for tables.

The paper's micro-benchmarks use wide relations (150–250 attributes) of
integers uniformly distributed in [-10^9, 10^9).  These helpers build
such tables deterministically from a seed.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import WorkloadError
from ..sql.types import DataType
from ..util.rng import RngLike, ensure_rng
from .relation import Table
from .schema import Attribute, Schema

#: Value range used throughout the paper's micro-benchmarks.
PAPER_LOW = -(10**9)
PAPER_HIGH = 10**9


def wide_schema(
    num_attrs: int, prefix: str = "a", dtype: DataType = DataType.INT64
) -> Schema:
    """A schema of ``num_attrs`` attributes named ``a1..aN``."""
    if num_attrs <= 0:
        raise WorkloadError(f"num_attrs must be positive, got {num_attrs}")
    return Schema(
        Attribute(f"{prefix}{i}", dtype) for i in range(1, num_attrs + 1)
    )


def uniform_columns(
    schema: Schema,
    num_rows: int,
    rng: RngLike = None,
    low: int = PAPER_LOW,
    high: int = PAPER_HIGH,
) -> Dict[str, np.ndarray]:
    """Per-attribute arrays with uniformly distributed values.

    Integer attributes draw from ``[low, high)`` as in the paper;
    float attributes draw uniformly over the same range.
    """
    if num_rows <= 0:
        raise WorkloadError(f"num_rows must be positive, got {num_rows}")
    generator = ensure_rng(rng)
    columns: Dict[str, np.ndarray] = {}
    for attr in schema:
        if attr.dtype is DataType.INT64:
            columns[attr.name] = generator.integers(
                low, high, size=num_rows, dtype=np.int64
            )
        else:
            columns[attr.name] = generator.uniform(low, high, size=num_rows)
    return columns


def shuffle_columns(
    columns: Dict[str, np.ndarray], rng: RngLike = None
) -> Dict[str, np.ndarray]:
    """Apply **one** seeded permutation across every column.

    Row identity is preserved (the same permutation reorders all
    columns), so answers over the shuffled table are multiset-identical
    to the original — only the physical row order changes.  Benchmarks
    use this to destroy any incidental value clustering, producing the
    worst case for zone-map pruning that adaptive clustering must then
    repair.
    """
    if not columns:
        return {}
    sizes = {int(values.shape[0]) for values in columns.values()}
    if len(sizes) != 1:
        raise WorkloadError(
            f"columns disagree on row count: {sorted(sizes)}"
        )
    generator = ensure_rng(rng)
    perm = generator.permutation(sizes.pop())
    return {name: values[perm] for name, values in columns.items()}


def generate_table(
    name: str,
    num_attrs: int,
    num_rows: int,
    rng: RngLike = None,
    initial_layout: str = "column",
    schema: Optional[Schema] = None,
    low: int = PAPER_LOW,
    high: int = PAPER_HIGH,
    shuffle: bool = False,
) -> Table:
    """Generate a paper-style wide table of uniform integers.

    Parameters mirror the paper's setup: ``initial_layout="column"`` is
    the starting point of the adaptive experiment (section 4.1);
    benchmarks that start from a row-major relation pass ``"row"``.
    ``shuffle=True`` additionally applies one seeded permutation across
    all columns (drawn from the same ``rng`` stream, so the result
    stays fully determined by the seed) — see :func:`shuffle_columns`.
    """
    if schema is None:
        schema = wide_schema(num_attrs)
    elif schema.width != num_attrs:
        raise WorkloadError(
            f"schema has {schema.width} attributes, expected {num_attrs}"
        )
    generator = ensure_rng(rng)
    columns = uniform_columns(schema, num_rows, generator, low=low, high=high)
    if shuffle:
        columns = shuffle_columns(columns, generator)
    return Table.from_columns(name, schema, columns, initial_layout)
