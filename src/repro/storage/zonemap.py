"""Per-morsel zone maps (min/max pruning metadata) for every layout.

A *zone map* stores, for each aligned morsel of ``morsel_rows`` rows and
each attribute a layout holds, the minimum and maximum value occurring in
that morsel.  The parallel scan subsystem consults them before dispatch
to skip morsels that provably contain no qualifying rows, and the cost
model uses the surviving fraction to price pruned scans (the chunk-level
pruning that dominates scan cost in clustered stores).

Invariants that make the maps cheap to keep correct:

- Layouts are immutable: :meth:`Table.append_rows` replaces layout
  objects via ``extended()`` rather than mutating them, so a zone map
  cached on a layout object can never go stale.  Epoch invalidation is
  therefore satisfied by construction — a new epoch publishes new layout
  objects, which carry fresh (or incrementally extended) maps.
- All layouts of one table are row-aligned, so the per-morsel stats for
  an attribute are identical no matter which layout produced them.
- Min/max use NaN-ignoring reductions (``np.fmin`` / ``np.fmax``); an
  all-NaN morsel yields NaN bounds, for which every comparison rule is
  False — correctly prunable, since predicates on NaN never qualify.

Pruning is *conservative*: any conjunct that is not a simple
``column <op> literal`` comparison contributes nothing to the mask, and
attributes without stats keep every morsel.  A pruned morsel therefore
provably contains zero qualifying rows, which is what keeps per-morsel
qualifying-row sums exact for selectivity feedback.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import LayoutError
from ..sql.expressions import ColumnRef, Comparison, ComparisonOp, Expr, Literal
from .layout import Layout


def num_morsels_for(num_rows: int, morsel_rows: int) -> int:
    """Number of aligned morsels covering ``num_rows`` rows."""
    if morsel_rows <= 0:
        raise LayoutError(f"morsel_rows must be positive: {morsel_rows}")
    return (num_rows + morsel_rows - 1) // morsel_rows


def morsel_ranges(num_rows: int, morsel_rows: int) -> List[Tuple[int, int]]:
    """Aligned ``(lo, hi)`` row ranges of at most ``morsel_rows`` rows."""
    return [
        (lo, min(lo + morsel_rows, num_rows))
        for lo in range(0, num_rows, morsel_rows)
    ]


class ZoneMaps:
    """Immutable per-morsel min/max stats for one layout's attributes."""

    __slots__ = ("morsel_rows", "num_rows", "mins", "maxs")

    def __init__(
        self,
        morsel_rows: int,
        num_rows: int,
        mins: Dict[str, np.ndarray],
        maxs: Dict[str, np.ndarray],
    ) -> None:
        self.morsel_rows = int(morsel_rows)
        self.num_rows = int(num_rows)
        self.mins = mins
        self.maxs = maxs

    @property
    def num_morsels(self) -> int:
        return num_morsels_for(self.num_rows, self.morsel_rows)

    @property
    def attrs(self) -> Tuple[str, ...]:
        return tuple(self.mins)

    def stats_for(self, attr: str) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """``(mins, maxs)`` arrays for ``attr`` or None if not tracked."""
        mins = self.mins.get(attr)
        if mins is None:
            return None
        return mins, self.maxs[attr]

    def __repr__(self) -> str:
        return (
            f"ZoneMaps(rows={self.num_rows}, morsel_rows={self.morsel_rows}, "
            f"attrs={list(self.mins)})"
        )


def _minmax_per_morsel(
    values: np.ndarray, morsel_rows: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-morsel (min, max) of a 1-D array, NaN-ignoring."""
    n = int(values.shape[0])
    num = num_morsels_for(n, morsel_rows)
    full = n // morsel_rows
    mins = np.empty(num, dtype=values.dtype)
    maxs = np.empty(num, dtype=values.dtype)
    if full:
        head = np.ascontiguousarray(values[: full * morsel_rows])
        head = head.reshape(full, morsel_rows)
        np.fmin.reduce(head, axis=1, out=mins[:full])
        np.fmax.reduce(head, axis=1, out=maxs[:full])
    if num > full:
        tail = values[full * morsel_rows :]
        mins[full] = np.fmin.reduce(tail)
        maxs[full] = np.fmax.reduce(tail)
    return mins, maxs


def build_zone_maps(layout: Layout, morsel_rows: int) -> ZoneMaps:
    """Build zone maps for every attribute of ``layout`` from scratch.

    Column groups are reduced morsel-block at a time over the contiguous
    2-D array (one cache-friendly pass produces stats for all group
    attributes at once); single columns use a reshape-based reduction.
    """
    num_rows = layout.num_rows
    attrs = layout.attrs
    data = getattr(layout, "data", None)
    mins: Dict[str, np.ndarray] = {}
    maxs: Dict[str, np.ndarray] = {}
    if data is not None and getattr(data, "ndim", 0) == 2:
        num = num_morsels_for(num_rows, morsel_rows)
        block_mins = np.empty((num, len(attrs)), dtype=data.dtype)
        block_maxs = np.empty((num, len(attrs)), dtype=data.dtype)
        for i, (lo, hi) in enumerate(morsel_ranges(num_rows, morsel_rows)):
            block = data[lo:hi]
            np.fmin.reduce(block, axis=0, out=block_mins[i])
            np.fmax.reduce(block, axis=0, out=block_maxs[i])
        for j, attr in enumerate(attrs):
            mins[attr] = np.ascontiguousarray(block_mins[:, j])
            maxs[attr] = np.ascontiguousarray(block_maxs[:, j])
    else:
        for attr in attrs:
            mins[attr], maxs[attr] = _minmax_per_morsel(
                layout.column(attr), morsel_rows
            )
    return ZoneMaps(morsel_rows, num_rows, mins, maxs)


def extend_zone_maps(old: ZoneMaps, layout: Layout) -> ZoneMaps:
    """Incrementally extend ``old`` to cover the appended-to ``layout``.

    Complete morsels of the old map are reused untouched; only the tail
    morsel that grew plus any brand-new morsels are recomputed from the
    new layout.  This is what :meth:`Table.append_rows` relies on to keep
    zone maps up to date without a full rebuild per append.
    """
    m = old.morsel_rows
    num_rows = layout.num_rows
    if num_rows < old.num_rows:
        raise LayoutError(
            f"cannot extend zone maps backwards: {old.num_rows} -> {num_rows}"
        )
    complete = old.num_rows // m
    num = num_morsels_for(num_rows, m)
    mins: Dict[str, np.ndarray] = {}
    maxs: Dict[str, np.ndarray] = {}
    for attr in layout.attrs:
        stats = old.stats_for(attr)
        column = layout.column(attr)
        if stats is None:
            mins[attr], maxs[attr] = _minmax_per_morsel(column, m)
            continue
        old_mins, old_maxs = stats
        new_mins = np.empty(num, dtype=column.dtype)
        new_maxs = np.empty(num, dtype=column.dtype)
        new_mins[:complete] = old_mins[:complete]
        new_maxs[:complete] = old_maxs[:complete]
        if num > complete:
            tail_mins, tail_maxs = _minmax_per_morsel(
                column[complete * m :], m
            )
            new_mins[complete:] = tail_mins
            new_maxs[complete:] = tail_maxs
        mins[attr] = new_mins
        maxs[attr] = new_maxs
    return ZoneMaps(m, num_rows, mins, maxs)


def attach_zone_maps(layout: Layout, maps: ZoneMaps) -> None:
    """Cache ``maps`` on ``layout`` (no-op for layouts without the slot)."""
    try:
        object.__setattr__(layout, "_zone_maps", maps)
    except AttributeError:
        pass


def cached_zone_maps(layout: Layout) -> Optional[ZoneMaps]:
    """The zone maps already attached to ``layout``, if any."""
    return getattr(layout, "_zone_maps", None)


def layout_zone_maps(layout: Layout, morsel_rows: int) -> ZoneMaps:
    """Zone maps for ``layout``, built lazily and cached on the object.

    The cache uses the same benign-race pattern as ``attr_set``: layouts
    are immutable, so two threads building concurrently produce
    identical maps and the last write wins.  A cached map is only reused
    when its granularity and row count match (a defensive check; row
    counts cannot actually diverge on an immutable layout).
    """
    cached = cached_zone_maps(layout)
    if (
        cached is not None
        and cached.morsel_rows == morsel_rows
        and cached.num_rows == layout.num_rows
    ):
        return cached
    maps = build_zone_maps(layout, morsel_rows)
    attach_zone_maps(layout, maps)
    return maps


class ZoneMapBuilder:
    """Accumulates per-block min/max during a fused stitching pass.

    The online reorganizer evaluates the query and writes the new layout
    block by block; feeding each stitched block here lets it produce the
    new layout's zone maps in the same single pass over the data.  Blocks
    must arrive in row order and must not straddle morsel boundaries
    (guaranteed because ``EngineConfig`` enforces
    ``morsel_rows % vector_size == 0``).
    """

    def __init__(self, attrs: Sequence[str], morsel_rows: int) -> None:
        self.attrs = tuple(attrs)
        self.morsel_rows = int(morsel_rows)
        self._block_mins: List[np.ndarray] = []
        self._block_maxs: List[np.ndarray] = []
        self._block_starts: List[int] = []
        self._rows_seen = 0

    def add_block(self, start: int, block: np.ndarray) -> None:
        """Record stats for the stitched ``(rows, width)`` block."""
        rows = int(block.shape[0])
        if rows == 0:
            return
        if start != self._rows_seen:
            raise LayoutError(
                f"zone-map blocks must arrive in order: expected row "
                f"{self._rows_seen}, got {start}"
            )
        m = self.morsel_rows
        if start // m != (start + rows - 1) // m:
            raise LayoutError(
                f"block [{start}, {start + rows}) straddles a morsel "
                f"boundary (morsel_rows={m})"
            )
        self._block_mins.append(np.fmin.reduce(block, axis=0))
        self._block_maxs.append(np.fmax.reduce(block, axis=0))
        self._block_starts.append(start)
        self._rows_seen += rows

    def finish(self) -> ZoneMaps:
        """Reduce accumulated block stats into per-morsel zone maps."""
        num_rows = self._rows_seen
        m = self.morsel_rows
        num = num_morsels_for(num_rows, m)
        width = len(self.attrs)
        mins: Dict[str, np.ndarray] = {}
        maxs: Dict[str, np.ndarray] = {}
        if num == 0:
            dtype = (
                self._block_mins[0].dtype if self._block_mins else np.float64
            )
            for attr in self.attrs:
                mins[attr] = np.empty(0, dtype=dtype)
                maxs[attr] = np.empty(0, dtype=dtype)
            return ZoneMaps(m, num_rows, mins, maxs)
        bmins = np.vstack(self._block_mins)
        bmaxs = np.vstack(self._block_maxs)
        morsel_of = np.asarray(self._block_starts, dtype=np.int64) // m
        # Blocks arrive in order, so each morsel's blocks form one
        # contiguous run; reduceat over the run starts collapses them.
        seg_starts = np.searchsorted(morsel_of, np.arange(num))
        for j in range(width):
            attr = self.attrs[j]
            mins[attr] = np.fmin.reduceat(
                np.ascontiguousarray(bmins[:, j]), seg_starts
            )
            maxs[attr] = np.fmax.reduceat(
                np.ascontiguousarray(bmaxs[:, j]), seg_starts
            )
        return ZoneMaps(m, num_rows, mins, maxs)


def ensure_attr_stats(
    layout: Layout, attr: str, morsel_rows: int
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Per-morsel ``(mins, maxs)`` for one attribute, lazily cached.

    Unlike :func:`layout_zone_maps` this never builds stats for the
    layout's *other* attributes — execution-time pruning only pays for
    the predicate columns it actually consults (one min/max scan the
    first time, then cached until the immutable layout is replaced).
    Existing cached maps are extended copy-on-write; a concurrent racer
    produces an identical object and the last write wins.
    """
    if attr not in layout.attr_set:
        return None
    maps = cached_zone_maps(layout)
    valid = (
        maps is not None
        and maps.morsel_rows == morsel_rows
        and maps.num_rows == layout.num_rows
    )
    if valid:
        stats = maps.stats_for(attr)
        if stats is not None:
            return stats
    mins, maxs = _minmax_per_morsel(layout.column(attr), morsel_rows)
    if valid:
        new_mins = dict(maps.mins)
        new_maxs = dict(maps.maxs)
    else:
        new_mins, new_maxs = {}, {}
    new_mins[attr] = mins
    new_maxs[attr] = maxs
    attach_zone_maps(
        layout, ZoneMaps(morsel_rows, layout.num_rows, new_mins, new_maxs)
    )
    return mins, maxs


# Pruning --------------------------------------------------------------


def conjunct_bounds(
    conjunct: Expr,
) -> Optional[Tuple[str, ComparisonOp, float]]:
    """Normalize a conjunct to ``(attr, op, literal)`` if it is a simple
    single-column comparison; None otherwise (no pruning contribution).

    Literal-on-the-left comparisons are normalized with
    :meth:`ComparisonOp.flipped` so ``5 < a`` prunes like ``a > 5``.
    """
    if not isinstance(conjunct, Comparison):
        return None
    left, right = conjunct.left, conjunct.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        return left.name, conjunct.op, float(right.value)
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        return right.name, conjunct.op.flipped(), float(left.value)
    return None


def _rule(
    op: ComparisonOp, mins: np.ndarray, maxs: np.ndarray, value: float
) -> np.ndarray:
    """Boolean keep-mask: True where the morsel *may* hold a match."""
    if op is ComparisonOp.LT:
        return mins < value
    if op is ComparisonOp.LE:
        return mins <= value
    if op is ComparisonOp.GT:
        return maxs > value
    if op is ComparisonOp.GE:
        return maxs >= value
    if op is ComparisonOp.EQ:
        return (mins <= value) & (maxs >= value)
    if op is ComparisonOp.NE:
        return ~((mins == value) & (maxs == value))
    raise LayoutError(f"unknown comparison operator: {op}")  # pragma: no cover


def prune_mask(
    num_morsels: int,
    conjuncts: Iterable[Expr],
    stats_for: Callable[[str], Optional[Tuple[np.ndarray, np.ndarray]]],
) -> np.ndarray:
    """Per-morsel keep mask for a conjunctive predicate.

    ``stats_for(attr)`` supplies ``(mins, maxs)`` arrays (or None when
    the attribute has no stats).  Conjuncts that cannot be normalized and
    attributes without stats keep every morsel — pruning only ever
    removes morsels a simple bound proves empty.
    """
    keep = np.ones(num_morsels, dtype=bool)
    for conjunct in conjuncts:
        normalized = conjunct_bounds(conjunct)
        if normalized is None:
            continue
        attr, op, value = normalized
        stats = stats_for(attr)
        if stats is None:
            continue
        mins, maxs = stats
        if mins.shape[0] != num_morsels:
            continue  # stale / mismatched granularity: prune nothing
        keep &= _rule(op, mins, maxs, value)
    return keep
