"""Persistence for tables: save/load as ``.npz`` plus a JSON sidecar.

Not part of the paper's evaluation (everything is memory-resident), but
needed so example workloads and regenerated benchmark inputs can be
cached on disk between runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import StorageError
from ..sql.types import DataType
from .relation import Table
from .schema import Attribute, Schema

PathLike = Union[str, Path]

#: Extensions :func:`save_table` writes; :func:`_sibling` recognizes
#: exactly these so a dotted *stem* (``data.v2``) is never mangled.
_OWN_SUFFIXES = (".npz", ".json")


def _sibling(path: Path, suffix: str) -> Path:
    """``path`` with ``suffix`` appended to its full name.

    Unlike ``Path.with_suffix``, the stem is preserved verbatim —
    ``data.v2`` becomes ``data.v2.npz``, not ``data.npz``.  Only a
    trailing extension that :func:`save_table` itself produces is
    stripped first, so passing ``tbl``, ``tbl.npz`` or ``tbl.json``
    all address the same pair of files.
    """
    name = path.name
    for own in _OWN_SUFFIXES:
        if name.endswith(own) and len(name) > len(own):
            name = name[: -len(own)]
            break
    return path.with_name(name + suffix)


def save_table(table: Table, path: PathLike) -> None:
    """Write a table's logical content to ``path`` (``.npz`` + ``.json``).

    Only the logical columns are persisted; the physical layout
    configuration is an adaptive, runtime artifact and is intentionally
    not preserved.  (The gateway's snapshot tier layers layout and
    learned-state persistence on top — see repro/gateway/persist.py.)
    """
    path = Path(path)
    columns = {name: table.column(name) for name in table.schema.names}
    np.savez_compressed(_sibling(path, ".npz"), **columns)
    meta = {
        "name": table.name,
        "num_rows": table.num_rows,
        "attributes": [
            {"name": attr.name, "dtype": attr.dtype.value}
            for attr in table.schema
        ],
    }
    _sibling(path, ".json").write_text(json.dumps(meta, indent=2))


def load_table(path: PathLike, initial_layout: str = "column") -> Table:
    """Load a table previously written by :func:`save_table`."""
    path = Path(path)
    meta_path = _sibling(path, ".json")
    npz_path = _sibling(path, ".npz")
    if not meta_path.exists() or not npz_path.exists():
        raise StorageError(f"no saved table at {path}")
    meta = json.loads(meta_path.read_text())
    schema = Schema(
        Attribute(item["name"], DataType.from_any(item["dtype"]))
        for item in meta["attributes"]
    )
    with np.load(npz_path) as archive:
        columns = {name: archive[name] for name in schema.names}
    table = Table.from_columns(
        meta["name"], schema, columns, initial_layout=initial_layout
    )
    if table.num_rows != meta["num_rows"]:
        raise StorageError(
            f"row count mismatch loading {path}: metadata says "
            f"{meta['num_rows']}, data has {table.num_rows}"
        )
    return table
