"""Engine and experiment configuration.

The paper runs on a fixed server (Sandy Bridge Xeon, 64KB L1 / 256KB L2 /
20MB L3, 128 GB RAM).  We expose the equivalent machine parameters as an
explicit :class:`MachineProfile` consumed by the cost model, and the H2O
engine knobs (window size, vector size, adaptation thresholds) as an
:class:`EngineConfig`.

Experiment scale is controlled by the ``H2O_SCALE`` environment variable:
the benchmark harness multiplies its default row counts by this factor so
the full paper-style sweeps can be run at laptop scale (default) or
larger.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from .errors import AdaptationError

#: Number of bytes in one cache line on the modelled machine.
CACHE_LINE_BYTES = 64

#: Width in bytes of the fixed-length attribute values (int64/float64).
WORD_BYTES = 8


@dataclass(frozen=True)
class MachineProfile:
    """Analytic machine model used by the cost model (paper section 3.5).

    The paper's cost model combines sequential/random I/O bandwidth with a
    CPU cost derived from data-cache misses.  All our experiments are hot
    and in-memory (as in the paper), so ``io_bandwidth`` models memory
    bandwidth for sequential scans and ``miss_penalty`` the cost of one
    data-cache miss.
    """

    cache_line_bytes: int = CACHE_LINE_BYTES
    word_bytes: int = WORD_BYTES
    #: Sequential scan bandwidth in bytes/second (memory-resident data).
    io_bandwidth: float = 8e9
    #: Random access bandwidth in bytes/second (gather-style access).
    random_io_bandwidth: float = 1e9
    #: Seconds of CPU stall per data-cache miss.
    miss_penalty: float = 1.2e-8
    #: Seconds of CPU work per value actually processed (predicate or
    #: arithmetic evaluation on one word).
    cpu_per_word: float = 1.5e-9

    @property
    def words_per_line(self) -> int:
        """How many attribute values fit in one cache line."""
        return self.cache_line_bytes // self.word_bytes


@dataclass(frozen=True)
class EngineConfig:
    """Tunable knobs of the H2O engine.

    The defaults mirror the paper's experimental setup: an initial
    monitoring window of 20 queries (section 4.1) that adapts between
    ``min_window`` and ``max_window``, vectors sized to fit L1 (section
    3.3), and lazy layout materialization enabled.
    """

    #: Initial size (in queries) of the monitoring window.
    window_size: int = 20
    #: Lower bound for the dynamic window.
    min_window: int = 8
    #: Upper bound for the dynamic window.
    max_window: int = 60
    #: Whether the window adapts to workload shifts (Fig. 9 ablation).
    dynamic_window: bool = True
    #: Fraction of a query's attribute set that must overlap recent
    #: history for the query to count as a "seen" pattern.
    shift_overlap_threshold: float = 0.5
    #: Fraction of recent queries with unseen patterns that triggers
    #: window shrinking.  Mild pattern drift (a workload gradually
    #: rotating its hot set) should not shrink the window — that starves
    #: the advisor of pattern frequencies; only a substantial burst of
    #: novel patterns counts as a shift.
    shift_trigger_fraction: float = 0.45
    #: Multiplicative window shrink factor on detected shift.
    window_shrink_factor: float = 0.5
    #: Additive window growth (queries) while the workload is stable —
    #: stable workloads earn long windows so adaptation overhead decays.
    window_grow_step: int = 6
    #: Number of tuples per execution vector (sized for cache locality).
    vector_size: int = 4096
    #: How proposed layouts get materialized:
    #: - "lazy" (the paper's H2O): built inside the first query that
    #:   benefits, fused with its execution (online reorganization);
    #: - "eager": built offline the moment the advisor proposes them
    #:   (the create-then-query discipline Fig. 13 shows is slower);
    #: - "never": candidates are proposed but nothing is built (pure
    #:   strategy adaptation — an ablation mode).
    materialization: str = "lazy"
    #: Whether generated operators are cached and reused.
    operator_cache: bool = True
    #: Maximum number of compiled operators kept in the operator cache
    #: (LRU eviction beyond it); 0 means unbounded.
    max_cached_operators: int = 256
    #: Whether the engine keeps a signature-keyed plan cache (the
    #: steady-state fast lane): a repeat query shape skips analysis,
    #: plan enumeration, Eq. 2 costing and codegen-key construction and
    #: goes straight to the cached kernel with fresh literals.
    plan_cache: bool = True
    #: Maximum number of cached plans (LRU eviction beyond it).
    plan_cache_size: int = 256
    #: How far (absolute qualifying-fraction difference) the learned
    #: selectivity of a predicate may drift from the estimate its cached
    #: plan was costed with before the fast-lane entry is evicted and
    #: the next repeat re-plans on the cold path.
    selectivity_drift_band: float = 0.2
    #: Whether to use on-the-fly generated operators at all; when False the
    #: engine falls back to the generic interpreted operator (Fig. 14).
    use_codegen: bool = True
    #: Whether a *failed* generation/compilation degrades to the
    #: interpreted operator (counted in ``Executor.codegen_fallbacks``)
    #: instead of failing the query.  Disable to surface codegen bugs
    #: loudly in tests; the fault-injection oracle exercises both.
    codegen_fallback: bool = True
    #: Whether the engine runs a per-signature circuit breaker over the
    #: codegen path: after ``breaker_threshold`` *consecutive* compile
    #: failures for one query shape the breaker opens and the engine
    #: serves that shape through the interpreted path without touching
    #: the compiler, half-open-probing once per ``breaker_cooldown``
    #: seconds (see repro/resilience/breaker.py and docs/resilience.md).
    codegen_breaker: bool = True
    #: Consecutive compile failures (per shape signature) that open the
    #: codegen circuit breaker.
    breaker_threshold: int = 3
    #: Seconds (on the engine's injectable clock) the breaker stays open
    #: before allowing a half-open probe compile.
    breaker_cooldown: float = 1.0
    #: Initial quarantine span, in *queries*, applied to a candidate
    #: layout whose stitch aborted; doubles per consecutive failure up
    #: to ``quarantine_cap`` so the advisor stops re-stitching a
    #: poisoned group on every trigger.
    quarantine_base: float = 4.0
    #: Upper bound (in queries) on a candidate's quarantine span.
    quarantine_cap: float = 256.0
    #: Minimum windowed pattern frequency needed before a candidate
    #: layout may be materialized (its expected net gain must also be
    #: positive, so this is a floor, not the whole amortization test).
    amortization_threshold: float = 1.0
    #: Which layout-switching policy gates materialization:
    #: - "greedy-paper" (the paper's H2O): any candidate that covers the
    #:   query, clears ``amortization_threshold`` and has positive
    #:   expected gain is built immediately — reorganizations are paid
    #:   up front with no guarantee they amortize;
    #: - "guarded": the regret-bounded policy (docs/adaptation.md).  A
    #:   per-candidate ledger accrues the Eq. 2 benefit the candidate
    #:   *would have delivered* on each query it covers; the build is
    #:   deferred until accrued benefit reaches ``hedging_factor`` times
    #:   the projected build cost, bounding total reorganization spend
    #:   to a constant factor of the benefit actually observed (the
    #:   ski-rental discipline of arXiv 2405.04984).
    adaptation_policy: str = "greedy-paper"
    #: The guarded policy's hedging factor: accrued estimated benefit
    #: must reach this multiple of a candidate's projected build cost
    #: before the switch is allowed.  0 makes the guarded policy
    #: decision-identical to greedy; larger values trade adaptation
    #: latency for thrash resistance.  Ignored under "greedy-paper".
    hedging_factor: float = 2.0
    #: Maximum number of candidate layouts kept in the candidate pool.
    max_candidates: int = 8
    #: Estimated future uses of a proposed layout, as a multiple of its
    #: observed windowed frequency ("the benefit of a new data layout
    #: depends on ... how many times H2O is going to use it", paper
    #: section 3.2): a pattern seen k times in the window is expected to
    #: recur about this-times-k more before it fades.
    future_use_multiplier: float = 2.0
    #: Where adaptation work (advisor runs and layout materialization)
    #: happens:
    #: - "inline" (the paper-faithful default): the advisor runs on the
    #:   query path when the window elapses and new layouts are built
    #:   *online*, fused with the triggering query — all adaptation cost
    #:   is charged to that query's response time;
    #: - "background": queries only *signal* that adaptation is due; a
    #:   background scheduler (see :mod:`repro.service`) runs the
    #:   advisor and materializes layouts off the query path from a
    #:   pinned snapshot, publishing each finished layout atomically via
    #:   an epoch bump.  Queries never pay adaptation cost, at the price
    #:   of answering a few more queries from pre-adaptation layouts.
    #:   Without a scheduler attached the engine safely degrades to
    #:   inline behaviour.
    adaptation_mode: str = "inline"
    #: Whether scans may run morsel-parallel on the shared scan pool.
    #: Serial execution remains the reference semantics: parallel runs
    #: combine per-morsel partial states in morsel-index order so the
    #: answers are bit-identical either way.
    parallel_scans: bool = True
    #: Whether per-morsel min/max zone maps are built (during lazy
    #: materialization's fused pass, on stitches and incrementally on
    #: appends) and consulted to skip non-qualifying morsels before
    #: dispatch and to discount scan cost in Eq. 1/Eq. 2 comparisons.
    zone_maps: bool = True
    #: Rows per morsel: the unit of parallel dispatch and of zone-map
    #: granularity.  Rounded up to a multiple of ``vector_size`` at
    #: construction so that the online reorganizer's fused block pass
    #: always aligns with morsel boundaries.
    morsel_rows: int = 65536
    #: Tables at or above this many rows are eligible for parallel
    #: dispatch; smaller scans stay serial (fan-out overhead dominates).
    #: Zone-map pruning applies regardless of this threshold.
    parallel_threshold_rows: int = 131072
    #: Upper bound on threads one query's scan may occupy, including the
    #: calling thread; 0 means "use every usable core".  The process-wide
    #: scan pool further deducts threads busy on behalf of other queries
    #: (service workers register their load), so a saturated service
    #: degrades toward one thread per query instead of oversubscribing.
    max_scan_threads: int = 0
    #: Storage budget in bytes for the table *including* replicated
    #: groups; 0 means unlimited.  When a new layout pushes the table
    #: past the budget, the least-used replicated groups are retired
    #: (attribute coverage is never broken).
    max_table_bytes: int = 0
    #: Whether the advisor may propose *row reordering*: clustering a
    #: table on its hottest WHERE attribute during reorganization so
    #: zone maps over the sorted prefix prune near-perfectly.  Appends
    #: stay correct by growing an unclustered tail; only the clustered
    #: prefix earns the pruning discount (``clustered_fraction``).
    adaptive_clustering: bool = False
    #: Whether the advisor may propose encoded column layouts
    #: (dictionary / bit-packed replicas whose kernels filter directly
    #: on the codes and decode only qualifying rows).
    encoded_layouts: bool = False
    #: Tables below this many rows are never clustering candidates
    #: (a sort of a small table costs more than it will ever save).
    cluster_rows_min: int = 4096
    #: Columns below this many rows are never encoding candidates.
    encoding_min_rows: int = 4096
    #: Maximum distinct values for dictionary encoding; columns with
    #: higher cardinality stay plain (or bit-packed when their range
    #: allows).
    dict_max_cardinality: int = 4096
    #: Number of shard *processes* a :class:`~repro.sharding.coordinator.
    #: ShardedSystem` partitions each table across; 0 (the default)
    #: disables the sharding tier and the system runs single-process.
    #: Each shard hosts its own full adaptive engine over its slice of
    #: the rows; answers are gathered bit-identically via the per-morsel
    #: combine contract (see docs/architecture.md §11).
    shard_count: int = 0
    #: How rows are distributed across shards:
    #: - "range" (default): contiguous row chunks, preserving global row
    #:   order (projection results concatenate bit-identically to
    #:   serial); appends go to the tail shard so order is kept;
    #: - "hash": rows are hashed on a per-table partition key, enabling
    #:   single-shard routing for key-equality predicates; appends fan
    #:   out by key.  Projection row *order* then follows shard order.
    shard_partition: str = "range"
    #: Seconds the coordinator waits for one shard's reply before it
    #: declares the shard wedged, kills it for respawn, and raises a
    #: retryable ShardError (the service's retry ladder requeues the
    #: ticket; the watchdog respawns the shard).
    scatter_timeout: float = 30.0
    #: Machine model used for all cost estimation.
    machine: MachineProfile = field(default_factory=MachineProfile)

    def __post_init__(self) -> None:
        if self.window_size <= 0:
            raise AdaptationError("window_size must be positive")
        if not (0 < self.min_window <= self.window_size <= self.max_window):
            raise AdaptationError(
                "window bounds must satisfy 0 < min_window <= window_size "
                f"<= max_window, got {self.min_window} <= {self.window_size}"
                f" <= {self.max_window}"
            )
        if self.vector_size <= 0:
            raise AdaptationError("vector_size must be positive")
        if not 0.0 < self.window_shrink_factor < 1.0:
            raise AdaptationError("window_shrink_factor must be in (0, 1)")
        if self.materialization not in ("lazy", "eager", "never"):
            raise AdaptationError(
                "materialization must be 'lazy', 'eager' or 'never', got "
                f"{self.materialization!r}"
            )
        if self.max_cached_operators < 0:
            raise AdaptationError(
                "max_cached_operators must be >= 0 (0 = unbounded), got "
                f"{self.max_cached_operators}"
            )
        if self.plan_cache_size <= 0:
            raise AdaptationError(
                f"plan_cache_size must be positive, got "
                f"{self.plan_cache_size}"
            )
        if self.adaptation_policy not in ("greedy-paper", "guarded"):
            raise AdaptationError(
                "adaptation_policy must be 'greedy-paper' or 'guarded', "
                f"got {self.adaptation_policy!r}"
            )
        if self.hedging_factor < 0:
            raise AdaptationError(
                f"hedging_factor must be >= 0, got {self.hedging_factor}"
            )
        if self.adaptation_mode not in ("inline", "background"):
            raise AdaptationError(
                "adaptation_mode must be 'inline' or 'background', got "
                f"{self.adaptation_mode!r}"
            )
        if self.breaker_threshold < 1:
            raise AdaptationError(
                f"breaker_threshold must be >= 1, got "
                f"{self.breaker_threshold}"
            )
        if self.breaker_cooldown <= 0:
            raise AdaptationError(
                f"breaker_cooldown must be positive, got "
                f"{self.breaker_cooldown}"
            )
        if self.quarantine_base <= 0:
            raise AdaptationError(
                f"quarantine_base must be positive, got "
                f"{self.quarantine_base}"
            )
        if self.quarantine_cap < self.quarantine_base:
            raise AdaptationError(
                "quarantine_cap must be >= quarantine_base, got "
                f"{self.quarantine_cap} < {self.quarantine_base}"
            )
        if self.morsel_rows <= 0:
            raise AdaptationError(
                f"morsel_rows must be positive, got {self.morsel_rows}"
            )
        if self.morsel_rows % self.vector_size != 0:
            # Align upward so the reorganizer's fused vector_size blocks
            # never straddle a morsel boundary (frozen dataclass, hence
            # object.__setattr__ in __post_init__).
            blocks = -(-self.morsel_rows // self.vector_size)
            object.__setattr__(
                self, "morsel_rows", blocks * self.vector_size
            )
        if self.parallel_threshold_rows < 0:
            raise AdaptationError(
                f"parallel_threshold_rows must be >= 0, got "
                f"{self.parallel_threshold_rows}"
            )
        if self.max_scan_threads < 0:
            raise AdaptationError(
                f"max_scan_threads must be >= 0 (0 = all usable cores), "
                f"got {self.max_scan_threads}"
            )
        if not 0.0 < self.selectivity_drift_band <= 1.0:
            raise AdaptationError(
                "selectivity_drift_band must be in (0, 1], got "
                f"{self.selectivity_drift_band}"
            )
        if self.cluster_rows_min < 0:
            raise AdaptationError(
                f"cluster_rows_min must be >= 0, got {self.cluster_rows_min}"
            )
        if self.encoding_min_rows < 0:
            raise AdaptationError(
                f"encoding_min_rows must be >= 0, got "
                f"{self.encoding_min_rows}"
            )
        if self.dict_max_cardinality < 2:
            raise AdaptationError(
                f"dict_max_cardinality must be >= 2, got "
                f"{self.dict_max_cardinality}"
            )
        if self.shard_count < 0:
            raise AdaptationError(
                f"shard_count must be >= 0 (0 = sharding off), got "
                f"{self.shard_count}"
            )
        if self.shard_partition not in ("range", "hash"):
            raise AdaptationError(
                "shard_partition must be 'range' or 'hash', got "
                f"{self.shard_partition!r}"
            )
        if self.scatter_timeout <= 0:
            raise AdaptationError(
                f"scatter_timeout must be positive, got "
                f"{self.scatter_timeout}"
            )

    def with_overrides(self, **kwargs: object) -> "EngineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class GatewayConfig:
    """Knobs of the network gateway and its durability tier.

    Orthogonal to :class:`EngineConfig` (which shapes the engines the
    gateway serves): these control the HTTP surface, per-tenant
    admission, group commit, and the WAL/snapshot cadence.  See
    docs/gateway.md.
    """

    #: Interface the asyncio server binds; port 0 asks the OS for a free
    #: port (the bound port is reported by :attr:`Gateway.port`).
    host: str = "127.0.0.1"
    port: int = 8080
    #: Request header carrying the tenant's API key.  Requests without
    #: it share the ``default_tenant``.
    api_key_header: str = "x-api-key"
    default_tenant: str = "public"
    #: Maximum in-flight requests *per tenant* (admission quota on top
    #: of the service-wide bound); excess requests get HTTP 429 so one
    #: hot tenant cannot starve the rest.
    tenant_quota: int = 16
    #: Distinct API keys that may hold their own tenant state.  Beyond
    #: the cap, new keys share one ``tenant-overflow`` tenant instead of
    #: allocating a fresh session/quota/metrics label each — bounding
    #: memory and metrics cardinality against key-spray clients.
    max_tenants: int = 64
    #: Optional API-key allowlist.  ``None`` (the default) accepts any
    #: key; a tuple rejects requests whose key is not listed with
    #: HTTP 401 before any tenant state is allocated.  Requests with no
    #: key at all always map to the shared ``default_tenant``.
    api_keys: "tuple[str, ...] | None" = None
    #: Default per-request deadline in seconds; a request body may lower
    #: or raise its own via ``timeout_ms``.
    default_timeout: float = 30.0
    #: Largest accepted request body (bytes); HTTP 413 beyond it.
    max_body_bytes: int = 16 * 1024 * 1024
    #: Group commit: appends arriving within this window are coalesced
    #: into one WAL batch with a single fsync.
    group_commit_window: float = 0.002
    #: Upper bound on appends coalesced into one group commit.
    group_commit_max_batch: int = 64
    #: Whether creates/appends are logged to the WAL before being
    #: applied (the durability ablation knob for benchmarks).
    wal_enabled: bool = True
    #: Whether each group commit fsyncs the WAL (off = OS-buffered
    #: writes; acked appends may be lost on machine crash but not on
    #: process crash).
    wal_fsync: bool = True
    #: Automatic checkpoint every N WAL records; 0 = manual
    #: checkpoints only.
    snapshot_every_records: int = 1024
    #: Completed snapshots retained on disk (older ones are pruned).
    snapshots_keep: int = 2

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise AdaptationError(f"port must be in [0, 65535], got {self.port}")
        if self.tenant_quota <= 0:
            raise AdaptationError(
                f"tenant_quota must be positive, got {self.tenant_quota}"
            )
        if self.default_timeout <= 0:
            raise AdaptationError(
                f"default_timeout must be positive, got {self.default_timeout}"
            )
        if self.max_body_bytes <= 0:
            raise AdaptationError(
                f"max_body_bytes must be positive, got {self.max_body_bytes}"
            )
        if self.group_commit_window < 0:
            raise AdaptationError(
                "group_commit_window must be >= 0, got "
                f"{self.group_commit_window}"
            )
        if self.group_commit_max_batch <= 0:
            raise AdaptationError(
                "group_commit_max_batch must be positive, got "
                f"{self.group_commit_max_batch}"
            )
        if self.snapshot_every_records < 0:
            raise AdaptationError(
                "snapshot_every_records must be >= 0 (0 = manual), got "
                f"{self.snapshot_every_records}"
            )
        if self.snapshots_keep < 1:
            raise AdaptationError(
                f"snapshots_keep must be >= 1, got {self.snapshots_keep}"
            )
        if self.max_tenants < 1:
            raise AdaptationError(
                f"max_tenants must be >= 1, got {self.max_tenants}"
            )
        if self.api_keys is not None and not all(
            isinstance(k, str) and k for k in self.api_keys
        ):
            raise AdaptationError(
                "api_keys must be non-empty strings (or None to accept "
                "any key)"
            )
        if not self.api_key_header or "\n" in self.api_key_header:
            raise AdaptationError("api_key_header must be a header name")

    def with_overrides(self, **kwargs: object) -> "GatewayConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


def scale_factor() -> float:
    """Experiment scale multiplier, from the ``H2O_SCALE`` env variable."""
    raw = os.environ.get("H2O_SCALE", "1.0")
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(f"H2O_SCALE must be a number, got {raw!r}") from exc
    if value <= 0:
        raise ValueError(f"H2O_SCALE must be positive, got {value}")
    return value


def scaled_rows(base_rows: int, minimum: int = 1000) -> int:
    """Scale a benchmark's default row count by :func:`scale_factor`."""
    return max(minimum, int(base_rows * scale_factor()))
