"""The static column-store baseline (DSM; "DBMS-C" stand-in)."""

from __future__ import annotations

from typing import Optional

from ..config import EngineConfig
from ..execution.strategies import ExecutionStrategy
from ..storage.column_layout import SingleColumn
from ..storage.relation import Table
from ..storage.stitcher import stitch_single_columns
from .base import StaticEngine


class ColumnStoreEngine(StaticEngine):
    """Fixed column-major layout + late-materialization execution.

    Predicates produce selection vectors, qualifying values are fetched
    into intermediate columns, and arithmetic materializes one
    intermediate per operator — the classic DSM pipeline of paper
    section 2.1.
    """

    strategy = ExecutionStrategy.LATE
    name = "column-store"

    def __init__(
        self, table: Table, config: Optional[EngineConfig] = None
    ) -> None:
        table = _ensure_column_major(table)
        super().__init__(table, config)


def _ensure_column_major(table: Table) -> Table:
    """A table equivalent to ``table`` stored purely column-major."""
    if all(isinstance(layout, SingleColumn) for layout in table.layouts):
        return table
    columns, _stats = stitch_single_columns(
        table.layouts, table.schema.names
    )
    return Table(table.name, table.schema, columns)
