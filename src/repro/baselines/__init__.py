"""Baseline engines the paper compares H2O against.

- :class:`RowStoreEngine` / :class:`ColumnStoreEngine` — static-layout
  engines sharing H2O's executor and code generator, so comparisons
  "purely reflect the differences in data layouts and access patterns"
  (paper section 4.1).  They also stand in for the commercial DBMS-R /
  DBMS-C of Figs. 1–2 (see DESIGN.md substitutions).
- :class:`OptimalEngine` — the oracle: a perfectly tailored column
  group per query, built outside the measured time (Fig. 7's "Optimal").
- :mod:`~repro.baselines.autopart` — a from-scratch implementation of
  the AutoPart offline vertical partitioner [41], the Fig. 8 comparator.
"""

from .base import StaticEngine, StaticReport
from .row_engine import RowStoreEngine
from .column_engine import ColumnStoreEngine
from .optimal import OptimalEngine
from .autopart import AutoPartEngine, AutoPartPartitioner

__all__ = [
    "StaticEngine",
    "StaticReport",
    "RowStoreEngine",
    "ColumnStoreEngine",
    "OptimalEngine",
    "AutoPartEngine",
    "AutoPartPartitioner",
]
