"""The optimal oracle (Fig. 7's "Optimal" curve).

"The performance we would get for each single query if we had a
perfectly tailored data layout as well as the most appropriate code to
access the data (without including the cost of creating the data
layout)."  For each query the oracle materializes — outside the measured
interval — a column group containing exactly the accessed attributes,
then executes fused generated code over it.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Optional, Union

from ..config import EngineConfig
from ..errors import ExecutionError
from ..execution.executor import Executor
from ..execution.strategies import AccessPlan, ExecutionStrategy
from ..sql.analyzer import analyze_query
from ..sql.parser import parse_query
from ..sql.query import Query
from ..storage.column_group import ColumnGroup
from ..storage.relation import Table
from ..storage.stitcher import stitch_group
from .base import StaticReport


class OptimalEngine:
    """Per-query perfect layouts, preparation excluded from timing."""

    name = "optimal"

    def __init__(
        self, table: Table, config: Optional[EngineConfig] = None
    ) -> None:
        self.table = table
        self.config = config or EngineConfig()
        self.executor = Executor(self.config)
        self.reports: list = []
        self._groups: Dict[FrozenSet[str], ColumnGroup] = {}

    def _perfect_group(self, attrs) -> ColumnGroup:
        """The tailored group for this access set (cached, untimed)."""
        key = frozenset(attrs)
        group = self._groups.get(key)
        if group is None:
            ordered = self.table.schema.ordered(key)
            sources = self.table.covering_layouts(ordered)
            group, _stats = stitch_group(
                sources,
                ordered,
                self.table.schema,
                full_width=len(ordered) == self.table.schema.width,
            )
            self._groups[key] = group
        return group

    def execute(self, query: Union[Query, str]) -> StaticReport:
        if isinstance(query, str):
            query = parse_query(query)
        if query.table != self.table.name:
            raise ExecutionError(
                f"engine serves table {self.table.name!r}, query targets "
                f"{query.table!r}"
            )
        info = analyze_query(query, self.table.schema)
        group = self._perfect_group(info.all_attrs)
        plan = AccessPlan(
            strategy=ExecutionStrategy.FUSED, layouts=(group,)
        )
        # Warm the operator cache outside the measured window as well —
        # the oracle assumes "ample time to prepare" (paper section 4.1).
        from ..codegen.generator import generate_operator

        generate_operator(
            info, plan, self.config, self.executor.operator_cache
        )
        started = time.perf_counter()
        result, stats = self.executor.run_plan(info, plan)
        seconds = time.perf_counter() - started
        report = StaticReport(
            index=len(self.reports),
            query=query,
            result=result,
            seconds=seconds,
            plan=stats.plan,
            strategy=stats.strategy.value,
            used_codegen=stats.used_codegen,
            codegen_cache_hit=stats.codegen_cache_hit,
        )
        self.reports.append(report)
        return report

    def run_sequence(self, queries):
        return [self.execute(q) for q in queries]

    def cumulative_seconds(self) -> float:
        return sum(report.seconds for report in self.reports)
