"""The static row-store baseline (NSM; "DBMS-R" stand-in)."""

from __future__ import annotations

from typing import Optional

from ..config import EngineConfig
from ..execution.strategies import ExecutionStrategy
from ..storage.layout import LayoutKind
from ..storage.relation import Table
from ..storage.stitcher import stitch_group
from .base import StaticEngine


class RowStoreEngine(StaticEngine):
    """Fixed row-major layout + volcano-style fused execution.

    If the table is not already stored row-major, construction converts
    it (outside any measured query time — a static system is *born*
    with its layout).
    """

    strategy = ExecutionStrategy.FUSED
    name = "row-store"

    def __init__(
        self, table: Table, config: Optional[EngineConfig] = None
    ) -> None:
        table = _ensure_row_major(table)
        super().__init__(table, config)


def _ensure_row_major(table: Table) -> Table:
    """A table equivalent to ``table`` stored purely row-major."""
    existing = [
        layout
        for layout in table.layouts
        if layout.kind is LayoutKind.ROW
    ]
    if existing and len(table.layouts) == 1:
        return table
    if existing:
        return Table(table.name, table.schema, [existing[0]])
    row, _stats = stitch_group(
        table.layouts,
        table.schema.names,
        table.schema,
        full_width=True,
    )
    return Table(table.name, table.schema, [row])
