"""Shared machinery for the static-layout baseline engines."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..config import EngineConfig
from ..errors import ExecutionError
from ..execution.executor import Executor
from ..execution.result import QueryResult
from ..execution.strategies import AccessPlan, ExecutionStrategy
from ..sql.analyzer import analyze_query
from ..sql.parser import parse_query
from ..sql.query import Query
from ..storage.relation import Table


@dataclass
class StaticReport:
    """Per-query record for a baseline engine (mirrors QueryReport)."""

    index: int
    query: Query
    result: QueryResult
    seconds: float
    plan: str = ""
    strategy: str = ""
    used_codegen: bool = False
    codegen_cache_hit: bool = False
    phases: Dict[str, float] = field(default_factory=dict)


class StaticEngine:
    """A fixed-layout, fixed-strategy engine built on H2O's executor.

    Subclasses pin the strategy; the layouts are whatever the table was
    created with and never change.  Code generation and the operator
    cache are on by default so that the only difference from H2O is the
    absence of adaptation — the paper's experimental control.
    """

    #: Subclasses set the forced execution strategy.
    strategy: ExecutionStrategy = ExecutionStrategy.FUSED
    name: str = "static"

    def __init__(
        self, table: Table, config: Optional[EngineConfig] = None
    ) -> None:
        self.table = table
        self.config = config or EngineConfig()
        self.executor = Executor(self.config)
        self.reports: List[StaticReport] = []

    def plan_for(self, info) -> AccessPlan:
        """The engine's (only) access plan for a query."""
        layouts = self.table.covering_layouts(info.all_attrs)
        return AccessPlan(strategy=self.strategy, layouts=layouts)

    def execute(self, query: Union[Query, str]) -> StaticReport:
        started = time.perf_counter()
        if isinstance(query, str):
            query = parse_query(query)
        if query.table != self.table.name:
            raise ExecutionError(
                f"engine serves table {self.table.name!r}, query targets "
                f"{query.table!r}"
            )
        info = analyze_query(query, self.table.schema)
        plan = self.plan_for(info)
        result, stats = self.executor.run_plan(info, plan)
        seconds = time.perf_counter() - started
        report = StaticReport(
            index=len(self.reports),
            query=query,
            result=result,
            seconds=seconds,
            plan=stats.plan,
            strategy=stats.strategy.value,
            used_codegen=stats.used_codegen,
            codegen_cache_hit=stats.codegen_cache_hit,
            phases={"codegen": stats.codegen_seconds},
        )
        self.reports.append(report)
        return report

    def run_sequence(self, queries) -> List[StaticReport]:
        return [self.execute(q) for q in queries]

    def cumulative_seconds(self) -> float:
        return sum(report.seconds for report in self.reports)
