"""AutoPart: offline vertical partitioning [Papadomanolakis & Ailamaki,
SSDBM 2004], re-implemented from scratch as the Fig. 8 comparator.

AutoPart assumes the entire workload is known up front.  Its two phases:

1. **Atomic fragments** — partition the schema's attributes into
   equivalence classes by *query-access signature*: attributes
   referenced by exactly the same subset of workload queries always
   travel together, so they form the indivisible fragments.
2. **Composite fragments** — greedily merge fragment pairs while the
   estimated workload cost improves, using the same cost model H2O uses
   online (the paper notes H2O "extends AutoPart ... to work for
   dynamic scenarios", so sharing the cost model is faithful).

The resulting partitioning is non-overlapping and covers the schema.
:class:`AutoPartEngine` applies it to a table — layout-creation time is
measured and reported separately, reproducing Fig. 8's stacked bars.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from ..config import EngineConfig
from ..core.cost_model import CostModel, GroupSpec
from ..errors import WorkloadError
from ..execution.strategies import AccessPlan, ExecutionStrategy
from ..sql.analyzer import QueryInfo, analyze_query
from ..sql.parser import parse_query
from ..sql.query import Query
from ..storage.partition import Partitioning
from ..storage.relation import Table
from ..storage.schema import Schema
from ..storage.stitcher import stitch_group
from .base import StaticEngine


class AutoPartPartitioner:
    """Computes an offline partitioning for a known workload."""

    def __init__(
        self,
        schema: Schema,
        cost_model: Optional[CostModel] = None,
        max_iterations: int = 200,
    ) -> None:
        self.schema = schema
        self.cost_model = cost_model or CostModel()
        self.max_iterations = max_iterations

    # Phase 1 -------------------------------------------------------------------

    def atomic_fragments(
        self, queries: Sequence[Query]
    ) -> List[FrozenSet[str]]:
        """Equivalence classes of attributes by query-access signature."""
        signatures: Dict[str, FrozenSet[int]] = {}
        for name in self.schema.names:
            accessed_by = frozenset(
                index
                for index, query in enumerate(queries)
                if name in query.attributes
            )
            signatures[name] = accessed_by
        classes: Dict[FrozenSet[int], List[str]] = {}
        for name, signature in signatures.items():
            classes.setdefault(signature, []).append(name)
        fragments = [frozenset(names) for names in classes.values()]
        fragments.sort(key=lambda f: sorted(f))
        return fragments

    # Phase 2 -------------------------------------------------------------------

    def _workload_cost(
        self,
        infos: Sequence[QueryInfo],
        fragments: Sequence[FrozenSet[str]],
        num_rows: int,
    ) -> float:
        total = 0.0
        for info in infos:
            needed = frozenset(info.all_attrs)
            cover = [f for f in fragments if f & needed]
            select_set = frozenset(info.select_attrs)
            where_set = frozenset(info.where_attrs)
            specs = tuple(
                GroupSpec.of(len(f), len(f & needed), num_rows)
                for f in cover
            )
            select_specs = tuple(
                GroupSpec.of(len(f), len(f & select_set), num_rows)
                for f in cover
                if f & select_set
            )
            where_specs = tuple(
                GroupSpec.of(len(f), len(f & where_set), num_rows)
                for f in cover
                if f & where_set
            )
            fused = self.cost_model.fused_cost(info, specs)
            late = self.cost_model.late_cost(info, select_specs, where_specs)
            total += min(fused, late)
        return total

    def fit(
        self, queries: Sequence[Query], num_rows: int
    ) -> Partitioning:
        """Compute the partitioning for the full (known) workload."""
        if not queries:
            raise WorkloadError("AutoPart needs a non-empty workload")
        infos = [analyze_query(q, self.schema) for q in queries]
        fragments = self.atomic_fragments(queries)
        current_cost = self._workload_cost(infos, fragments, num_rows)
        for _ in range(self.max_iterations):
            best: Optional[Tuple[int, int]] = None
            best_cost = current_cost
            for i in range(len(fragments)):
                for j in range(i + 1, len(fragments)):
                    merged = list(fragments)
                    merged[i] = fragments[i] | fragments[j]
                    del merged[j]
                    cost = self._workload_cost(infos, merged, num_rows)
                    if cost < best_cost - 1e-15:
                        best_cost = cost
                        best = (i, j)
            if best is None:
                break
            i, j = best
            fragments[i] = fragments[i] | fragments[j]
            del fragments[j]
            current_cost = best_cost
        return Partitioning(self.schema, fragments)


class AutoPartEngine(StaticEngine):
    """A static engine whose layouts come from an AutoPart run.

    Layout creation happens at :meth:`prepare` and its duration is
    recorded in :attr:`layout_creation_seconds` — the dark segment of
    Fig. 8's AutoPart bar.  Queries then run with cost-model strategy
    selection over the fixed groups (AutoPart picks layouts offline but
    the executor is H2O's, keeping the comparison about *adaptivity*).
    """

    name = "autopart"

    def __init__(
        self,
        table: Table,
        workload: Sequence[Union[Query, str]],
        config: Optional[EngineConfig] = None,
    ) -> None:
        super().__init__(table, config)
        self.cost_model = CostModel(self.config.machine)
        self.workload = [
            parse_query(q) if isinstance(q, str) else q for q in workload
        ]
        self.partitioning: Optional[Partitioning] = None
        self.layout_creation_seconds = 0.0

    def prepare(self) -> Partitioning:
        """Run the offline tool and physically apply its recommendation."""
        partitioner = AutoPartPartitioner(self.table.schema, self.cost_model)
        self.partitioning = partitioner.fit(
            self.workload, self.table.num_rows
        )
        started = time.perf_counter()
        old_layouts = list(self.table.layouts)
        for group_attrs in self.partitioning.groups:
            ordered = self.table.schema.ordered(group_attrs)
            group, _stats = stitch_group(
                old_layouts,
                ordered,
                self.table.schema,
                full_width=len(ordered) == self.table.schema.width,
            )
            self.table.add_layout(group)
        for layout in old_layouts:
            self.table.drop_layout(layout)
        self.layout_creation_seconds = time.perf_counter() - started
        return self.partitioning

    def plan_for(self, info) -> AccessPlan:
        """Pick fused vs. late per query with the shared cost model."""
        layouts = self.table.covering_layouts(info.all_attrs)
        fused = AccessPlan(ExecutionStrategy.FUSED, layouts)
        late = AccessPlan(ExecutionStrategy.LATE, layouts)
        if self.cost_model.plan_cost(info, fused) <= self.cost_model.plan_cost(
            info, late
        ):
            return fused
        return late
