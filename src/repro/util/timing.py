"""Timing helpers used by the engine and the benchmark harness.

The engine charges layout-creation and code-generation time to the query
that incurs it (as the paper does), so timing is a first-class concern:
:class:`Timer` is a context manager for one interval, :class:`Stopwatch`
accumulates named intervals across a query's lifetime.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator
from contextlib import contextmanager


@dataclass
class Timer:
    """Context manager measuring one wall-clock interval in seconds.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class Stopwatch:
    """Accumulates named wall-clock intervals.

    Used by the engine to attribute query time to phases (planning,
    codegen, reorganization, execution) so reports can break down where
    time goes, mirroring Fig. 8's execution vs. layout-creation split.
    """

    totals: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.totals[name] = self.totals.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def add(self, name: str, seconds: float) -> None:
        """Record ``seconds`` against phase ``name`` directly."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds

    def total(self) -> float:
        """Sum of all recorded phases."""
        return sum(self.totals.values())

    def get(self, name: str) -> float:
        """Accumulated seconds for ``name`` (0.0 when never recorded)."""
        return self.totals.get(name, 0.0)

    def reset(self) -> None:
        self.totals.clear()


def format_seconds(seconds: float) -> str:
    """Render a duration with a unit that keeps 3 significant digits."""
    if seconds < 0:
        return "-" + format_seconds(-seconds)
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f}ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"
