"""Small shared utilities: timing, RNG handling, validation, text tables."""

from .timing import Stopwatch, Timer, format_seconds
from .rng import derive_rng, ensure_rng
from .validation import check_fraction, check_positive, check_unique
from .tables import format_table

__all__ = [
    "Stopwatch",
    "Timer",
    "format_seconds",
    "derive_rng",
    "ensure_rng",
    "check_fraction",
    "check_positive",
    "check_unique",
    "format_table",
]
