"""Argument-validation helpers shared across the library."""

from __future__ import annotations

from typing import Iterable, Sequence


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def check_fraction(name: str, value: float, inclusive: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1] (or (0, 1))."""
    if inclusive:
        ok = 0.0 <= value <= 1.0
    else:
        ok = 0.0 < value < 1.0
    if not ok:
        bounds = "[0, 1]" if inclusive else "(0, 1)"
        raise ValueError(f"{name} must be in {bounds}, got {value}")


def check_unique(name: str, items: Iterable[object]) -> None:
    """Raise ``ValueError`` when ``items`` contains duplicates."""
    seen = set()
    for item in items:
        if item in seen:
            raise ValueError(f"duplicate {name}: {item!r}")
        seen.add(item)


def first_duplicate(items: Sequence[object]) -> "object | None":
    """Return the first duplicated item in ``items`` or ``None``."""
    seen = set()
    for item in items:
        if item in seen:
            return item
        seen.add(item)
    return None
