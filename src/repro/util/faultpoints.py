"""Deterministic fault-injection points (the production-side half).

H2O's correctness story — adaptation is invisible to query answers —
only holds if every failure of the adaptive machinery (a compile error
in a generated operator, a stitch aborted mid-reorganization, a worker
thread dying, a query timing out) degrades to a *documented* exception
or a clean fallback, never a wrong answer or a torn snapshot.  Proving
that requires failing those components on purpose, deterministically.

This module is the hook: production modules call :func:`fault_point` at
named injectable sites.  With no injector installed (always, outside the
testkit) the call is one module-global read and a ``None`` check — it
never allocates and never raises.  The testkit's
:class:`repro.testkit.faults.FaultInjector` installs a handler that
counts occurrences of each point and raises a scheduled exception at
exactly the seeded occurrence index, making every fault reproducible
from a single seed.

Registered points (name → site → injected failure):

- ``codegen.compile`` — :func:`repro.codegen.compile.compile_kernel`,
  before compiling generated source (a compiler failure);
- ``reorg.online`` — :meth:`repro.core.reorganizer.Reorganizer.online`,
  inside the block loop (a stitch aborted mid-reorganization, after
  partial data has been written into the new group's backing array);
- ``reorg.offline`` — :meth:`repro.core.reorganizer.Reorganizer.
  offline`, before the stitch (a background stitch failure);
- ``service.worker`` — :meth:`repro.service.service.H2OService.
  _run_ticket`, after the query is marked running but outside the
  per-query exception scope (an abrupt worker-thread death);
- ``service.execute`` — same site, inside the per-query scope (a forced
  per-query failure, e.g. an injected timeout).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional

Handler = Callable[[str, Dict[str, Any]], None]

_lock = threading.Lock()
_active: Optional[Handler] = None


def install(handler: Handler) -> None:
    """Install ``handler`` as the process-wide fault injector.

    Only one injector may be active at a time — fault schedules are
    seeded and occurrence-counted, so two overlapping injectors would
    make each other's schedules nondeterministic.
    """
    global _active
    with _lock:
        if _active is not None:
            raise RuntimeError(
                "a fault injector is already installed; "
                "fault schedules must not overlap"
            )
        _active = handler


def uninstall(handler: Handler) -> None:
    """Remove ``handler`` if it is the active injector (idempotent)."""
    global _active
    with _lock:
        # ``==`` rather than ``is``: bound methods are re-created on
        # every attribute access, so identity would never match when an
        # injector installs ``self._handle``.
        if _active == handler:
            _active = None


def active() -> Optional[Handler]:
    """The currently installed injector handler, if any."""
    return _active


def fault_point(name: str, **context: Any) -> None:
    """Mark an injectable failure site.

    No-op unless an injector is installed; the injector may raise to
    simulate the failure this site models.  ``context`` carries
    site-specific detail (attribute sets, query SQL, block offsets) for
    the injector's records.
    """
    handler = _active
    if handler is not None:
        handler(name, context)
