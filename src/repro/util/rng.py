"""Deterministic random-number handling.

Every stochastic component (data generation, workload generation) takes a
seed or an already-constructed :class:`numpy.random.Generator`.  Derived
streams are produced with :func:`derive_rng` so that, e.g., the table data
and the query sequence of one experiment are independent but both fully
determined by the experiment seed.
"""

from __future__ import annotations

import zlib
from typing import Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def ensure_rng(rng: RngLike) -> np.random.Generator:
    """Coerce ``rng`` (seed, Generator, or None) to a Generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def derive_rng(rng: RngLike, *tags: object) -> np.random.Generator:
    """Derive an independent child generator from ``rng`` and ``tags``.

    The tags are hashed into the seed sequence, so the same parent seed +
    tags always yield the same child stream regardless of how many other
    streams were derived in between.

    The tag hash is ``zlib.crc32`` — *not* Python's built-in ``hash()``,
    which is salted per process (PYTHONHASHSEED) and would silently make
    "derived" streams unreproducible across runs.
    """
    parent = ensure_rng(rng)
    tag_bytes = "\x1f".join(str(t) for t in tags).encode("utf-8")
    tag_seed = zlib.crc32(tag_bytes) & 0xFFFFFFFF
    child_seed = int(parent.integers(0, 2**32)) ^ tag_seed
    return np.random.default_rng(child_seed)
