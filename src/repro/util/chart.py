"""Plotting-free ASCII charts for the benchmark CLI.

The paper's figures are line plots (response time vs. query sequence or
a swept parameter) and grouped bars.  These helpers render the same
series as terminal graphics so `python -m repro.bench fig7 --chart`
shows the *shape* directly, with no plotting dependency.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

#: Glyphs assigned to series, in order.
SERIES_GLYPHS = "ox+*#@%&"


def _scale(value: float, low: float, high: float, steps: int) -> int:
    if high <= low:
        return 0
    ratio = (value - low) / (high - low)
    return min(steps - 1, max(0, int(round(ratio * (steps - 1)))))


def line_chart(
    series: Dict[str, Sequence[float]],
    width: int = 72,
    height: int = 16,
    title: str = "",
    log_y: bool = False,
) -> str:
    """Render one or more numeric series as an ASCII line chart.

    All series share the x axis (their index) and the y range.  With
    ``log_y`` the y axis is logarithmic (the paper's Fig. 10 style).
    """
    if not series:
        raise ValueError("line_chart needs at least one series")
    lengths = {len(values) for values in series.values()}
    if 0 in lengths:
        raise ValueError("line_chart series must be non-empty")

    def transform(value: float) -> float:
        if log_y:
            return math.log10(max(value, 1e-12))
        return value

    all_values = [
        transform(v) for values in series.values() for v in values
    ]
    low, high = min(all_values), max(all_values)
    if high == low:
        high = low + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        for x_index, value in enumerate(values):
            x = _scale(x_index, 0, max(1, len(values) - 1), width)
            y = _scale(transform(value), low, high, height)
            grid[height - 1 - y][x] = glyph

    def y_label(level: float) -> str:
        raw = 10**level if log_y else level
        return f"{raw:10.4g}"

    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        level = high - (high - low) * row_index / (height - 1)
        prefix = (
            y_label(level)
            if row_index in (0, height // 2, height - 1)
            else " " * 10
        )
        lines.append(prefix + " |" + "".join(row))
    lines.append(" " * 10 + " +" + "-" * width)
    legend = "   ".join(
        f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def bar_chart(
    bars: Dict[str, float],
    width: int = 50,
    title: str = "",
    unit: str = "s",
) -> str:
    """Render labelled horizontal bars (the paper's Fig. 8/13 style)."""
    if not bars:
        raise ValueError("bar_chart needs at least one bar")
    peak = max(bars.values())
    label_width = max(len(name) for name in bars)
    lines: List[str] = []
    if title:
        lines.append(title)
    for name, value in bars.items():
        filled = (
            0 if peak <= 0 else max(1, int(round(value / peak * width)))
        ) if value > 0 else 0
        lines.append(
            f"{name.rjust(label_width)} | "
            + "#" * filled
            + f" {value:.4g}{unit}"
        )
    return "\n".join(lines)
