"""Plain-text table rendering for benchmark reports.

The benchmark harness prints every figure/table as an aligned text table
(the same rows/series the paper plots), so the output is diffable and
recordable in EXPERIMENTS.md without any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: "str | None" = None,
) -> str:
    """Render ``rows`` as an aligned, pipe-separated text table."""
    rendered: List[List[str]] = [[_render_cell(h) for h in headers]]
    for row in rows:
        cells = [_render_cell(c) for c in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(headers)}"
            )
        rendered.append(cells)
    widths = [
        max(len(r[col]) for r in rendered) for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        cell.ljust(width) for cell, width in zip(rendered[0], widths)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row_cells in rendered[1:]:
        lines.append(
            " | ".join(
                cell.rjust(width) for cell, width in zip(row_cells, widths)
            )
        )
    return "\n".join(lines)
