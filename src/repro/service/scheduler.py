"""Background adaptation: the advisor and reorganizer off the query path.

The paper charges all adaptation cost — advisor runs, layout stitching
— to the triggering query (``adaptation_mode="inline"``).  A service
under heavy concurrent traffic can instead run adaptation as a
*background plugin* next to the live workload (the model of Hyrise's
automatic clustering plugin, and the "safe online reorganization
concurrent with query arrival" framing of Rong et al.):

1. query threads merely *signal* that an engine's adaptation window
   elapsed (a non-blocking Event set);
2. the scheduler thread runs the advisor under the engine lock — brief,
   queries' scans continue — refreshing the candidate pool;
3. eligible candidates are stitched **off-lock** from a pinned
   :class:`~repro.storage.relation.LayoutSnapshot` (the expensive part:
   a full pass over the source layouts);
4. each finished group is published atomically under the engine lock
   via a single layout-epoch bump — concurrent queries keep scanning
   their pinned snapshots and simply pick up the new layout (and drop
   their cached plans) on their next admission.

A publication invalidated by a concurrent row append is discarded and
retried against a fresh snapshot on the next cycle.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Set

from ..errors import ReorganizationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import H2OEngine
    from ..core.system import H2OSystem


class AdaptationScheduler:
    """Daemon thread running adaptation cycles for a system's engines."""

    def __init__(
        self,
        system: "H2OSystem",
        poll_interval: float = 0.02,
        name: str = "h2o-adaptation",
    ) -> None:
        self.system = system
        self.poll_interval = poll_interval
        self._wake = threading.Event()
        self._stop = threading.Event()
        #: Overload ladder (docs/resilience.md): the service pauses
        #: background stitching *before* it starts shedding queries —
        #: adaptation is an optimization and must yield to load.
        self._paused = threading.Event()
        self._pause_lock = threading.Lock()
        self._attached: Set[int] = set()
        self._thread = threading.Thread(
            target=self._loop, name=name, daemon=True
        )
        #: Telemetry (monotonic; read without a lock — single writer).
        self.cycles = 0
        self.advisor_runs = 0
        self.groups_published = 0
        self.groups_discarded = 0
        #: Stitches that aborted mid-build (ReorganizationError).  The
        #: candidate stays eligible and is retried on a later cycle;
        #: the testkit oracle matches this count against its injected
        #: faults so an abort can never be swallowed silently.
        self.stitch_failures = 0
        #: How many times the overload ladder paused this scheduler.
        self.pauses = 0

    # Lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the thread and detach the due-ness signals."""
        self._stop.set()
        self._wake.set()
        if self._thread.is_alive():
            self._thread.join(timeout)
        for engine in self.system.engines():
            if id(engine) in self._attached:
                engine.attach_adaptation_signal(None)
        self._attached.clear()

    @property
    def running(self) -> bool:
        return self._thread.is_alive() and not self._stop.is_set()

    # Overload ladder --------------------------------------------------------

    def pause(self) -> None:
        """Suspend adaptation cycles (idempotent, counted once per
        pause).  In-flight stitches finish; no new cycle starts."""
        with self._pause_lock:
            if not self._paused.is_set():
                self._paused.set()
                self.pauses += 1

    def resume(self) -> None:
        """Lift an overload pause (idempotent)."""
        with self._pause_lock:
            if self._paused.is_set():
                self._paused.clear()
                self._wake.set()

    @property
    def paused(self) -> bool:
        return self._paused.is_set()

    # Signalling -----------------------------------------------------------

    def notify(self, engine: "H2OEngine") -> None:
        """Non-blocking due-ness signal (called from query threads)."""
        self._wake.set()

    def attach(self, engine: "H2OEngine") -> None:
        """Wire this scheduler's due-ness signal into ``engine``.

        Idempotent; called eagerly by the service at table registration
        and lazily by :meth:`run_cycle` for engines created elsewhere.
        """
        if id(engine) not in self._attached:
            engine.attach_adaptation_signal(self.notify)
            self._attached.add(id(engine))

    # The cycle ------------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self.poll_interval)
            self._wake.clear()
            if self._stop.is_set():
                break
            self.run_cycle()

    def run_cycle(self) -> int:
        """One pass over all engines; returns groups published.

        Also callable synchronously (tests, draining on shutdown).
        """
        if self._paused.is_set():
            # Overloaded: adaptation yields to query traffic entirely.
            return 0
        published = 0
        self.cycles += 1
        for engine in self.system.engines():
            self.attach(engine)
            if engine.config.adaptation_mode != "background":
                continue
            if engine.adaptation_due():
                candidates = engine.run_adaptation_cycle()
                self.advisor_runs += 1
            else:
                candidates = engine.background_candidates()
            for candidate in candidates:
                if self._stop.is_set():
                    return published
                # The expensive stitch runs against a pinned snapshot
                # with no lock held; queries keep planning/scanning.
                snapshot = engine.table.snapshot()
                if snapshot.find_group(candidate.attrs) is not None:
                    continue
                try:
                    outcome = engine.reorganizer.offline(
                        snapshot, candidate.attrs
                    )
                except ReorganizationError:
                    # The stitch died before producing a group: nothing
                    # was published, the candidate stays eligible, and
                    # the next cycle retries from a fresh snapshot —
                    # under the engine's exponential-backoff quarantine,
                    # so a persistently poisoned group thins out instead
                    # of failing every cycle.
                    self.stitch_failures += 1
                    engine.note_stitch_failure(candidate)
                    continue
                if engine.publish_group(outcome.group, outcome.seconds):
                    self.groups_published += 1
                    published += 1
                else:
                    self.groups_discarded += 1
        return published

    def stats(self) -> dict:
        """Defensive copy of the scheduler's telemetry."""
        return {
            "cycles": self.cycles,
            "advisor_runs": self.advisor_runs,
            "groups_published": self.groups_published,
            "groups_discarded": self.groups_discarded,
            "stitch_failures": self.stitch_failures,
            "running": self.running,
            "paused": self.paused,
            "pauses": self.pauses,
        }
