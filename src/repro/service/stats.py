"""Thread-safe service telemetry: counters and latency percentiles.

The service records one latency sample per completed query into a
bounded reservoir (most recent ``capacity`` samples) and a handful of
monotonic counters.  :meth:`ServiceStats.snapshot` returns a fully
defensive copy — a plain dict of numbers computed under the lock — so
dashboards and tests can never observe or corrupt live internal state.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List


def percentile(samples: List[float], fraction: float) -> float:
    """The ``fraction`` (0..1) percentile of ``samples`` (nearest-rank).

    Returns 0.0 for an empty sample set.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if fraction <= 0.0:
        return ordered[0]
    if fraction >= 1.0:
        return ordered[-1]
    rank = max(0, min(len(ordered) - 1, int(round(fraction * len(ordered))) - 1))
    return ordered[rank]


class ServiceStats:
    """Counters + bounded latency reservoir for one service instance."""

    def __init__(self, capacity: int = 8192) -> None:
        self._lock = threading.Lock()
        self._latencies: Deque[float] = deque(maxlen=capacity)
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.timeouts = 0
        self.failed = 0
        self.cancelled = 0
        #: Worker threads that died abruptly (exception escaping the
        #: per-ticket scope); each is replaced by a fresh thread unless
        #: the service is closing.  The testkit oracle matches this
        #: count against its injected worker-death faults.
        self.worker_deaths = 0
        #: Replacement workers spawned by the watchdog to restore the
        #: pool to its target strength after deaths.
        self.worker_respawns = 0
        #: Tickets put back on the queue because their worker died
        #: mid-flight (the ticket survives the thread: same admission
        #: slot, attempt counter bumped).  The chaos oracle matches this
        #: against its injected ``service.worker`` faults.
        self.requeued_deaths = 0
        #: Tickets requeued after a *retryable* per-query failure
        #: (``exc.is_retryable``, see repro/errors.py) within their
        #: attempt budget and deadline.  Matched against injected
        #: ``service.execute`` faults.
        self.retried_failures = 0
        #: Queries answered correctly but through a degradation rung
        #: (``QueryReport.degraded``): codegen fallback, breaker
        #: short-circuit, or an aborted online reorganization.
        self.degraded = 0
        #: Peak number of queries executing simultaneously (a direct
        #: measure of scan overlap across workers).
        self.peak_concurrency = 0
        self._running = 0
        #: Morsel-driven scan telemetry, aggregated over completed
        #: queries: how many aligned morsels were planned, how many
        #: zone maps pruned before dispatch, how many queries genuinely
        #: ran multi-threaded, and the largest thread grant any single
        #: scan received (the pool budgets grants against the service's
        #: own in-flight load — see repro/execution/parallel.py).
        self.morsels_total = 0
        self.morsels_pruned = 0
        self.parallel_queries = 0
        self.scan_threads_used = 0

    # Recording -----------------------------------------------------------

    def note_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def note_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def note_started(self) -> None:
        with self._lock:
            self._running += 1
            if self._running > self.peak_concurrency:
                self.peak_concurrency = self._running

    def note_completed(self, seconds: float) -> None:
        with self._lock:
            self._running = max(0, self._running - 1)
            self.completed += 1
            self._latencies.append(seconds)

    def note_failed(self, started: bool = True) -> None:
        """Count a failed query; ``started=False`` when it never ran
        (e.g. drained at shutdown) so the in-flight gauge stays honest.
        """
        with self._lock:
            if started:
                self._running = max(0, self._running - 1)
            self.failed += 1

    def note_worker_death(self) -> None:
        with self._lock:
            self.worker_deaths += 1

    def note_worker_respawn(self) -> None:
        with self._lock:
            self.worker_respawns += 1

    def note_requeued(self, death: bool) -> None:
        """A started ticket went back on the queue for another attempt.

        Decrements the in-flight gauge (the ticket re-enters through
        ``note_started`` on its next attempt) and records which retry
        rung fired: a worker death (``death=True``) or a retryable
        per-query failure.
        """
        with self._lock:
            self._running = max(0, self._running - 1)
            if death:
                self.requeued_deaths += 1
            else:
                self.retried_failures += 1

    def note_degraded(self) -> None:
        with self._lock:
            self.degraded += 1

    def note_scan(
        self,
        morsels_total: int,
        morsels_pruned: int,
        threads_used: int,
        parallel: bool,
    ) -> None:
        """Fold one completed query's morsel telemetry into the totals."""
        with self._lock:
            self.morsels_total += int(morsels_total)
            self.morsels_pruned += int(morsels_pruned)
            if parallel:
                self.parallel_queries += 1
            if threads_used > self.scan_threads_used:
                self.scan_threads_used = int(threads_used)

    def running(self) -> int:
        """Queries executing right now (the scan pool's load provider).

        Called from arbitrary threads on every grant decision, so it
        must stay cheap: one lock acquisition, one int read.
        """
        with self._lock:
            return self._running

    def note_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def note_cancelled(self) -> None:
        with self._lock:
            self.cancelled += 1

    # Reporting -----------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """A consistent defensive copy of all counters and percentiles."""
        with self._lock:
            samples = list(self._latencies)
            snap: Dict[str, float] = {
                "submitted": self.submitted,
                "completed": self.completed,
                "rejected": self.rejected,
                "timeouts": self.timeouts,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "worker_deaths": self.worker_deaths,
                "worker_respawns": self.worker_respawns,
                "requeued_deaths": self.requeued_deaths,
                "retried_failures": self.retried_failures,
                "degraded": self.degraded,
                "in_flight": self._running,
                "peak_concurrency": self.peak_concurrency,
                "morsels_total": self.morsels_total,
                "morsels_pruned": self.morsels_pruned,
                "parallel_queries": self.parallel_queries,
                "scan_threads_used": self.scan_threads_used,
            }
        snap["latency_samples"] = len(samples)
        snap["p50_ms"] = percentile(samples, 0.50) * 1e3
        snap["p99_ms"] = percentile(samples, 0.99) * 1e3
        snap["max_ms"] = (max(samples) if samples else 0.0) * 1e3
        snap["mean_ms"] = (
            sum(samples) / len(samples) if samples else 0.0
        ) * 1e3
        return snap
