"""Admission control: a bounded queue with graceful rejection.

A store serving heavy concurrent traffic must bound the work it accepts
— an unbounded queue turns a transient overload into an ever-growing
latency cliff.  The admission controller tracks the number of queries
*in the system* (waiting or executing) against a fixed capacity and
rejects the excess at submission time with
:class:`~repro.errors.ServiceOverloadedError` — back-pressure, not a
crash.  Rejection is O(1) and happens in the client's thread before any
resources are committed.
"""

from __future__ import annotations

import threading
from typing import Dict

from ..errors import ServiceError


class AdmissionController:
    """Counts in-flight queries against a hard capacity bound."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ServiceError(
                f"admission capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._lock = threading.Lock()
        self._in_flight = 0
        self.admitted = 0
        self.rejected = 0
        self.peak_in_flight = 0

    def try_acquire(self) -> bool:
        """Admit one query if the bound allows; count the outcome."""
        with self._lock:
            if self._in_flight >= self.capacity:
                self.rejected += 1
                return False
            self._in_flight += 1
            self.admitted += 1
            if self._in_flight > self.peak_in_flight:
                self.peak_in_flight = self._in_flight
            return True

    def release(self) -> None:
        """One admitted query left the system (finished, failed, or
        was cancelled)."""
        with self._lock:
            if self._in_flight > 0:
                self._in_flight -= 1

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def stats(self) -> Dict[str, int]:
        """A consistent defensive copy of the admission counters."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "in_flight": self._in_flight,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "peak_in_flight": self.peak_in_flight,
            }
