"""The concurrent query service: multi-client sessions over one store.

This package lifts the single-threaded :class:`~repro.core.system.H2OSystem`
into a multi-client service:

- :class:`~repro.service.service.H2OService` — worker pool + submission
  API (futures, timeouts, graceful shutdown);
- :class:`~repro.service.admission.AdmissionController` — bounded
  in-flight capacity with O(1) back-pressure rejection;
- :class:`~repro.service.session.Session` — per-client handles with
  their own accounting and default timeout;
- :class:`~repro.service.scheduler.AdaptationScheduler` — background
  adaptation off the query path (``adaptation_mode="background"``);
- :class:`~repro.service.stats.ServiceStats` — thread-safe counters and
  latency percentiles.

The service is *self-healing* (docs/resilience.md): a worker watchdog
prunes dead threads and respawns them under a token-bucket budget,
tickets whose worker died (or whose failure was transient, see
``H2OError.is_retryable``) are requeued within an attempt budget and
deadline, an overload ladder pauses background adaptation before
queries are shed, and :meth:`~repro.service.service.H2OService.health`
exposes the whole degradation state as one immutable
:class:`~repro.resilience.health.HealthReport`.

Correctness rests on snapshot-isolated layout reads
(:class:`~repro.storage.relation.LayoutSnapshot`): queries plan and scan
against an immutable snapshot while reorganization publishes new layouts
via a single atomic epoch bump.
"""

from ..resilience.health import HealthReport
from .admission import AdmissionController
from .scheduler import AdaptationScheduler
from .service import H2OService, QueryFuture
from .session import Session
from .stats import ServiceStats, percentile

__all__ = [
    "AdmissionController",
    "AdaptationScheduler",
    "H2OService",
    "HealthReport",
    "QueryFuture",
    "Session",
    "ServiceStats",
    "percentile",
]
