"""The concurrent query service fronting the adaptive store.

:class:`H2OService` turns the single-caller :class:`~repro.core.system.
H2OSystem` into a multi-client service:

- **worker pool** — ``num_workers`` threads drain a shared queue and
  execute queries through the (thread-safe) engines.  NumPy kernels
  release the GIL on large blocks, so scans from different workers
  genuinely overlap on multi-core hosts;
- **admission control** — at most ``max_pending`` queries may be in the
  system (queued + executing); the excess is rejected *at submission*
  with :class:`~repro.errors.ServiceOverloadedError` instead of piling
  up without bound;
- **per-query timeouts** — a query that has not finished within its
  timeout raises :class:`~repro.errors.QueryTimeoutError` to the
  waiter; if it had not started it is cancelled and never runs;
- **snapshot-isolated reads** — every query executes against the layout
  snapshot pinned at its admission into the engine (see
  :class:`~repro.storage.relation.LayoutSnapshot`), so a background
  reorganization can never mutate a layout mid-scan;
- **background adaptation** — with ``adaptation_mode="background"`` in
  the engine config, an :class:`~repro.service.scheduler.
  AdaptationScheduler` thread runs the advisor and stitches new layouts
  off the query path, publishing them atomically via epoch bumps.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from typing import Dict, List, Optional, Sequence, Union

from ..config import EngineConfig
from ..core.engine import QueryReport
from ..core.system import H2OSystem
from ..errors import (
    QueryTimeoutError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from ..sql.parser import parse_query
from ..util.faultpoints import fault_point
from ..sql.query import Query
from ..storage.relation import Table
from .admission import AdmissionController
from .scheduler import AdaptationScheduler
from .session import Session
from .stats import ServiceStats

_PENDING = "pending"
_RUNNING = "running"
_DONE = "done"
_FAILED = "failed"
_CANCELLED = "cancelled"


class _QueryTicket:
    """One submitted query's lifecycle, shared by waiter and worker."""

    __slots__ = (
        "query",
        "session",
        "deadline",
        "submitted_at",
        "lock",
        "event",
        "state",
        "report",
        "exception",
        "abandoned",
    )

    def __init__(
        self,
        query: Query,
        session: Optional[Session],
        deadline: Optional[float],
    ) -> None:
        self.query = query
        self.session = session
        self.deadline = deadline
        self.submitted_at = time.monotonic()
        self.lock = threading.Lock()
        self.event = threading.Event()
        self.state = _PENDING
        self.report: Optional[QueryReport] = None
        self.exception: Optional[BaseException] = None
        #: The waiter gave up (timeout) while the query was running;
        #: the worker finishes it but discards the outcome silently.
        self.abandoned = False

    # Worker side ---------------------------------------------------------

    def mark_running(self) -> bool:
        """PENDING → RUNNING; False if cancelled meanwhile."""
        with self.lock:
            if self.state != _PENDING:
                return False
            self.state = _RUNNING
            return True

    def complete(self, report: QueryReport) -> None:
        with self.lock:
            self.state = _DONE
            self.report = report
        self.event.set()

    def fail(self, exc: BaseException) -> None:
        with self.lock:
            self.state = _FAILED
            self.exception = exc
        self.event.set()

    # Waiter side ---------------------------------------------------------

    def cancel(self) -> bool:
        """PENDING → CANCELLED; False once running or finished."""
        with self.lock:
            if self.state != _PENDING:
                return False
            self.state = _CANCELLED
        self.event.set()
        return True

    def abandon(self) -> None:
        with self.lock:
            self.abandoned = True


class QueryFuture:
    """Handle to an admitted query; resolves to a :class:`QueryReport`."""

    def __init__(self, ticket: _QueryTicket, service: "H2OService") -> None:
        self._ticket = ticket
        self._service = service

    def done(self) -> bool:
        return self._ticket.event.is_set()

    def cancel(self) -> bool:
        """Cancel if not started; releases the admission slot."""
        if self._ticket.cancel():
            self._service._on_cancelled(self._ticket)
            return True
        return False

    def result(self, timeout: Optional[float] = None) -> QueryReport:
        """The query's report, waiting up to ``timeout`` seconds.

        Raises :class:`QueryTimeoutError` when neither the explicit
        ``timeout`` nor the ticket's own deadline is met; re-raises the
        worker-side exception if execution failed.
        """
        ticket = self._ticket
        wait = timeout
        if ticket.deadline is not None:
            remaining = ticket.deadline - time.monotonic()
            wait = (
                remaining if wait is None else min(wait, remaining)
            )
        if wait is not None:
            wait = max(0.0, wait)
        finished = ticket.event.wait(wait)
        if not finished:
            # Best effort: cancel if still queued; a running query
            # completes in the background with its result discarded.
            if ticket.cancel():
                self._service._on_cancelled(ticket)
            else:
                ticket.abandon()
            self._service._on_timeout(ticket)
            raise QueryTimeoutError(
                f"query did not finish within "
                f"{wait if timeout is None else timeout:.3f}s: "
                f"{ticket.query.to_sql()}"
            )
        with ticket.lock:
            state = ticket.state
            report = ticket.report
            exception = ticket.exception
        if state == _DONE:
            return report
        if state == _CANCELLED:
            raise QueryTimeoutError(
                f"query was cancelled before execution: "
                f"{ticket.query.to_sql()}"
            )
        raise exception


class H2OService:
    """Multi-client concurrent query service over the adaptive store."""

    _ids = itertools.count(1)

    def __init__(
        self,
        system: Optional[H2OSystem] = None,
        *,
        config: Optional[EngineConfig] = None,
        num_workers: int = 4,
        max_pending: int = 64,
        default_timeout: Optional[float] = None,
        name: str = "h2o-service",
    ) -> None:
        if system is not None and config is not None:
            raise ValueError(
                "pass either an existing system or a config, not both"
            )
        self.system = system or H2OSystem(config=config)
        if num_workers < 0:
            raise ValueError(
                f"num_workers must be >= 0, got {num_workers}"
            )
        self.name = name
        self.default_timeout = default_timeout
        self.admission = AdmissionController(max_pending)
        self.stats = ServiceStats()
        self._queue: "queue.SimpleQueue[Optional[_QueryTicket]]" = (
            queue.SimpleQueue()
        )
        self._closed = threading.Event()
        self._session_lock = threading.Lock()
        self._sessions: Dict[str, Session] = {}
        self._worker_lock = threading.Lock()
        self._worker_ids = itertools.count()
        self._workers: List[threading.Thread] = []
        for _ in range(num_workers):
            self._spawn_worker()
        self.scheduler: Optional[AdaptationScheduler] = None
        if self.system.config.adaptation_mode == "background":
            self.scheduler = AdaptationScheduler(self.system)
            self.scheduler.start()

    # Catalog -------------------------------------------------------------

    def register(self, table: Table, replace: bool = False) -> None:
        """Register a table with the underlying system.

        Under background adaptation the engine is created eagerly and
        the scheduler's due-ness signal attached *before* the first
        query arrives, so no early query pays the inline adaptation
        cost during the scheduler's startup window.
        """
        self.system.register(table, replace=replace)
        if self.scheduler is not None:
            self.scheduler.attach(self.system.engine_for(table.name))

    # Sessions ------------------------------------------------------------

    def session(
        self,
        client: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Session:
        """Open a client session (timeout defaults to the service's)."""
        session_id = client or f"session-{next(self._ids)}"
        session = Session(
            self,
            session_id,
            default_timeout=(
                timeout if timeout is not None else self.default_timeout
            ),
        )
        with self._session_lock:
            self._sessions[session_id] = session
        return session

    def sessions(self) -> Dict[str, Session]:
        """A defensive copy of the open sessions by id."""
        with self._session_lock:
            return dict(self._sessions)

    # Submission ----------------------------------------------------------

    def submit(
        self,
        query: Union[Query, str],
        session: Optional[Session] = None,
        timeout: Optional[float] = None,
    ) -> QueryFuture:
        """Admit a query into the bounded queue; returns a future.

        Raises :class:`ServiceOverloadedError` when the queue bound is
        exceeded and :class:`ServiceClosedError` after :meth:`close`.
        Parsing happens in the caller's thread so syntax errors raise
        synchronously.
        """
        if self._closed.is_set():
            raise ServiceClosedError(f"service {self.name!r} is closed")
        if isinstance(query, str):
            query = parse_query(query)
        if timeout is None:
            timeout = self.default_timeout
        self.stats.note_submitted()
        if session is not None:
            session._note("submitted")
        if not self.admission.try_acquire():
            self.stats.note_rejected()
            if session is not None:
                session._note("rejected")
            raise ServiceOverloadedError(
                f"service {self.name!r} is at capacity "
                f"({self.admission.capacity} queries in flight); "
                "retry later"
            )
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        ticket = _QueryTicket(query, session, deadline)
        self._queue.put(ticket)
        return QueryFuture(ticket, self)

    def execute(
        self,
        query: Union[Query, str],
        session: Optional[Session] = None,
        timeout: Optional[float] = None,
    ) -> QueryReport:
        """Submit and block for the report (the synchronous API)."""
        return self.submit(query, session=session, timeout=timeout).result(
            timeout
        )

    def run_concurrent(
        self,
        queries: Sequence[Union[Query, str]],
        session: Optional[Session] = None,
        timeout: Optional[float] = None,
    ) -> List[QueryReport]:
        """Submit a batch and wait for all reports, preserving order."""
        futures = [
            self.submit(q, session=session, timeout=timeout)
            for q in queries
        ]
        return [future.result(timeout) for future in futures]

    # Worker loop ---------------------------------------------------------

    def _spawn_worker(self) -> threading.Thread:
        """Start one worker thread (initial pool or death replacement)."""
        worker = threading.Thread(
            target=self._worker_loop,
            name=f"{self.name}-worker-{next(self._worker_ids)}",
            daemon=True,
        )
        with self._worker_lock:
            self._workers.append(worker)
        worker.start()
        return worker

    def _worker_loop(self) -> None:
        while True:
            ticket = self._queue.get()
            if ticket is None:  # shutdown sentinel
                return
            try:
                try:
                    self._run_ticket(ticket)
                finally:
                    self.admission.release()
            except BaseException as exc:  # noqa: BLE001 - worker death
                # An exception escaped the per-ticket scope: this worker
                # thread is dying.  Fail the waiter with the documented
                # ServiceError (never leave it hanging), count the
                # death, and replace the thread so capacity recovers.
                self._on_worker_death(ticket, exc)
                return

    def _on_worker_death(
        self, ticket: _QueryTicket, exc: BaseException
    ) -> None:
        self.stats.note_worker_death()
        if not ticket.event.is_set():
            ticket.fail(
                ServiceError(
                    f"worker died while serving query: {exc!r} "
                    f"({ticket.query.to_sql()})"
                )
            )
            self.stats.note_failed()
            if ticket.session is not None:
                ticket.session._note("failed")
        if not self._closed.is_set():
            self._spawn_worker()

    def _run_ticket(self, ticket: _QueryTicket) -> None:
        if self._closed.is_set():
            ticket.fail(
                ServiceClosedError(f"service {self.name!r} is closed")
            )
            self.stats.note_failed(started=False)
            return
        if (
            ticket.deadline is not None
            and time.monotonic() > ticket.deadline
        ):
            # Expired while queued: never start it.
            if ticket.cancel():
                self.stats.note_cancelled()
            return
        if not ticket.mark_running():
            return  # cancelled by the waiter
        self.stats.note_started()
        started = time.monotonic()
        # Injectable failure site: an abrupt worker death.  Deliberately
        # *outside* the per-query exception scope, so the raise escapes
        # to the worker loop's death handler (waiter gets ServiceError,
        # the thread is replaced).
        fault_point("service.worker", query=ticket.query.to_sql())
        try:
            # Injectable failure site: a per-query failure inside the
            # execution scope (the testkit injects QueryTimeoutError to
            # model a forced timeout); forwarded to the waiter below.
            fault_point("service.execute", query=ticket.query.to_sql())
            report = self.system.execute(ticket.query)
        except BaseException as exc:  # noqa: BLE001 - forwarded to waiter
            ticket.fail(exc)
            self.stats.note_failed()
            if ticket.session is not None:
                ticket.session._note("failed")
            return
        ticket.complete(report)
        if not ticket.abandoned:
            self.stats.note_completed(time.monotonic() - started)
            if ticket.session is not None:
                ticket.session._note("completed")
        else:
            # The waiter already gave up; the slot is released but the
            # latency sample would skew percentiles, so only count the
            # completion against the in-flight gauge.
            self.stats.note_failed()

    # Internal accounting (called by futures) ------------------------------

    def _on_timeout(self, ticket: _QueryTicket) -> None:
        self.stats.note_timeout()
        if ticket.session is not None:
            ticket.session._note("timeouts")

    def _on_cancelled(self, ticket: _QueryTicket) -> None:
        self.stats.note_cancelled()

    # Lifecycle ------------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting work, drain workers, stop the scheduler.

        Every ticket still queued when the workers exit — including one
        that raced past the closed check in :meth:`submit` — is failed
        with :class:`~repro.errors.ServiceClosedError`, so no waiter is
        ever left blocking on a queue that nobody drains.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        with self._worker_lock:
            workers = list(self._workers)
        for _ in workers:
            self._queue.put(None)
        for worker in workers:
            worker.join(timeout)
        if self.scheduler is not None:
            self.scheduler.stop()
        # Fail anything left in the queue (raced submissions, tickets
        # behind a dead worker's unconsumed sentinel).
        while True:
            try:
                ticket = self._queue.get_nowait()
            except queue.Empty:
                break
            if ticket is None:
                continue
            if not ticket.event.is_set():
                ticket.fail(
                    ServiceClosedError(
                        f"service {self.name!r} closed before the query "
                        f"ran: {ticket.query.to_sql()}"
                    )
                )
                self.stats.note_failed(started=False)
                if ticket.session is not None:
                    ticket.session._note("failed")
            self.admission.release()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def __enter__(self) -> "H2OService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # Reporting ------------------------------------------------------------

    def describe(self) -> str:
        """Multi-line status: service counters + per-engine summaries."""
        snap = self.stats.snapshot()
        lines = [
            f"H2O service {self.name!r}: {len(self._workers)} workers, "
            f"admission {self.admission.stats()}",
            "  queries: submitted={submitted} completed={completed} "
            "rejected={rejected} timeouts={timeouts} failed={failed}".format(
                **{k: int(snap[k]) for k in (
                    "submitted",
                    "completed",
                    "rejected",
                    "timeouts",
                    "failed",
                )}
            ),
            f"  latency: p50={snap['p50_ms']:.2f}ms "
            f"p99={snap['p99_ms']:.2f}ms "
            f"(peak concurrency {int(snap['peak_concurrency'])})",
        ]
        if self.scheduler is not None:
            lines.append(f"  adaptation: {self.scheduler.stats()}")
        lines.append(self.system.describe())
        return "\n".join(lines)
