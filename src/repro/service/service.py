"""The concurrent query service fronting the adaptive store.

:class:`H2OService` turns the single-caller :class:`~repro.core.system.
H2OSystem` into a multi-client service:

- **worker pool** — ``num_workers`` threads drain a shared queue and
  execute queries through the (thread-safe) engines.  NumPy kernels
  release the GIL on large blocks, so scans from different workers
  genuinely overlap on multi-core hosts;
- **admission control** — at most ``max_pending`` queries may be in the
  system (queued + executing); the excess is rejected *at submission*
  with :class:`~repro.errors.ServiceOverloadedError` instead of piling
  up without bound;
- **per-query timeouts** — a query that has not finished within its
  timeout raises :class:`~repro.errors.QueryTimeoutError` to the
  waiter; if it had not started it is cancelled and never runs;
- **snapshot-isolated reads** — every query executes against the layout
  snapshot pinned at its admission into the engine (see
  :class:`~repro.storage.relation.LayoutSnapshot`), so a background
  reorganization can never mutate a layout mid-scan;
- **background adaptation** — with ``adaptation_mode="background"`` in
  the engine config, an :class:`~repro.service.scheduler.
  AdaptationScheduler` thread runs the advisor and stitches new layouts
  off the query path, publishing them atomically via epoch bumps.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from typing import Dict, List, Optional, Sequence, Union

from ..config import EngineConfig
from ..core.engine import QueryReport
from ..core.system import H2OSystem, build_system
from ..errors import (
    QueryTimeoutError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from ..execution.parallel import get_scan_pool
from ..resilience.budget import TokenBucket
from ..resilience.health import HealthReport
from ..sql.parser import parse_query
from ..util.faultpoints import fault_point
from ..sql.query import Query
from ..storage.relation import Table
from .admission import AdmissionController
from .scheduler import AdaptationScheduler
from .session import Session
from .stats import ServiceStats

_PENDING = "pending"
_RUNNING = "running"
_DONE = "done"
_FAILED = "failed"
_CANCELLED = "cancelled"


class _QueryTicket:
    """One submitted query's lifecycle, shared by waiter and worker."""

    __slots__ = (
        "query",
        "session",
        "deadline",
        "submitted_at",
        "lock",
        "event",
        "state",
        "report",
        "exception",
        "abandoned",
        "attempts",
    )

    def __init__(
        self,
        query: Query,
        session: Optional[Session],
        deadline: Optional[float],
    ) -> None:
        self.query = query
        self.session = session
        self.deadline = deadline
        self.submitted_at = time.monotonic()
        self.lock = threading.Lock()
        self.event = threading.Event()
        self.state = _PENDING
        self.report: Optional[QueryReport] = None
        self.exception: Optional[BaseException] = None
        #: The waiter gave up (timeout) while the query was running;
        #: the worker finishes it but discards the outcome silently.
        self.abandoned = False
        #: Execution attempts started so far (the retry ladder caps
        #: this at the service's ``max_query_attempts``).
        self.attempts = 0

    # Worker side ---------------------------------------------------------

    def mark_running(self) -> bool:
        """PENDING → RUNNING; False if cancelled meanwhile."""
        with self.lock:
            if self.state != _PENDING:
                return False
            self.state = _RUNNING
            return True

    def complete(self, report: QueryReport) -> None:
        with self.lock:
            self.state = _DONE
            self.report = report
        self.event.set()

    def fail(self, exc: BaseException) -> None:
        with self.lock:
            self.state = _FAILED
            self.exception = exc
        self.event.set()

    def reset_for_retry(self) -> bool:
        """RUNNING → PENDING for another attempt; False once finished.

        The ticket object survives its failed attempt (same admission
        slot, same deadline, same waiter) — only the state machine is
        rewound so a worker can pick it up again.
        """
        with self.lock:
            if self.state != _RUNNING or self.event.is_set():
                return False
            self.state = _PENDING
            return True

    # Waiter side ---------------------------------------------------------

    def cancel(self) -> bool:
        """PENDING → CANCELLED; False once running or finished."""
        with self.lock:
            if self.state != _PENDING:
                return False
            self.state = _CANCELLED
        self.event.set()
        return True

    def abandon(self) -> None:
        with self.lock:
            self.abandoned = True


class QueryFuture:
    """Handle to an admitted query; resolves to a :class:`QueryReport`."""

    def __init__(self, ticket: _QueryTicket, service: "H2OService") -> None:
        self._ticket = ticket
        self._service = service

    def done(self) -> bool:
        return self._ticket.event.is_set()

    def cancel(self) -> bool:
        """Cancel if not started; releases the admission slot."""
        if self._ticket.cancel():
            self._service._on_cancelled(self._ticket)
            return True
        return False

    def result(self, timeout: Optional[float] = None) -> QueryReport:
        """The query's report, waiting up to ``timeout`` seconds.

        Raises :class:`QueryTimeoutError` when neither the explicit
        ``timeout`` nor the ticket's own deadline is met; re-raises the
        worker-side exception if execution failed.
        """
        ticket = self._ticket
        wait = timeout
        if ticket.deadline is not None:
            remaining = ticket.deadline - time.monotonic()
            wait = (
                remaining if wait is None else min(wait, remaining)
            )
        if wait is not None:
            wait = max(0.0, wait)
        finished = ticket.event.wait(wait)
        if not finished:
            # Best effort: cancel if still queued; a running query
            # completes in the background with its result discarded.
            if ticket.cancel():
                self._service._on_cancelled(ticket)
            else:
                ticket.abandon()
            self._service._on_timeout(ticket)
            raise QueryTimeoutError(
                f"query did not finish within "
                f"{wait if timeout is None else timeout:.3f}s: "
                f"{ticket.query.to_sql()}"
            )
        with ticket.lock:
            state = ticket.state
            report = ticket.report
            exception = ticket.exception
        if state == _DONE:
            return report
        if state == _CANCELLED:
            raise QueryTimeoutError(
                f"query was cancelled before execution: "
                f"{ticket.query.to_sql()}"
            )
        # Never raise the worker's stored exception object itself:
        # ``result()`` may be called from several threads, and a raised
        # exception mutates (``__traceback__``) — sharing one instance
        # across waiters cross-contaminates their tracebacks.  Each
        # waiter gets a fresh clone chained (``from``) to the original,
        # so ``__cause__`` still carries the worker-side story.
        raise _rebuild_exception(exception) from exception


def _rebuild_exception(exc: BaseException) -> BaseException:
    """A fresh per-waiter instance of the worker-side exception.

    ``copy.copy`` preserves the concrete type and attributes for the
    common dataclass-style errors; exotic exceptions whose copy fails
    degrade to a :class:`ServiceError` wrapper — the original is still
    attached as ``__cause__`` by the caller's ``raise ... from``.
    """
    import copy

    try:
        clone = copy.copy(exc)
        clone.__traceback__ = None
        return clone
    except Exception:  # pragma: no cover - exotic uncopyable errors
        return ServiceError(f"query failed: {exc!r}")


class H2OService:
    """Multi-client concurrent query service over the adaptive store."""

    _ids = itertools.count(1)

    def __init__(
        self,
        system: Optional[H2OSystem] = None,
        *,
        config: Optional[EngineConfig] = None,
        num_workers: int = 4,
        max_pending: int = 64,
        default_timeout: Optional[float] = None,
        max_query_attempts: int = 3,
        retry_backoff: float = 0.005,
        watchdog_interval: float = 0.05,
        name: str = "h2o-service",
    ) -> None:
        if system is not None and config is not None:
            raise ValueError(
                "pass either an existing system or a config, not both"
            )
        #: A config-built system (possibly a ShardedSystem with worker
        #: processes) is owned by the service and closed with it; a
        #: caller-provided system stays the caller's to close.
        self._owns_system = system is None
        self.system = system if system is not None else build_system(config)
        if num_workers < 0:
            raise ValueError(
                f"num_workers must be >= 0, got {num_workers}"
            )
        if max_query_attempts < 1:
            raise ValueError(
                f"max_query_attempts must be >= 1, got "
                f"{max_query_attempts}"
            )
        self.name = name
        self.default_timeout = default_timeout
        #: Retry ladder: total execution attempts one ticket may start
        #: (first try included) before its failure surfaces.
        self.max_query_attempts = max_query_attempts
        #: Base sleep before a retryable failure's next attempt
        #: (exponential per attempt, capped in :meth:`_retry_delay`).
        self.retry_backoff = retry_backoff
        self.admission = AdmissionController(max_pending)
        self.stats = ServiceStats()
        #: Budget the shared scan pool against this service's load: the
        #: pool deducts the *other* in-flight queries from every
        #: parallel-scan grant, so a saturated worker pool degrades
        #: toward one scan thread per query instead of oversubscribing
        #: the cores (see repro/execution/parallel.py).
        self._scan_load_key = f"{name}-{next(self._ids)}"
        get_scan_pool().register_load(
            self._scan_load_key, self.stats.running
        )
        self._queue: "queue.SimpleQueue[Optional[_QueryTicket]]" = (
            queue.SimpleQueue()
        )
        self._closed = threading.Event()
        self._session_lock = threading.Lock()
        self._sessions: Dict[str, Session] = {}
        self._worker_lock = threading.Lock()
        self._worker_ids = itertools.count()
        self._workers: List[threading.Thread] = []
        #: Pool strength the watchdog restores after deaths.
        self._target_workers = num_workers
        #: Respawn budget: a dying-in-a-loop pool must not spin the
        #: watchdog into a thread-creation storm.  Continuous refill,
        #: generous burst — steady-state deaths are absorbed, a
        #: pathological crash loop is throttled, never starved.
        self._respawn_budget = TokenBucket(
            burst=max(4, 2 * num_workers), window=1.0
        )
        for _ in range(num_workers):
            self._spawn_worker()
        self.scheduler: Optional[AdaptationScheduler] = None
        #: Sharded systems have no in-process engines to schedule —
        #: each shard adapts inline inside its own process.
        sharded = getattr(self.system, "shard_count", 0) > 0
        if not sharded and self.system.config.adaptation_mode == "background":
            self.scheduler = AdaptationScheduler(self.system)
            self.scheduler.start()
        #: Overload ladder thresholds, as fractions of admission
        #: capacity: above ``_pause_fraction`` in-system queries the
        #: scheduler is paused (adaptation yields to traffic); below
        #: ``_resume_fraction`` it resumes.  The hysteresis gap stops
        #: flapping at the boundary.
        self._pause_fraction = 0.75
        self._resume_fraction = 0.5
        #: Watchdog: periodically prunes dead worker threads and spawns
        #: replacements up to the respawn budget.  Only needed when the
        #: service actually owns workers.
        self._watchdog_wake = threading.Event()
        self._watchdog: Optional[threading.Thread] = None
        if num_workers > 0:
            self._watchdog = threading.Thread(
                target=self._watchdog_loop,
                name=f"{name}-watchdog",
                daemon=True,
            )
            self._watchdog_interval = watchdog_interval
            self._watchdog.start()

    # Catalog -------------------------------------------------------------

    def register(self, table: Table, replace: bool = False) -> None:
        """Register a table with the underlying system.

        Under background adaptation the engine is created eagerly and
        the scheduler's due-ness signal attached *before* the first
        query arrives, so no early query pays the inline adaptation
        cost during the scheduler's startup window.
        """
        self.system.register(table, replace=replace)
        if self.scheduler is not None:
            self.scheduler.attach(self.system.engine_for(table.name))

    # Sessions ------------------------------------------------------------

    def session(
        self,
        client: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Session:
        """Open a client session (timeout defaults to the service's)."""
        session_id = client or f"session-{next(self._ids)}"
        session = Session(
            self,
            session_id,
            default_timeout=(
                timeout if timeout is not None else self.default_timeout
            ),
        )
        with self._session_lock:
            self._sessions[session_id] = session
        return session

    def sessions(self) -> Dict[str, Session]:
        """A defensive copy of the open sessions by id."""
        with self._session_lock:
            return dict(self._sessions)

    # Submission ----------------------------------------------------------

    def submit(
        self,
        query: Union[Query, str],
        session: Optional[Session] = None,
        timeout: Optional[float] = None,
    ) -> QueryFuture:
        """Admit a query into the bounded queue; returns a future.

        Raises :class:`ServiceOverloadedError` when the queue bound is
        exceeded and :class:`ServiceClosedError` after :meth:`close`.
        Parsing happens in the caller's thread so syntax errors raise
        synchronously.
        """
        if self._closed.is_set():
            raise ServiceClosedError(f"service {self.name!r} is closed")
        if isinstance(query, str):
            query = parse_query(query)
        if timeout is None:
            timeout = self.default_timeout
        self.stats.note_submitted()
        if session is not None:
            session._note("submitted")
        if not self.admission.try_acquire():
            self.stats.note_rejected()
            if session is not None:
                session._note("rejected")
            raise ServiceOverloadedError(
                f"service {self.name!r} is at capacity "
                f"({self.admission.capacity} queries in flight); "
                "retry later"
            )
        self._note_load()
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        ticket = _QueryTicket(query, session, deadline)
        self._queue.put(ticket)
        return QueryFuture(ticket, self)

    def _note_load(self) -> None:
        """Advance the overload ladder on every load change.

        Before the admission bound starts shedding queries, the service
        sheds *optional* work: above ``_pause_fraction`` of capacity
        the background adaptation scheduler is paused, below
        ``_resume_fraction`` it resumes (hysteresis stops flapping).
        Queries always win over adaptation.
        """
        if self.scheduler is None:
            return
        fraction = self.admission.in_flight / self.admission.capacity
        if fraction >= self._pause_fraction:
            self.scheduler.pause()
        elif fraction <= self._resume_fraction:
            self.scheduler.resume()

    def execute(
        self,
        query: Union[Query, str],
        session: Optional[Session] = None,
        timeout: Optional[float] = None,
    ) -> QueryReport:
        """Submit and block for the report (the synchronous API)."""
        return self.submit(query, session=session, timeout=timeout).result(
            timeout
        )

    def run_concurrent(
        self,
        queries: Sequence[Union[Query, str]],
        session: Optional[Session] = None,
        timeout: Optional[float] = None,
    ) -> List[QueryReport]:
        """Submit a batch and wait for all reports, preserving order."""
        futures = [
            self.submit(q, session=session, timeout=timeout)
            for q in queries
        ]
        return [future.result(timeout) for future in futures]

    # Worker loop ---------------------------------------------------------

    def _spawn_worker(self) -> Optional[threading.Thread]:
        """Start one worker thread (initial pool or watchdog respawn)."""
        if self._closed.is_set():
            return None
        worker = threading.Thread(
            target=self._worker_loop,
            name=f"{self.name}-worker-{next(self._worker_ids)}",
            daemon=True,
        )
        with self._worker_lock:
            self._workers.append(worker)
        worker.start()
        return worker

    # Watchdog -------------------------------------------------------------

    def _watchdog_loop(self) -> None:
        """Keep the pool at target strength until the service closes."""
        while not self._closed.is_set():
            self._watchdog_wake.wait(self._watchdog_interval)
            self._watchdog_wake.clear()
            if self._closed.is_set():
                return
            self._heal_pool()

    def _heal_pool(self) -> int:
        """Prune dead threads and respawn the deficit; returns spawns.

        Respawns draw from a token bucket so a crash-looping pool is
        throttled (the deficit is retried on the next tick) instead of
        spinning up threads as fast as they die.
        """
        with self._worker_lock:
            self._workers = [w for w in self._workers if w.is_alive()]
            deficit = self._target_workers - len(self._workers)
        spawned = 0
        for _ in range(max(0, deficit)):
            if self._closed.is_set():
                break
            if not self._respawn_budget.try_take():
                break  # budget exhausted; next tick retries
            if self._spawn_worker() is None:
                break
            self.stats.note_worker_respawn()
            spawned += 1
        return spawned

    def alive_workers(self) -> int:
        """How many worker threads are currently alive."""
        with self._worker_lock:
            return sum(1 for w in self._workers if w.is_alive())

    def _worker_loop(self) -> None:
        while True:
            ticket = self._queue.get()
            if ticket is None:  # shutdown sentinel
                return
            try:
                requeued = self._run_ticket(ticket)
            except BaseException as exc:  # noqa: BLE001 - worker death
                # An exception escaped the per-ticket scope: this worker
                # thread is dying.  The *ticket* outlives the thread —
                # it is requeued for another attempt when its budget
                # and deadline allow; otherwise the waiter is failed
                # (never left hanging).  The watchdog restores pool
                # strength; this thread just exits.
                requeued = self._on_worker_death(ticket, exc)
                if not requeued:
                    self._release_slot()
                self._watchdog_wake.set()
                return
            if not requeued:
                self._release_slot()

    def _release_slot(self) -> None:
        """Return an admission slot and advance the overload ladder."""
        self.admission.release()
        self._note_load()

    def _on_worker_death(
        self, ticket: _QueryTicket, exc: BaseException
    ) -> bool:
        """Handle a dying worker's in-flight ticket; True if requeued."""
        self.stats.note_worker_death()
        with ticket.lock:
            was_running = ticket.state == _RUNNING
        if (
            was_running
            and not self._closed.is_set()
            and not ticket.abandoned
            and ticket.attempts < self.max_query_attempts
            and not self._deadline_passed(ticket)
            and ticket.reset_for_retry()
        ):
            # The query never completed (the death fault fires before
            # execution starts; a mid-scan death never published
            # results — snapshots are read-only), so re-running it is
            # safe.  Same admission slot, same deadline, same waiter.
            self.stats.note_requeued(death=True)
            self._queue.put(ticket)
            return True
        if not ticket.event.is_set():
            failure = ServiceError(
                f"worker died while serving query: {exc!r} "
                f"({ticket.query.to_sql()})"
            )
            failure.__cause__ = exc
            ticket.fail(failure)
            self.stats.note_failed(started=was_running)
            if ticket.session is not None:
                ticket.session._note("failed")
        elif was_running:
            # Already resolved elsewhere; keep the in-flight gauge
            # honest for the attempt this thread had started.
            self.stats.note_failed()
        return False

    @staticmethod
    def _deadline_passed(ticket: _QueryTicket) -> bool:
        return (
            ticket.deadline is not None
            and time.monotonic() >= ticket.deadline
        )

    def _should_retry(
        self, ticket: _QueryTicket, exc: BaseException
    ) -> bool:
        """Whether a failed attempt goes back on the queue.

        Only *transient* failures (``exc.is_retryable``, see
        repro/errors.py) are retried, and only while the ticket has
        attempt budget left, its deadline has not passed, the waiter
        has not given up, and the service is still open.  Permanent
        errors (parse/analysis/schema) surface immediately — retrying
        the same bytes can only fail the same way.
        """
        if self._closed.is_set() or ticket.abandoned:
            return False
        if ticket.event.is_set():
            return False
        if ticket.attempts >= self.max_query_attempts:
            return False
        if self._deadline_passed(ticket):
            return False
        return bool(getattr(exc, "is_retryable", False))

    def _retry_delay(self, attempt: int) -> float:
        """Exponential backoff (capped) before attempt ``attempt+1``."""
        return min(
            0.1, self.retry_backoff * (2.0 ** max(0, attempt - 1))
        )

    def _run_ticket(self, ticket: _QueryTicket) -> bool:
        """Run one execution attempt; True when the ticket was requeued
        (its admission slot is then kept for the next attempt)."""
        if self._closed.is_set():
            ticket.fail(
                ServiceClosedError(f"service {self.name!r} is closed")
            )
            self.stats.note_failed(started=False)
            return False
        if self._deadline_passed(ticket):
            # Expired while queued: never start it.
            if ticket.cancel():
                self.stats.note_cancelled()
            return False
        if not ticket.mark_running():
            return False  # cancelled by the waiter
        ticket.attempts += 1
        self.stats.note_started()
        started = time.monotonic()
        # Injectable failure site: an abrupt worker death.  Deliberately
        # *outside* the per-query exception scope, so the raise escapes
        # to the worker loop's death handler (the ticket is requeued or
        # failed there; the watchdog replaces the thread).
        fault_point("service.worker", query=ticket.query.to_sql())
        try:
            # Injectable failure site: a per-query failure inside the
            # execution scope (the testkit injects QueryTimeoutError to
            # model a forced timeout); retried below when transient.
            fault_point("service.execute", query=ticket.query.to_sql())
            report = self.system.execute(
                ticket.query, deadline=ticket.deadline
            )
        except BaseException as exc:  # noqa: BLE001 - retried/forwarded
            if self._should_retry(ticket, exc):
                delay = self._retry_delay(ticket.attempts)
                if delay > 0.0:
                    time.sleep(delay)
                if ticket.reset_for_retry():
                    self.stats.note_requeued(death=False)
                    self._queue.put(ticket)
                    return True
            ticket.fail(exc)
            self.stats.note_failed()
            if ticket.session is not None:
                ticket.session._note("failed")
            return False
        ticket.complete(report)
        if not ticket.abandoned:
            self.stats.note_completed(time.monotonic() - started)
            self.stats.note_scan(
                report.morsels_total,
                report.morsels_pruned,
                report.scan_threads_used,
                report.parallel_scan,
            )
            if report.degraded:
                # Correct answer through a fallback rung (codegen
                # fallback, breaker short-circuit, or aborted online
                # reorg) — visible in stats and health, never silent.
                self.stats.note_degraded()
            if ticket.session is not None:
                ticket.session._note("completed")
        else:
            # The waiter already gave up; the slot is released but the
            # latency sample would skew percentiles, so only count the
            # completion against the in-flight gauge.
            self.stats.note_failed()
        return False

    # Internal accounting (called by futures) ------------------------------

    def _on_timeout(self, ticket: _QueryTicket) -> None:
        self.stats.note_timeout()
        if ticket.session is not None:
            ticket.session._note("timeouts")

    def _on_cancelled(self, ticket: _QueryTicket) -> None:
        self.stats.note_cancelled()

    # Lifecycle ------------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting work, drain workers, stop the scheduler.

        Every ticket still queued when the workers exit — including one
        that raced past the closed check in :meth:`submit` — is failed
        with :class:`~repro.errors.ServiceClosedError`, so no waiter is
        ever left blocking on a queue that nobody drains.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        get_scan_pool().unregister_load(self._scan_load_key)
        self._watchdog_wake.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout)
        with self._worker_lock:
            workers = list(self._workers)
        for _ in workers:
            self._queue.put(None)
        for worker in workers:
            worker.join(timeout)
        if self.scheduler is not None:
            self.scheduler.stop()
        # Fail anything left in the queue (raced submissions, tickets
        # behind a dead worker's unconsumed sentinel).
        while True:
            try:
                ticket = self._queue.get_nowait()
            except queue.Empty:
                break
            if ticket is None:
                continue
            if not ticket.event.is_set():
                ticket.fail(
                    ServiceClosedError(
                        f"service {self.name!r} closed before the query "
                        f"ran: {ticket.query.to_sql()}"
                    )
                )
                self.stats.note_failed(started=False)
                if ticket.session is not None:
                    ticket.session._note("failed")
            self.admission.release()
        # A system built from our config is ours to tear down — for a
        # ShardedSystem that shuts the worker processes down and unlinks
        # their shared-memory segments.
        if self._owns_system:
            closer = getattr(self.system, "close", None)
            if callable(closer):
                closer()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def __enter__(self) -> "H2OService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # Reporting ------------------------------------------------------------

    def health(self) -> HealthReport:
        """One consistent snapshot of the whole degradation ladder.

        Assembled from the worker pool, the admission controller, the
        scheduler, and every engine's breaker/quarantine/fallback
        counters — see :mod:`repro.resilience.health` for the status
        semantics (``healthy`` / ``degraded`` / ``closed``).
        """
        snap = self.stats.snapshot()
        engines = self.system.engines()
        breaker_states = {
            e.table.name: e.breaker.snapshot() for e in engines
        }
        quarantines = {
            e.table.name: e.quarantine.snapshot() for e in engines
        }
        policies = {
            e.table.name: e.policy.snapshot() for e in engines
        }
        reorgs_deferred = sum(e.policy.deferrals for e in engines)
        layout_switches = sum(e.policy.switch_count for e in engines)
        codegen_fallbacks = sum(
            e.executor.codegen_fallbacks for e in engines
        )
        breaker_short_circuits = sum(
            e.breaker.short_circuits for e in engines
        )
        reorg_aborts = sum(e.reorg_aborts for e in engines)
        deadline_aborts = sum(e.deadline_aborts for e in engines)
        # Sharded systems keep their engines in worker processes: fold
        # every shard's telemetry in (worst rung wins — a dead shard or
        # an open breaker anywhere degrades the whole service).
        shards_expected = int(getattr(self.system, "shard_count", 0))
        shards_alive = 0
        shard_respawns = 0
        shards_down = False
        if shards_expected:
            shards_alive = self.system.alive_shards()
            shard_respawns = int(self.system.shard_respawns)
            shards_down = shards_alive < shards_expected
            for sid, shard_health in self.system.shard_health().items():
                if shard_health is None:
                    shards_down = True
                    continue
                for table, tele in shard_health.get("tables", {}).items():
                    key = f"{table}@shard{sid}"
                    breaker_states[key] = tele["breaker"]
                    quarantines[key] = tele["quarantine"]
                    shard_policy = tele.get("policy")
                    if shard_policy is not None:
                        policies[key] = shard_policy
                        reorgs_deferred += int(
                            shard_policy.get("deferrals", 0)
                        )
                        layout_switches += int(
                            shard_policy.get("switches", 0)
                        )
                    codegen_fallbacks += int(tele["codegen_fallbacks"])
                    breaker_short_circuits += int(
                        tele["breaker_short_circuits"]
                    )
                    reorg_aborts += int(tele["reorg_aborts"])
                    deadline_aborts += int(tele["deadline_aborts"])
        workers_alive = self.alive_workers()
        scheduler_paused = (
            self.scheduler.paused if self.scheduler is not None else False
        )
        scheduler_pauses = (
            self.scheduler.pauses if self.scheduler is not None else 0
        )
        stitch_failures = (
            self.scheduler.stitch_failures
            if self.scheduler is not None
            else 0
        )
        open_breakers = any(
            snapshot["open"] for snapshot in breaker_states.values()
        )
        blocked = any(
            snapshot["blocked"] for snapshot in quarantines.values()
        )
        if self._closed.is_set():
            status = "closed"
        elif (
            workers_alive < self._target_workers
            or shards_down
            or open_breakers
            or blocked
            or scheduler_paused
        ):
            status = "degraded"
        else:
            status = "healthy"
        return HealthReport(
            status=status,
            workers_alive=workers_alive,
            workers_expected=self._target_workers,
            worker_deaths=int(snap["worker_deaths"]),
            worker_respawns=int(snap["worker_respawns"]),
            queue_depth=self._queue.qsize(),
            in_flight=self.admission.in_flight,
            capacity=self.admission.capacity,
            requeued_deaths=int(snap["requeued_deaths"]),
            retried_failures=int(snap["retried_failures"]),
            degraded_queries=int(snap["degraded"]),
            scheduler_paused=scheduler_paused,
            scheduler_pauses=scheduler_pauses,
            stitch_failures=stitch_failures,
            breaker_states=breaker_states,
            quarantines=quarantines,
            policies=policies,
            codegen_fallbacks=codegen_fallbacks,
            breaker_short_circuits=breaker_short_circuits,
            reorg_aborts=reorg_aborts,
            deadline_aborts=deadline_aborts,
            reorgs_deferred=reorgs_deferred,
            layout_switches=layout_switches,
            shards_alive=shards_alive,
            shards_expected=shards_expected,
            shard_respawns=shard_respawns,
        )

    def describe(self) -> str:
        """Multi-line status: service counters + per-engine summaries."""
        snap = self.stats.snapshot()
        lines = [
            f"H2O service {self.name!r}: {len(self._workers)} workers, "
            f"admission {self.admission.stats()}",
            "  queries: submitted={submitted} completed={completed} "
            "rejected={rejected} timeouts={timeouts} failed={failed}".format(
                **{k: int(snap[k]) for k in (
                    "submitted",
                    "completed",
                    "rejected",
                    "timeouts",
                    "failed",
                )}
            ),
            f"  latency: p50={snap['p50_ms']:.2f}ms "
            f"p99={snap['p99_ms']:.2f}ms "
            f"(peak concurrency {int(snap['peak_concurrency'])})",
            "  resilience: deaths={} respawns={} requeued={} "
            "retried={} degraded={}".format(
                int(snap["worker_deaths"]),
                int(snap["worker_respawns"]),
                int(snap["requeued_deaths"]),
                int(snap["retried_failures"]),
                int(snap["degraded"]),
            ),
        ]
        if self.scheduler is not None:
            lines.append(f"  adaptation: {self.scheduler.stats()}")
        lines.append(self.system.describe())
        return "\n".join(lines)
