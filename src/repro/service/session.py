"""Client sessions: per-caller handles onto the shared service.

A :class:`Session` is a lightweight, thread-safe view a client holds:
it carries a default timeout, accumulates per-client accounting
(submitted / completed / rejected / timed-out), and routes everything
through its :class:`~repro.service.service.H2OService`.  Many sessions
share one worker pool and one adaptive store — the multi-client model
of the concurrent query service.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Optional, Union

from ..errors import ServiceClosedError
from ..sql.query import Query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import QueryReport
    from .service import H2OService, QueryFuture


class Session:
    """One client's handle onto a shared :class:`H2OService`."""

    def __init__(
        self,
        service: "H2OService",
        session_id: str,
        default_timeout: Optional[float] = None,
    ) -> None:
        self.service = service
        self.session_id = session_id
        self.default_timeout = default_timeout
        self._lock = threading.Lock()
        self._closed = False
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.timeouts = 0
        self.failed = 0

    # Accounting hooks (called by the service/worker) ----------------------

    def _note(self, counter: str) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + 1)

    # Client API -----------------------------------------------------------

    def submit(
        self,
        query: Union[Query, str],
        timeout: Optional[float] = None,
    ) -> "QueryFuture":
        """Enqueue a query under this session; returns a future.

        Raises :class:`~repro.errors.ServiceClosedError` when either the
        session or its service has been closed (the service performs its
        own check in :meth:`H2OService.submit`) — shutdown always
        surfaces as the documented error, never a bare queue failure.
        """
        if self._closed:
            raise ServiceClosedError(
                f"session {self.session_id!r} is closed"
            )
        effective = timeout if timeout is not None else self.default_timeout
        return self.service.submit(query, session=self, timeout=effective)

    def execute(
        self,
        query: Union[Query, str],
        timeout: Optional[float] = None,
    ) -> "QueryReport":
        """Submit and wait for the report (or raise on timeout)."""
        effective = timeout if timeout is not None else self.default_timeout
        return self.submit(query, timeout=effective).result(effective)

    def close(self) -> None:
        """Refuse further submissions from this session."""
        with self._lock:
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> Dict[str, int]:
        """A consistent defensive copy of this session's counters."""
        with self._lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "rejected": self.rejected,
                "timeouts": self.timeouts,
                "failed": self.failed,
            }

    def __repr__(self) -> str:
        return (
            f"Session({self.session_id!r}, submitted={self.submitted}, "
            f"completed={self.completed})"
        )
