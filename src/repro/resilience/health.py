"""The service's health snapshot: one consistent view of degradation.

A self-healing runtime is only trustworthy if every rung of its
degradation ladder is *visible*: a breaker silently serving interpreted
plans, a quarantined candidate never re-stitched, a worker pool quietly
running below strength — each is correct behaviour in the moment and an
operational problem if unnoticed.  :class:`HealthReport` is the
defensive, immutable snapshot :meth:`repro.service.H2OService.health`
assembles from the admission controller, the worker pool, the
scheduler, and every engine's breaker/quarantine/fallback counters.

``status`` summarizes the ladder:

- ``"healthy"`` — full worker strength, no open breakers, nothing
  quarantined, scheduler running;
- ``"degraded"`` — serving correct answers through at least one
  fallback rung (the whole point of the ladder: degraded, never wrong);
- ``"closed"`` — the service has been shut down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple


@dataclass(frozen=True)
class HealthReport:
    """Immutable snapshot of the service's degradation state."""

    status: str  # "healthy" | "degraded" | "closed"
    #: Worker pool.
    workers_alive: int
    workers_expected: int
    worker_deaths: int
    worker_respawns: int
    #: Load.
    queue_depth: int
    in_flight: int
    capacity: int
    #: Retry ladder.
    requeued_deaths: int
    retried_failures: int
    degraded_queries: int
    #: Background adaptation.
    scheduler_paused: bool
    scheduler_pauses: int
    stitch_failures: int
    #: Per-table breaker telemetry (see CircuitBreaker.snapshot()).
    breaker_states: Mapping[str, Mapping[str, object]] = field(
        default_factory=dict
    )
    #: Per-table quarantine telemetry (see QuarantineList.snapshot()).
    quarantines: Mapping[str, Mapping[str, object]] = field(
        default_factory=dict
    )
    #: Per-table switching-policy telemetry (debt ledger, switches,
    #: deferrals — see AdaptationPolicy.snapshot() and
    #: docs/adaptation.md).
    policies: Mapping[str, Mapping[str, object]] = field(
        default_factory=dict
    )
    #: Engine-side degradation counters, summed over tables.
    codegen_fallbacks: int = 0
    breaker_short_circuits: int = 0
    reorg_aborts: int = 0
    deadline_aborts: int = 0
    #: Materializations the switching policy deferred (hedged-benefit
    #: gate not yet met), summed over tables.
    reorgs_deferred: int = 0
    #: Layout switches the policy granted, summed over tables.
    layout_switches: int = 0
    #: Sharding tier (zero when the system runs single-process).  The
    #: per-shard engine telemetry is merged into the maps above under
    #: ``"{table}@shard{i}"`` keys, worst-rung-wins into ``status``.
    shards_alive: int = 0
    shards_expected: int = 0
    shard_respawns: int = 0

    # Derived views --------------------------------------------------------

    @property
    def open_breakers(self) -> Tuple[Tuple[str, str], ...]:
        """(table, signature) pairs with a non-closed breaker."""
        pairs = []
        for table, snap in sorted(self.breaker_states.items()):
            for key in snap.get("open", ()):
                pairs.append((table, key))
        return tuple(pairs)

    @property
    def quarantined_candidates(self) -> Tuple[Tuple[str, str], ...]:
        """(table, attr-set) pairs currently inside their backoff."""
        pairs = []
        for table, snap in sorted(self.quarantines.items()):
            for key in snap.get("blocked", ()):
                pairs.append((table, key))
        return tuple(pairs)

    def counters(self) -> Dict[str, int]:
        """The scalar counters as one plain dict (for tests/dashboards)."""
        return {
            "workers_alive": self.workers_alive,
            "workers_expected": self.workers_expected,
            "worker_deaths": self.worker_deaths,
            "worker_respawns": self.worker_respawns,
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
            "capacity": self.capacity,
            "requeued_deaths": self.requeued_deaths,
            "retried_failures": self.retried_failures,
            "degraded_queries": self.degraded_queries,
            "scheduler_pauses": self.scheduler_pauses,
            "stitch_failures": self.stitch_failures,
            "codegen_fallbacks": self.codegen_fallbacks,
            "breaker_short_circuits": self.breaker_short_circuits,
            "reorg_aborts": self.reorg_aborts,
            "deadline_aborts": self.deadline_aborts,
            "reorgs_deferred": self.reorgs_deferred,
            "layout_switches": self.layout_switches,
            "shards_alive": self.shards_alive,
            "shards_expected": self.shards_expected,
            "shard_respawns": self.shard_respawns,
        }

    def describe(self) -> str:
        """Multi-line human-readable rendering for logs and the shell."""
        lines = [
            f"health: {self.status}",
            f"  workers: {self.workers_alive}/{self.workers_expected} "
            f"alive (deaths={self.worker_deaths}, "
            f"respawns={self.worker_respawns})",
            f"  load: queue={self.queue_depth} "
            f"in_flight={self.in_flight}/{self.capacity}",
            f"  retries: deaths_requeued={self.requeued_deaths} "
            f"failures_retried={self.retried_failures} "
            f"degraded_queries={self.degraded_queries}",
            f"  adaptation: paused={self.scheduler_paused} "
            f"(pauses={self.scheduler_pauses}, "
            f"stitch_failures={self.stitch_failures})",
            f"  fallbacks: codegen={self.codegen_fallbacks} "
            f"breaker_short_circuits={self.breaker_short_circuits} "
            f"reorg_aborts={self.reorg_aborts} "
            f"deadline_aborts={self.deadline_aborts}",
            f"  policy: switches={self.layout_switches} "
            f"deferred={self.reorgs_deferred}",
        ]
        if self.shards_expected:
            lines.append(
                f"  shards: {self.shards_alive}/{self.shards_expected} "
                f"alive (respawns={self.shard_respawns})"
            )
        if self.open_breakers:
            rendered = ", ".join(
                f"{table}:{sig}" for table, sig in self.open_breakers
            )
            lines.append(f"  open breakers: {rendered}")
        if self.quarantined_candidates:
            rendered = ", ".join(
                f"{table}:[{attrs}]"
                for table, attrs in self.quarantined_candidates
            )
            lines.append(f"  quarantined: {rendered}")
        return "\n".join(lines)
