"""A token bucket: bounded-rate budgets for self-healing actions.

The worker watchdog replaces dead workers — but a worker dying in a
tight loop (a poisoned query resubmitted forever, a broken native
library) must not turn the healer into a fork bomb.  The bucket grants
``burst`` immediate actions and refills continuously at
``burst / window`` tokens per second on the injected clock; when the
bucket is dry the action is *deferred*, not dropped — the watchdog
simply retries on its next tick, so the pool still converges back to
full strength, just no faster than the budget allows.
"""

from __future__ import annotations

import threading
import time
from typing import Callable


class TokenBucket:
    """Continuous-refill token bucket (thread-safe, clock-injectable)."""

    def __init__(
        self,
        burst: int,
        window: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        self.burst = burst
        self.window = window
        self.clock = clock
        self._lock = threading.Lock()
        self._tokens = float(burst)
        self._last = clock()
        #: Telemetry: granted and deferred takes (monotonic).
        self.granted = 0
        self.deferred = 0

    def try_take(self) -> bool:
        """Take one token if available; ``False`` defers the action."""
        with self._lock:
            now = self.clock()
            elapsed = max(0.0, now - self._last)
            self._tokens = min(
                float(self.burst),
                self._tokens + elapsed * (self.burst / self.window),
            )
            self._last = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self.granted += 1
                return True
            self.deferred += 1
            return False

    def available(self) -> float:
        """Current (refreshed) token count — for tests and reports."""
        with self._lock:
            now = self.clock()
            elapsed = max(0.0, now - self._last)
            self._tokens = min(
                float(self.burst),
                self._tokens + elapsed * (self.burst / self.window),
            )
            self._last = now
            return self._tokens
