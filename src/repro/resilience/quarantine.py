"""Exponential-backoff quarantine for poisoned reorganization candidates.

When an online or background stitch for a candidate layout aborts, the
candidate deliberately *stays in the pool* — the abort is usually
transient (PR 3's contract).  But "stays eligible" without backoff
means the advisor re-triggers the same stitch on the very next matching
query, and a persistently failing candidate turns every hot query into
a failed reorganization attempt.  The quarantine list is the middle
ground: after each failure the candidate is blocked for an
exponentially growing span, so retries happen but thin out
(``base``, ``2·base``, ``4·base``, … capped at ``cap``), and one
success clears the history entirely.

The clock is injectable and *unitless*: the engine passes its own query
counter, so backoff is measured in **queries** — deterministic under
test and meaningful under load (a quarantined candidate is retried
after N more queries, not N wall-clock seconds of possibly idle time).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Hashable, List, Tuple


class _Entry:
    __slots__ = ("failures", "blocked_until")

    def __init__(self) -> None:
        self.failures = 0
        self.blocked_until = 0.0


class QuarantineList:
    """Keyed exponential backoff (thread-safe, clock-injectable)."""

    def __init__(
        self,
        base: float = 4.0,
        cap: float = 256.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if base <= 0:
            raise ValueError(f"base must be > 0, got {base}")
        if cap < base:
            raise ValueError(
                f"cap must be >= base, got cap={cap} base={base}"
            )
        self.base = base
        self.cap = cap
        self.clock = clock
        self._lock = threading.Lock()
        self._entries: Dict[Hashable, _Entry] = {}
        #: Total quarantine events ever recorded (monotonic telemetry).
        self.events = 0

    # Recording ------------------------------------------------------------

    def note_failure(self, key: Hashable) -> float:
        """Record one failure for ``key``; returns the backoff applied."""
        with self._lock:
            entry = self._entries.setdefault(key, _Entry())
            entry.failures += 1
            backoff = min(
                self.cap, self.base * (2.0 ** (entry.failures - 1))
            )
            entry.blocked_until = self.clock() + backoff
            self.events += 1
            return backoff

    def note_success(self, key: Hashable) -> None:
        """``key`` succeeded: clear its failure history entirely."""
        with self._lock:
            self._entries.pop(key, None)

    # Decisions ------------------------------------------------------------

    def blocked(self, key: Hashable) -> bool:
        """Whether ``key`` is currently quarantined."""
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and self.clock() < entry.blocked_until

    # Introspection --------------------------------------------------------

    def blocked_keys(self) -> List[Hashable]:
        """Keys currently inside their backoff span."""
        with self._lock:
            now = self.clock()
            return [
                key
                for key, entry in self._entries.items()
                if now < entry.blocked_until
            ]

    def snapshot(self) -> Dict[str, object]:
        """Defensive copy for health reports (keys stringified)."""
        with self._lock:
            now = self.clock()
            blocked: Tuple[str, ...] = tuple(
                sorted(
                    _describe_key(key)
                    for key, entry in self._entries.items()
                    if now < entry.blocked_until
                )
            )
            return {
                "tracked": len(self._entries),
                "blocked": blocked,
                "events": self.events,
            }


def _describe_key(key: Hashable) -> str:
    """Stable, human-readable rendering (frozensets sort their items)."""
    if isinstance(key, frozenset):
        return ",".join(sorted(str(item) for item in key))
    return str(key)
