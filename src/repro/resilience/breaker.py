"""A per-key circuit breaker with a deterministic, injectable clock.

The engine keys the breaker by *query shape signature* (the plan-cache
key): compile failures are almost always a property of the query shape
— a template bug, an unsupported expression, a poisoned operator — so
one shape failing repeatedly must not cost every future repeat a doomed
compile attempt, and one shape's breaker must not punish other shapes.

State machine (classic three-state breaker):

- **closed** — compile attempts allowed; ``record_failure`` counts
  *consecutive* failures, ``record_success`` resets the count.  After
  ``threshold`` consecutive failures the breaker **opens**;
- **open** — :meth:`allow` returns ``False`` (a *short-circuit*: the
  engine serves the interpreted plan without touching the compiler)
  until ``cooldown`` seconds have passed on the injected clock;
- **half-open** — after the cooldown, exactly one caller is let
  through as a *probe*.  A successful probe closes the breaker; a
  failed probe re-opens it for another full cooldown.  If the probe
  never reports back (its worker died mid-flight), a fresh probe is
  allowed once a further cooldown elapses, so a lost probe cannot wedge
  the breaker open forever.

All transitions happen under one lock; the clock is injectable
(``clock=lambda: fake_now`` in tests) so the whole state machine is
testable without a single ``sleep``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Hashable, List, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class _Entry:
    __slots__ = ("state", "failures", "opened_at", "probe_started")

    def __init__(self) -> None:
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0
        #: Clock reading when the in-flight half-open probe was granted;
        #: ``None`` when no probe is outstanding.
        self.probe_started: Optional[float] = None


class CircuitBreaker:
    """Keyed three-state breaker (thread-safe, clock-injectable)."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown <= 0:
            raise ValueError(f"cooldown must be > 0, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self.clock = clock
        self._lock = threading.Lock()
        self._entries: Dict[Hashable, _Entry] = {}
        #: Monotonic counters (telemetry; read via :meth:`snapshot`).
        self.opens = 0
        self.closes = 0
        self.short_circuits = 0
        self.probes = 0

    # Decisions ------------------------------------------------------------

    def allow(self, key: Hashable) -> bool:
        """Whether a compile attempt for ``key`` may proceed now.

        Returns ``True`` for closed keys and for the single half-open
        probe; ``False`` (a counted short-circuit) while open or while
        another probe is outstanding.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.state == CLOSED:
                return True
            now = self.clock()
            if entry.state == OPEN:
                if now >= entry.opened_at + self.cooldown:
                    entry.state = HALF_OPEN
                    entry.probe_started = now
                    self.probes += 1
                    return True
                self.short_circuits += 1
                return False
            # HALF_OPEN: one probe at a time — but a probe that never
            # reported back (lost worker) expires after a cooldown.
            if entry.probe_started is not None and now < (
                entry.probe_started + self.cooldown
            ):
                self.short_circuits += 1
                return False
            entry.probe_started = now
            self.probes += 1
            return True

    # Outcomes -------------------------------------------------------------

    def record_success(self, key: Hashable) -> None:
        """A compile for ``key`` succeeded: reset to closed."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None and entry.state != CLOSED:
                self.closes += 1

    def record_failure(self, key: Hashable) -> None:
        """A compile for ``key`` failed: count, maybe open / re-open."""
        with self._lock:
            entry = self._entries.setdefault(key, _Entry())
            entry.failures += 1
            if entry.state == HALF_OPEN:
                # The probe failed: re-open for another full cooldown.
                entry.state = OPEN
                entry.opened_at = self.clock()
                entry.probe_started = None
                self.opens += 1
                return
            if entry.state == CLOSED and entry.failures >= self.threshold:
                entry.state = OPEN
                entry.opened_at = self.clock()
                self.opens += 1

    # Introspection --------------------------------------------------------

    def state(self, key: Hashable) -> str:
        """The stored state for ``key`` (transitions happen in allow)."""
        with self._lock:
            entry = self._entries.get(key)
            return CLOSED if entry is None else entry.state

    def open_keys(self) -> List[Hashable]:
        """Keys currently open or half-open (i.e. degraded shapes)."""
        with self._lock:
            return [
                key
                for key, entry in self._entries.items()
                if entry.state != CLOSED
            ]

    def snapshot(self) -> Dict[str, object]:
        """Defensive copy of breaker telemetry for health reports."""
        with self._lock:
            open_keys = tuple(
                str(key)
                for key, entry in self._entries.items()
                if entry.state != CLOSED
            )
            return {
                "tracked": len(self._entries),
                "open": open_keys,
                "opens": self.opens,
                "closes": self.closes,
                "short_circuits": self.short_circuits,
                "probes": self.probes,
            }
