"""The self-healing layer: every adaptive mechanism gets a safety net.

H2O's premise is that adaptation — JiT code generation, online and
background reorganization, plan caching — runs *inside* the serving
path.  That makes every adaptive mechanism a failure surface for live
queries.  This package holds the runtime's answers, all deterministic
and clock-injectable so the degradation ladder is unit-testable without
sleeps:

- :class:`~repro.resilience.breaker.CircuitBreaker` — a per-key
  (query-shape-signature) breaker over the codegen path: after N
  consecutive compile failures the breaker *opens* and the engine stops
  attempting compilation for that shape, serving the interpreted plan
  instead; after a cooldown it *half-opens* and lets exactly one probe
  through;
- :class:`~repro.resilience.quarantine.QuarantineList` — exponential
  backoff for poisoned reorganization candidates: a candidate whose
  stitch aborted is blocked for a growing number of queries so the
  advisor stops re-stitching it on every trigger;
- :class:`~repro.resilience.budget.TokenBucket` — a bounded-rate budget
  used by the service's worker watchdog so a crash loop cannot turn
  into a respawn storm;
- :class:`~repro.resilience.health.HealthReport` — one defensive
  snapshot of the whole degradation state (workers alive, breaker
  states, quarantined candidates, fallback/respawn counters, queue
  depth), exposed through :meth:`repro.service.H2OService.health`.

The ladder these pieces implement, from cheapest to most drastic:

1. *fall back per query* — a compile failure answers through the
   interpreted Volcano path (``Executor.codegen_fallbacks``);
2. *stop retrying what keeps failing* — the breaker short-circuits
   compilation per signature; the quarantine blocks re-stitching per
   candidate, both with bounded, growing backoff;
3. *heal the pool* — a dead worker is detected by the watchdog and
   replaced at a bounded rate, its ticket requeued;
4. *shed adaptation before queries* — under overload the service
   pauses the background :class:`~repro.service.AdaptationScheduler`
   first and only rejects submissions when the admission bound itself
   is hit.

Every rung is observable (counters, the health report) and audited by
the testkit's chaos mode (``python -m repro.testkit chaos``): an
absorbed fault that leaves no evidence fails the oracle.
"""

from .breaker import CircuitBreaker
from .budget import TokenBucket
from .health import HealthReport
from .quarantine import QuarantineList

__all__ = [
    "CircuitBreaker",
    "HealthReport",
    "QuarantineList",
    "TokenBucket",
]
