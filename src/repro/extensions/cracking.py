"""Database cracking: adaptive indexing driven by range predicates.

The paper's future-work direction (§6) combined with its citation [23]
(Idreos, Kersten, Manegold: *Database Cracking*, CIDR 2007).  A
:class:`CrackedColumn` keeps a private copy of one attribute plus the
permutation of row ids that maps cracked positions back to table rows.
Every range request partitions ("cracks") only the pieces the range
touches, so the column gets more ordered exactly where queries look —
the same queries-define-storage philosophy H2O applies to layouts.

After a few queries a range request touches two already-small pieces:
the qualifying *cracked* positions are one contiguous slice, and only
the two boundary pieces need partitioning.  The result is returned as a
sorted array of row ids so it can drive the engine's row-aligned
selection vectors.

:class:`CrackingPredicateIndex` manages one cracked column per
attribute on demand and answers the single-attribute range/equality
predicates the engine's WHERE clauses are made of.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..sql.expressions import (
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    Literal,
)


class CrackedColumn:
    """One attribute under incremental range partitioning.

    State: ``values`` (a reordered copy of the column), ``row_ids``
    (``values[i]`` came from table row ``row_ids[i]``), and a sorted
    list of *piece boundaries*: ``bounds[k] = (position, value)`` means
    every element left of ``position`` is ``< value`` and everything
    from ``position`` on is ``>= value``.
    """

    def __init__(self, column: np.ndarray) -> None:
        self.values = np.array(column, copy=True)
        self.row_ids = np.arange(len(column), dtype=np.intp)
        #: piece boundaries as parallel sorted lists (positions, values).
        self._positions: List[int] = []
        self._values: List[float] = []
        self.cracks_performed = 0
        #: Values inspected by the most recent range request (boundary
        #: pieces partitioned + qualifying slice) — the honest measure
        #: of how much less data an adapted index touches vs. a scan.
        self.last_touched = 0

    def __len__(self) -> int:
        return len(self.values)

    @property
    def num_pieces(self) -> int:
        return len(self._positions) + 1

    # Internal: piece lookup and cracking ------------------------------------

    def _piece_for(self, value: float) -> Tuple[int, int]:
        """[start, stop) of the piece that would contain ``value``."""
        index = bisect.bisect_right(self._values, value)
        start = self._positions[index - 1] if index > 0 else 0
        stop = (
            self._positions[index]
            if index < len(self._positions)
            else len(self.values)
        )
        return start, stop

    def _insert_bound(self, position: int, value: float) -> None:
        index = bisect.bisect_left(self._values, value)
        if index < len(self._values) and self._values[index] == value:
            return
        self._values.insert(index, value)
        self._positions.insert(index, position)

    def crack(self, value: float) -> int:
        """Partition so everything ``< value`` precedes the returned
        position and everything ``>= value`` follows it.

        Only the single piece containing ``value`` is reorganized —
        the incremental step that makes cracking cheap per query.
        """
        index = bisect.bisect_left(self._values, value)
        if index < len(self._values) and self._values[index] == value:
            return self._positions[index]  # already a piece boundary
        start, stop = self._piece_for(value)
        piece = self.values[start:stop]
        self.last_touched += stop - start
        mask = piece < value
        left = int(mask.sum())
        if 0 < left < len(piece):
            order = np.argsort(~mask, kind="stable")
            self.values[start:stop] = piece[order]
            self.row_ids[start:stop] = self.row_ids[start:stop][order]
            self.cracks_performed += 1
        position = start + left
        self._insert_bound(position, value)
        return position

    # Queries ---------------------------------------------------------------

    def range_row_ids(
        self,
        low: Optional[float] = None,
        high: Optional[float] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = False,
    ) -> np.ndarray:
        """Sorted row ids with ``low <=|< value <|<= high``.

        Each call cracks at the range's boundaries (at most two pieces
        reorganized), then the answer is one contiguous slice.
        """
        self.last_touched = 0
        lo_pos = 0
        if low is not None:
            boundary = low if low_inclusive else np.nextafter(low, np.inf)
            lo_pos = self.crack(boundary)
        hi_pos = len(self.values)
        if high is not None:
            boundary = (
                np.nextafter(high, np.inf) if high_inclusive else high
            )
            hi_pos = self.crack(boundary)
        if hi_pos < lo_pos:
            lo_pos, hi_pos = hi_pos, hi_pos
        ids = self.row_ids[lo_pos:hi_pos]
        self.last_touched += len(ids)
        return np.sort(ids)

    def check_invariants(self) -> None:
        """Validate piece ordering (test support)."""
        previous = 0
        for position, value in zip(self._positions, self._values):
            assert previous <= position <= len(self.values)
            assert (self.values[:position] < value).all()
            assert (self.values[position:] >= value).all()
            previous = position
        # row_ids is a permutation mapping back to original values.
        assert len(np.unique(self.row_ids)) == len(self.row_ids)


class CrackingPredicateIndex:
    """Per-attribute cracked columns answering simple predicates.

    ``positions_for(predicate, column)`` returns sorted qualifying row
    ids when the predicate is a supported single-attribute comparison
    against a literal, else ``None`` (the caller falls back to a scan).
    """

    def __init__(self) -> None:
        self._columns: Dict[str, CrackedColumn] = {}

    def column_for(self, name: str, column: np.ndarray) -> CrackedColumn:
        cracked = self._columns.get(name)
        if cracked is None or len(cracked) != len(column):
            cracked = CrackedColumn(column)
            self._columns[name] = cracked
        return cracked

    @staticmethod
    def _destructure(
        predicate: Expr,
    ) -> "Optional[Tuple[str, ComparisonOp, float]]":
        if not isinstance(predicate, Comparison):
            return None
        left, right, op = predicate.left, predicate.right, predicate.op
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            left, right, op = right, left, op.flipped()
        if not (
            isinstance(left, ColumnRef) and isinstance(right, Literal)
        ):
            return None
        if op is ComparisonOp.NE:
            return None  # anti-ranges don't map to one slice
        return left.name, op, float(right.value)

    def supports(self, predicate: Expr) -> bool:
        return self._destructure(predicate) is not None

    def positions_for(
        self, predicate: Expr, column: np.ndarray
    ) -> "Optional[np.ndarray]":
        """Sorted qualifying row ids, or None when unsupported."""
        parts = self._destructure(predicate)
        if parts is None:
            return None
        name, op, value = parts
        cracked = self.column_for(name, column)
        if op is ComparisonOp.LT:
            return cracked.range_row_ids(high=value)
        if op is ComparisonOp.LE:
            return cracked.range_row_ids(high=value, high_inclusive=True)
        if op is ComparisonOp.GT:
            return cracked.range_row_ids(low=value, low_inclusive=False)
        if op is ComparisonOp.GE:
            return cracked.range_row_ids(low=value)
        # EQ: a degenerate range.
        return cracked.range_row_ids(
            low=value, high=value, low_inclusive=True, high_inclusive=True
        )

    def range_for_conjuncts(
        self, conjuncts, columns
    ) -> "Optional[Tuple[np.ndarray, List[int]]]":
        """Answer several conjuncts over one attribute as a single range.

        Picks the first attribute with supported comparisons, folds all
        its bounds into one ``[low, high]`` request (a BETWEEN pair costs
        the same as one one-sided predicate), and returns the sorted
        qualifying row ids plus the indices of the conjuncts consumed.
        Returns None when no conjunct is indexable.
        """
        by_attr: Dict[str, List[Tuple[int, ComparisonOp, float]]] = {}
        for position, conjunct in enumerate(conjuncts):
            parts = self._destructure(conjunct)
            if parts is not None:
                name, op, value = parts
                by_attr.setdefault(name, []).append((position, op, value))
        if not by_attr:
            return None
        # The attribute with the most indexable bounds wins (a two-sided
        # range beats a one-sided one).
        name = max(by_attr, key=lambda n: len(by_attr[n]))
        low = high = None
        low_inc = True
        high_inc = False
        used: List[int] = []

        def tighten_low(value: float, inclusive: bool) -> None:
            nonlocal low, low_inc
            if (
                low is None
                or value > low
                or (value == low and low_inc and not inclusive)
            ):
                low, low_inc = value, inclusive

        def tighten_high(value: float, inclusive: bool) -> None:
            nonlocal high, high_inc
            if (
                high is None
                or value < high
                or (value == high and high_inc and not inclusive)
            ):
                high, high_inc = value, inclusive

        for position, op, value in by_attr[name]:
            used.append(position)
            if op is ComparisonOp.GT:
                tighten_low(value, False)
            elif op is ComparisonOp.GE:
                tighten_low(value, True)
            elif op is ComparisonOp.LT:
                tighten_high(value, False)
            elif op is ComparisonOp.LE:
                tighten_high(value, True)
            else:  # EQ tightens both sides
                tighten_low(value, True)
                tighten_high(value, True)
        cracked = self.column_for(name, columns[name])
        positions = cracked.range_row_ids(
            low=low,
            high=high,
            low_inclusive=low_inc,
            high_inclusive=high_inc,
        )
        return positions, used

    def stats(self) -> Dict[str, Tuple[int, int]]:
        """Per-attribute (pieces, cracks performed)."""
        return {
            name: (cracked.num_pieces, cracked.cracks_performed)
            for name, cracked in self._columns.items()
        }
