"""Extensions beyond the paper's evaluated scope.

The paper's conclusion names one "challenging area with potential high
impact": studying **adaptive indexing together with adaptive data
layouts**.  :mod:`repro.extensions.cracking` implements that direction:
a database-cracking index (Idreos et al., CIDR'07 — cited by the paper
as [23]) that partitions a column incrementally as range predicates
query it, plus an engine hook that lets the late-materialization
strategy answer its first predicate from the cracker instead of a scan.

Everything in this package is optional and off by default; the
reproduction of the paper's results does not depend on it.
"""

from .cracking import CrackedColumn, CrackingPredicateIndex
from .cracked_engine import CrackingColumnStoreEngine

__all__ = [
    "CrackedColumn",
    "CrackingPredicateIndex",
    "CrackingColumnStoreEngine",
]
