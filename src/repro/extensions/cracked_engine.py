"""A column-store engine whose predicates are answered by cracking.

Demonstrates the paper's future-work direction end to end: the engine
is the static column store (late materialization), except that the
*first* predicate conjunct — the one a column store evaluates over the
full column — is answered from a :class:`CrackingPredicateIndex` when
it is a supported single-attribute comparison.  Every query makes the
index a little more refined, so selective recurring predicates get
faster over time with no tuning — adaptive indexing beside adaptive
layouts.
"""

from __future__ import annotations

import time
from typing import Optional, Union

import numpy as np

from ..baselines.base import StaticReport
from ..baselines.column_engine import ColumnStoreEngine
from ..config import EngineConfig
from ..errors import ExecutionError
from ..execution.evaluator import (
    AggregateAccumulator,
    collect_aggregates,
    evaluate_predicate,
    finalize_output,
)
from ..execution.result import QueryResult
from ..execution.selection import SelectionVector
from ..execution.vectorized import _MaterializingEvaluator, _provider_columns
from ..execution.volcano import projection_dtype
from ..sql.analyzer import analyze_query
from ..sql.parser import parse_query
from ..sql.query import Query
from ..storage.relation import Table
from .cracking import CrackingPredicateIndex


class CrackingColumnStoreEngine(ColumnStoreEngine):
    """Late materialization with a cracking index for predicates."""

    name = "cracking-column-store"

    def __init__(
        self, table: Table, config: Optional[EngineConfig] = None
    ) -> None:
        super().__init__(table, config)
        self.index = CrackingPredicateIndex()
        self.index_hits = 0
        self.index_misses = 0

    def execute(self, query: Union[Query, str]) -> StaticReport:
        started = time.perf_counter()
        if isinstance(query, str):
            query = parse_query(query)
        if query.table != self.table.name:
            raise ExecutionError(
                f"engine serves table {self.table.name!r}, query targets "
                f"{query.table!r}"
            )
        info = analyze_query(query, self.table.schema)
        result = self._run_late_with_index(info)
        seconds = time.perf_counter() - started
        report = StaticReport(
            index=len(self.reports),
            query=query,
            result=result,
            seconds=seconds,
            plan="late+cracking",
            strategy="late",
        )
        self.reports.append(report)
        return report

    # The late pipeline of repro.execution.vectorized, with the first
    # conjunct optionally answered by the cracker.
    def _run_late_with_index(self, info) -> QueryResult:
        layouts = self.table.covering_layouts(info.all_attrs) if info.all_attrs else self.table.layouts[:1]
        num_rows = self.table.num_rows
        columns = _provider_columns(layouts, info.all_attrs)
        selection = SelectionVector.all_rows(num_rows)

        conjuncts = list(info.query.predicates)
        answered = (
            self.index.range_for_conjuncts(conjuncts, columns)
            if conjuncts
            else None
        )
        if answered is not None:
            positions, used = answered
            selection = SelectionVector(num_rows, positions)
            conjuncts = [
                conjunct
                for position, conjunct in enumerate(conjuncts)
                if position not in set(used)
            ]
            self.index_hits += 1
        elif conjuncts:
            self.index_misses += 1

        for conjunct in conjuncts:
            gathered = {
                name: selection.gather(columns[name])
                for name in conjunct.columns()
            }
            mask = evaluate_predicate(conjunct, gathered.__getitem__)
            selection = selection.refine(mask)

        select_values = {
            name: selection.gather(columns[name])
            for name in info.select_attrs
        }
        evaluator = _MaterializingEvaluator(select_values)
        names = [out.name for out in info.query.select]
        if info.is_aggregation:
            aggregates = collect_aggregates(info.query.select)
            agg_values = {}
            count = selection.count
            for agg in aggregates:
                state = AggregateAccumulator(agg.func)
                if agg.arg is None:
                    state.update(None, count)
                else:
                    values = evaluator.evaluate(agg.arg)
                    state.update(np.atleast_1d(values), count)
                agg_values[agg] = state.finalize()
            values = [
                finalize_output(out.expr, agg_values)
                for out in info.query.select
            ]
            return QueryResult.scalar_row(names, values)
        out_dtype = projection_dtype(info)
        block = np.empty(
            (selection.count, len(info.query.select)), dtype=out_dtype
        )
        for position, out in enumerate(info.query.select):
            block[:, position] = evaluator.evaluate(out.expr)
        return QueryResult(names, block)
