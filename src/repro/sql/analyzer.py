"""Semantic analysis of queries against a schema.

:func:`analyze_query` validates a parsed/built query against the queried
relation's schema and returns a :class:`QueryInfo` that downstream
components (planner, cost model, codegen) consume: resolved attribute
lists in schema order, result data types, and the query's classification
(projection vs. aggregation, filtered vs. full scan).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import AnalysisError
from ..sql.types import DataType
from .expressions import (
    Aggregate,
    AggregateFunc,
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expr,
    Literal,
    Not,
)
from .query import Query

# ``Schema`` lives in repro.storage; importing it here would create a
# package cycle, so the analyzer accepts any object with ``names`` (a
# sequence of attribute names) and ``dtype_of(name) -> DataType``.


@dataclass(frozen=True)
class QueryInfo:
    """Resolved facts about one query, ready for planning.

    Attributes
    ----------
    query:
        The analyzed query.
    select_attrs / where_attrs / all_attrs:
        Referenced attributes in schema order (deterministic, unlike the
        frozensets on :class:`Query`).
    output_types:
        Result :class:`DataType` for each output column, in order.
    is_aggregation:
        True when the query returns one aggregated row.
    has_predicate:
        True when the query has a WHERE clause.
    """

    query: Query
    select_attrs: Tuple[str, ...]
    where_attrs: Tuple[str, ...]
    all_attrs: Tuple[str, ...]
    output_types: Tuple[DataType, ...]
    is_aggregation: bool
    has_predicate: bool


def expression_type(expr: Expr, schema) -> DataType:
    """Infer the value type of an arithmetic/aggregate expression."""
    if isinstance(expr, Literal):
        return (
            DataType.INT64 if isinstance(expr.value, int) else DataType.FLOAT64
        )
    if isinstance(expr, ColumnRef):
        return schema.dtype_of(expr.name)
    if isinstance(expr, Arithmetic):
        return DataType.common(
            expression_type(expr.left, schema),
            expression_type(expr.right, schema),
        )
    if isinstance(expr, Aggregate):
        if expr.func is AggregateFunc.COUNT:
            return DataType.INT64
        inner = expression_type(expr.arg, schema)
        if expr.func is AggregateFunc.AVG:
            return DataType.FLOAT64
        return inner
    if isinstance(expr, (Comparison, BooleanOp, Not)):
        raise AnalysisError(
            f"boolean expression used where a value is required: "
            f"{expr.to_sql()}"
        )
    raise AnalysisError(f"cannot type expression {expr!r}")


def _check_boolean(expr: Expr, schema) -> None:
    """Validate that ``expr`` is a well-formed boolean predicate."""
    if isinstance(expr, Comparison):
        expression_type(expr.left, schema)
        expression_type(expr.right, schema)
        return
    if isinstance(expr, BooleanOp):
        _check_boolean(expr.left, schema)
        _check_boolean(expr.right, schema)
        return
    if isinstance(expr, Not):
        _check_boolean(expr.child, schema)
        return
    raise AnalysisError(
        f"WHERE clause must be a boolean expression, got {expr.to_sql()}"
    )


def analyze_query(query: Query, schema) -> QueryInfo:
    """Validate ``query`` against ``schema`` and resolve its access info.

    Raises :class:`~repro.errors.AnalysisError` for unknown attributes or
    type-incorrect clauses.
    """
    known = set(schema.names)
    unknown = sorted(query.attributes - known)
    if unknown:
        raise AnalysisError(
            f"query references unknown attribute(s): {', '.join(unknown)}"
        )

    output_types = tuple(
        expression_type(out.expr, schema) for out in query.select
    )
    if query.where is not None:
        _check_boolean(query.where, schema)

    order = {name: i for i, name in enumerate(schema.names)}

    def ordered(names) -> Tuple[str, ...]:
        return tuple(sorted(names, key=order.__getitem__))

    return QueryInfo(
        query=query,
        select_attrs=ordered(query.select_attributes),
        where_attrs=ordered(query.where_attributes),
        all_attrs=ordered(query.attributes),
        output_types=output_types,
        is_aggregation=query.is_aggregation,
        has_predicate=query.where is not None,
    )
