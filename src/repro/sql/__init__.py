"""Query representation: types, expression AST, parser, analyzer.

H2O's scope (paper section 4) is scan-based select-project-aggregate
queries over one wide relation; joins are out of scope because the data
layout has little effect on cache-conscious joins.  This package models
exactly that query class:

- :mod:`repro.sql.types` — the fixed-width value types (int64/float64),
- :mod:`repro.sql.expressions` — arithmetic / comparison / boolean /
  aggregate expression AST,
- :mod:`repro.sql.query` — the ``Query`` object plus access-pattern
  signatures used by monitoring, the advisor and the operator cache,
- :mod:`repro.sql.parser` — a small SQL-subset parser,
- :mod:`repro.sql.builder` — a fluent programmatic query builder,
- :mod:`repro.sql.analyzer` — semantic validation against a schema.
"""

from .types import DataType
from .expressions import (
    Aggregate,
    AggregateFunc,
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expr,
    Literal,
    Not,
    col,
    lit,
)
from .query import OutputColumn, Query, QuerySignature
from .parser import parse_query
from .builder import QueryBuilder
from .analyzer import analyze_query, QueryInfo
from .signature import (
    QueryShapeSignature,
    literal_extractor,
    masked_sql,
    query_literals,
    shape_signature,
)

__all__ = [
    "DataType",
    "Expr",
    "ColumnRef",
    "Literal",
    "Arithmetic",
    "Comparison",
    "BooleanOp",
    "Not",
    "Aggregate",
    "AggregateFunc",
    "col",
    "lit",
    "Query",
    "OutputColumn",
    "QuerySignature",
    "parse_query",
    "QueryBuilder",
    "analyze_query",
    "QueryInfo",
    "QueryShapeSignature",
    "literal_extractor",
    "masked_sql",
    "query_literals",
    "shape_signature",
]
