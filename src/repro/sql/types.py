"""Value types supported by the engine.

The paper (section 3.1) restricts layouts to fixed-length attributes; the
evaluation uses integer attributes throughout.  We support 64-bit integers
and 64-bit floats, both one machine word wide, which keeps the cache-miss
cost model exact (one value == one word).
"""

from __future__ import annotations

import enum

import numpy as np

from ..errors import SchemaError


class DataType(enum.Enum):
    """Fixed-width scalar types storable in any layout."""

    INT64 = "int64"
    FLOAT64 = "float64"

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype backing this value type."""
        return np.dtype(self.value)

    @property
    def width_bytes(self) -> int:
        """Storage width in bytes (always one word for supported types)."""
        return self.numpy_dtype.itemsize

    @classmethod
    def from_any(cls, value: "DataType | str | np.dtype") -> "DataType":
        """Coerce a name, numpy dtype, or DataType into a DataType."""
        if isinstance(value, cls):
            return value
        name = np.dtype(value).name if not isinstance(value, str) else value
        for member in cls:
            if member.value == name.lower():
                return member
        raise SchemaError(f"unsupported data type: {value!r}")

    @staticmethod
    def common(left: "DataType", right: "DataType") -> "DataType":
        """Result type of an arithmetic operation over two operands."""
        if left is DataType.FLOAT64 or right is DataType.FLOAT64:
            return DataType.FLOAT64
        return DataType.INT64
