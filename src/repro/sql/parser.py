"""Parser for the SQL subset the engine executes.

Grammar (case-insensitive keywords)::

    query       := SELECT select_list FROM identifier [WHERE bool_expr]
    select_list := select_item ("," select_item)*
    select_item := expr [AS identifier]
    bool_expr   := bool_term (OR bool_term)*
    bool_term   := bool_factor (AND bool_factor)*
    bool_factor := NOT bool_factor | comparison | "(" bool_expr ")"
    comparison  := expr (< | <= | > | >= | = | != | <>) expr
                 | expr [NOT] BETWEEN expr AND expr
                 | expr [NOT] IN "(" expr ("," expr)* ")"
    expr        := term (("+" | "-") term)*
    term        := factor ("*" factor)*
    factor      := number | identifier | aggregate | "(" expr ")" | "-" factor
    aggregate   := (SUM|MIN|MAX|AVG|COUNT) "(" (expr | "*") ")"

This covers the paper's three query templates (projection, aggregation,
arithmetic expression; section 4.2.1) with arbitrary conjunctive /
disjunctive filter conditions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ParseError
from .expressions import (
    Aggregate,
    AggregateFunc,
    Arithmetic,
    ArithmeticOp,
    BoolConnective,
    BooleanOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    Literal,
    Not,
)
from .query import OutputColumn, Query

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?"
    r"|\d+(?:[eE][+-]?\d+)?)"
    r"|(?P<ident>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op><=|>=|!=|<>|[-+*<>=(),])"
    r"|(?P<star>\*)"
    r")"
)

_KEYWORDS = {
    "select",
    "from",
    "where",
    "and",
    "or",
    "not",
    "as",
    "between",
    "in",
}
_AGG_FUNCS = {f.value: f for f in AggregateFunc}
_COMPARISONS = {
    "<": ComparisonOp.LT,
    "<=": ComparisonOp.LE,
    ">": ComparisonOp.GT,
    ">=": ComparisonOp.GE,
    "=": ComparisonOp.EQ,
    "!=": ComparisonOp.NE,
    "<>": ComparisonOp.NE,
}


@dataclass(frozen=True)
class _Token:
    kind: str  # "number" | "ident" | "keyword" | "op"
    text: str
    position: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            stripped = text[pos:].lstrip()
            if not stripped:
                break
            raise ParseError(f"unexpected character {stripped[0]!r}", pos)
        pos = match.end()
        if match.lastgroup == "number":
            tokens.append(_Token("number", match.group("number"), match.start()))
        elif match.lastgroup == "ident":
            word = match.group("ident")
            kind = "keyword" if word.lower() in _KEYWORDS else "ident"
            tokens.append(_Token(kind, word, match.start()))
        else:
            tokens.append(_Token("op", match.group("op"), match.start()))
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # Token helpers -----------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input", len(self.text))
        self.index += 1
        return token

    def _expect_keyword(self, word: str) -> None:
        token = self._next()
        if token.kind != "keyword" or token.text.lower() != word:
            raise ParseError(f"expected {word.upper()}", token.position)

    def _expect_op(self, op: str) -> None:
        token = self._next()
        if token.kind != "op" or token.text != op:
            raise ParseError(f"expected {op!r}", token.position)

    def _match_keyword(self, word: str) -> bool:
        token = self._peek()
        if token and token.kind == "keyword" and token.text.lower() == word:
            self.index += 1
            return True
        return False

    def _match_op(self, *ops: str) -> Optional[str]:
        token = self._peek()
        if token and token.kind == "op" and token.text in ops:
            self.index += 1
            return token.text
        return None

    # Grammar -----------------------------------------------------------

    def parse_query(self) -> Query:
        self._expect_keyword("select")
        select = self._parse_select_list()
        self._expect_keyword("from")
        table_token = self._next()
        if table_token.kind != "ident":
            raise ParseError("expected table name", table_token.position)
        where: Optional[Expr] = None
        if self._match_keyword("where"):
            where = self._parse_bool_expr()
        trailing = self._peek()
        if trailing is not None:
            raise ParseError(
                f"unexpected trailing input {trailing.text!r}",
                trailing.position,
            )
        return Query(table=table_token.text, select=select, where=where)

    def _parse_select_list(self) -> Tuple[OutputColumn, ...]:
        items = [self._parse_select_item()]
        while self._match_op(","):
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self) -> OutputColumn:
        expr = self._parse_expr()
        alias = None
        if self._match_keyword("as"):
            alias_token = self._next()
            if alias_token.kind != "ident":
                raise ParseError("expected alias name", alias_token.position)
            alias = alias_token.text
        return OutputColumn(expr=expr, alias=alias)

    def _parse_bool_expr(self) -> Expr:
        left = self._parse_bool_term()
        while self._match_keyword("or"):
            right = self._parse_bool_term()
            left = BooleanOp(BoolConnective.OR, left, right)
        return left

    def _parse_bool_term(self) -> Expr:
        left = self._parse_bool_factor()
        while self._match_keyword("and"):
            right = self._parse_bool_factor()
            left = BooleanOp(BoolConnective.AND, left, right)
        return left

    def _parse_bool_factor(self) -> Expr:
        if self._match_keyword("not"):
            return Not(self._parse_bool_factor())
        # A parenthesis is ambiguous between a grouped boolean expression
        # and a parenthesized arithmetic operand; try boolean first and
        # fall back to treating it as the left side of a comparison.
        if self._peek() and self._peek().kind == "op" and self._peek().text == "(":
            saved = self.index
            try:
                self._expect_op("(")
                inner = self._parse_bool_expr()
                self._expect_op(")")
                if isinstance(inner, (Comparison, BooleanOp, Not)):
                    return inner
            except ParseError:
                pass
            self.index = saved
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_expr()
        if self._match_keyword("between"):
            return self._parse_between(left, negated=False)
        if self._match_keyword("in"):
            return self._parse_in(left, negated=False)
        if self._match_keyword("not"):
            if self._match_keyword("between"):
                return self._parse_between(left, negated=True)
            if self._match_keyword("in"):
                return self._parse_in(left, negated=True)
            token = self._peek()
            position = token.position if token else len(self.text)
            raise ParseError("expected BETWEEN or IN after NOT", position)
        token = self._peek()
        if token is None or token.kind != "op" or token.text not in _COMPARISONS:
            position = token.position if token else len(self.text)
            raise ParseError("expected comparison operator", position)
        self.index += 1
        right = self._parse_expr()
        return Comparison(_COMPARISONS[token.text], left, right)

    def _parse_between(self, left: Expr, negated: bool) -> Expr:
        """``x BETWEEN lo AND hi`` desugars to ``x >= lo AND x <= hi``."""
        low = self._parse_expr()
        self._expect_keyword("and")
        high = self._parse_expr()
        inside = BooleanOp(
            BoolConnective.AND,
            Comparison(ComparisonOp.GE, left, low),
            Comparison(ComparisonOp.LE, left, high),
        )
        return Not(inside) if negated else inside

    def _parse_in(self, left: Expr, negated: bool) -> Expr:
        """``x IN (a, b, c)`` desugars to an OR chain of equalities."""
        self._expect_op("(")
        values = [self._parse_expr()]
        while self._match_op(","):
            values.append(self._parse_expr())
        self._expect_op(")")
        expr: Expr = Comparison(ComparisonOp.EQ, left, values[0])
        for value in values[1:]:
            expr = BooleanOp(
                BoolConnective.OR,
                expr,
                Comparison(ComparisonOp.EQ, left, value),
            )
        return Not(expr) if negated else expr

    def _parse_expr(self) -> Expr:
        left = self._parse_term()
        while True:
            op = self._match_op("+", "-")
            if op is None:
                return left
            right = self._parse_term()
            arith = ArithmeticOp.ADD if op == "+" else ArithmeticOp.SUB
            left = Arithmetic(arith, left, right)

    def _parse_term(self) -> Expr:
        left = self._parse_factor()
        while self._match_op("*"):
            right = self._parse_factor()
            left = Arithmetic(ArithmeticOp.MUL, left, right)
        return left

    def _parse_factor(self) -> Expr:
        token = self._next()
        if token.kind == "number":
            text = token.text
            value = float(text) if any(c in text for c in ".eE") else int(text)
            return Literal(value)
        if token.kind == "op" and token.text == "-":
            inner = self._parse_factor()
            if isinstance(inner, Literal):
                return Literal(-inner.value)
            return Arithmetic(ArithmeticOp.SUB, Literal(0), inner)
        if token.kind == "op" and token.text == "(":
            inner = self._parse_expr()
            self._expect_op(")")
            return inner
        if token.kind == "ident":
            lowered = token.text.lower()
            if lowered in _AGG_FUNCS and self._match_op("("):
                return self._parse_aggregate_body(_AGG_FUNCS[lowered])
            return ColumnRef(token.text)
        raise ParseError(f"unexpected token {token.text!r}", token.position)

    def _parse_aggregate_body(self, func: AggregateFunc) -> Aggregate:
        if func is AggregateFunc.COUNT and self._match_op("*"):
            self._expect_op(")")
            return Aggregate(func, None)
        arg = self._parse_expr()
        self._expect_op(")")
        return Aggregate(func, arg)


def parse_query(text: str) -> Query:
    """Parse SQL-subset ``text`` into a :class:`~repro.sql.query.Query`.

    >>> q = parse_query("SELECT sum(a + b) FROM r WHERE c < 5 AND d > 2")
    >>> sorted(q.select_attributes), sorted(q.where_attributes)
    (['a', 'b'], ['c', 'd'])
    """
    return _Parser(text).parse_query()
