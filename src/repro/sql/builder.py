"""Fluent programmatic construction of queries.

Workload generators build thousands of queries; going through SQL text
for each would waste time and obscure intent.  :class:`QueryBuilder`
assembles the same :class:`~repro.sql.query.Query` objects directly:

>>> from repro.sql import QueryBuilder, col
>>> q = (QueryBuilder("r")
...      .select_sum(col("a") + col("b"))
...      .where(col("c") < 10)
...      .build())
>>> q.to_sql()
'SELECT sum((a + b)) FROM r WHERE c < 10'
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import AnalysisError
from .expressions import (
    Aggregate,
    AggregateFunc,
    BoolConnective,
    BooleanOp,
    ColumnRef,
    Expr,
)
from .query import OutputColumn, Query


class QueryBuilder:
    """Accumulates SELECT items and WHERE conjuncts, then builds a Query."""

    def __init__(self, table: str) -> None:
        self.table = table
        self._select: List[OutputColumn] = []
        self._where: Optional[Expr] = None

    # SELECT items -------------------------------------------------------

    def select(self, expr: "Expr | str", alias: Optional[str] = None) -> "QueryBuilder":
        """Add one output expression (a bare string means a column name)."""
        if isinstance(expr, str):
            expr = ColumnRef(expr)
        self._select.append(OutputColumn(expr=expr, alias=alias))
        return self

    def select_columns(self, names: Sequence[str]) -> "QueryBuilder":
        """Add a plain projection of the given column names."""
        for name in names:
            self.select(name)
        return self

    def _select_agg(
        self, func: AggregateFunc, expr: "Expr | str | None", alias: Optional[str]
    ) -> "QueryBuilder":
        if isinstance(expr, str):
            expr = ColumnRef(expr)
        self._select.append(OutputColumn(Aggregate(func, expr), alias))
        return self

    def select_sum(self, expr: "Expr | str", alias: Optional[str] = None) -> "QueryBuilder":
        return self._select_agg(AggregateFunc.SUM, expr, alias)

    def select_min(self, expr: "Expr | str", alias: Optional[str] = None) -> "QueryBuilder":
        return self._select_agg(AggregateFunc.MIN, expr, alias)

    def select_max(self, expr: "Expr | str", alias: Optional[str] = None) -> "QueryBuilder":
        return self._select_agg(AggregateFunc.MAX, expr, alias)

    def select_avg(self, expr: "Expr | str", alias: Optional[str] = None) -> "QueryBuilder":
        return self._select_agg(AggregateFunc.AVG, expr, alias)

    def select_count(
        self, expr: "Expr | str | None" = None, alias: Optional[str] = None
    ) -> "QueryBuilder":
        return self._select_agg(AggregateFunc.COUNT, expr, alias)

    # WHERE conjuncts ------------------------------------------------------

    def where(self, predicate: Expr) -> "QueryBuilder":
        """AND one more predicate onto the WHERE clause."""
        if self._where is None:
            self._where = predicate
        else:
            self._where = BooleanOp(BoolConnective.AND, self._where, predicate)
        return self

    # Finalize -------------------------------------------------------------

    def build(self) -> Query:
        """Produce the immutable Query (validates the select list)."""
        if not self._select:
            raise AnalysisError("QueryBuilder: no output columns were added")
        return Query(
            table=self.table, select=tuple(self._select), where=self._where
        )
