"""Canonical query-shape signatures: literals masked, structure kept.

The steady-state fast lane (and the operator cache before it) relies on
one idea from the paper's section 3.4: two queries that differ only in
their constants are *the same work* — they can share a compiled
operator, a chosen access plan, and a costing decision, with the
constants re-bound at run time.  This module is the single source of
truth for that equivalence:

- :func:`masked_sql` renders an expression with every literal replaced
  by ``?`` (pre-order, matching the parameter-collection order of the
  code generator);
- :func:`query_literals` extracts a query's literal values in exactly
  that canonical order, so a kernel compiled for one member of a shape
  class can be invoked with any other member's constants;
- :func:`literal_extractor` prebinds the traversal decisions (is the
  query an aggregation?) into a reusable extraction function — the
  per-repeat work is a single AST walk;
- :func:`shape_signature` produces the hashable
  :class:`QueryShapeSignature` that keys the engine's plan cache.

``repro.codegen`` consumes these helpers for its operator-cache key;
``repro.core.plan_cache`` consumes them for the fast lane.  Keeping them
here (in ``repro.sql``) keeps the dependency arrow one-directional:
sql ← codegen, sql ← core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import AnalysisError
from .expressions import (
    Aggregate,
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expr,
    Literal,
    Not,
)
from .query import Query


#: Per-node-type renderers: a single exact-type dict lookup replaces a
#: chain of ``isinstance`` checks on a path the fast lane walks for every
#: repeat query (lookup-key construction and parameter extraction).
_MASKERS: Dict[type, Callable[[Expr], str]] = {
    Literal: lambda expr: "?",
    ColumnRef: lambda expr: expr.name,
    Arithmetic: lambda expr: (
        f"({masked_sql(expr.left)} {expr.op.value} "
        f"{masked_sql(expr.right)})"
    ),
    Comparison: lambda expr: (
        f"{masked_sql(expr.left)} {expr.op.value} "
        f"{masked_sql(expr.right)}"
    ),
    BooleanOp: lambda expr: (
        f"({masked_sql(expr.left)} {expr.op.value.upper()} "
        f"{masked_sql(expr.right)})"
    ),
    Not: lambda expr: f"NOT ({masked_sql(expr.child)})",
    Aggregate: lambda expr: (
        f"{expr.func.value}"
        f"({'*' if expr.arg is None else masked_sql(expr.arg)})"
    ),
}


def masked_sql(expr: Expr) -> str:
    """Render ``expr`` with every literal replaced by ``?``.

    Pre-order traversal matching the compiler's parameter collection
    order, so two expressions with equal masked SQL bind their parameter
    vectors compatibly — this string is the structural part of both the
    operator-cache key and the plan-cache signature.
    """
    masker = _MASKERS.get(type(expr))
    if masker is None:
        raise AnalysisError(f"cannot mask {expr!r}")
    return masker(expr)


def _walk_literals(expr: Expr, out: List[object], skip_aggs: bool) -> None:
    """Pre-order literal collection, optionally stopping at aggregates."""
    kind = type(expr)
    if kind is Literal:
        out.append(expr.value)
    elif kind is ColumnRef:
        pass
    elif kind is Arithmetic or kind is Comparison or kind is BooleanOp:
        _walk_literals(expr.left, out, skip_aggs)
        _walk_literals(expr.right, out, skip_aggs)
    elif kind is Not:
        _walk_literals(expr.child, out, skip_aggs)
    elif kind is Aggregate:
        if not skip_aggs and expr.arg is not None:
            _walk_literals(expr.arg, out, skip_aggs)
    else:
        raise AnalysisError(f"cannot collect literals from {expr!r}")


def _unique_aggregates(query: Query) -> Tuple[Aggregate, ...]:
    """Unique aggregate nodes across the outputs, in first-seen order.

    Mirrors ``repro.execution.evaluator.collect_aggregates`` exactly
    (structural dedup): the templates emit one accumulator per *unique*
    aggregate, so the canonical literal order must dedup the same way.
    """
    seen: Dict[Aggregate, None] = {}
    for out in query.select:
        for agg in out.expr.aggregates():
            seen.setdefault(agg, None)
    return tuple(seen.keys())


def _collect(query: Query, is_aggregation: bool) -> List[object]:
    literals: List[object] = []
    for conjunct in query.predicates:
        _walk_literals(conjunct, literals, skip_aggs=False)
    if is_aggregation:
        for agg in _unique_aggregates(query):
            if agg.arg is not None:
                _walk_literals(agg.arg, literals, skip_aggs=False)
        for out in query.select:
            _walk_literals(out.expr, literals, skip_aggs=True)
    else:
        for out in query.select:
            _walk_literals(out.expr, literals, skip_aggs=False)
    return literals


def query_literals(query: Query) -> List[object]:
    """The canonical runtime-parameter vector of one query.

    The order mirrors template emission exactly: predicate conjuncts
    first (pre-order each), then — for aggregations — the unique
    aggregate arguments in collection order followed by the output
    expressions with aggregate subtrees skipped; for projections, the
    output expressions in order.
    """
    return _collect(query, query.is_aggregation)


def literal_extractor(query: Query) -> Callable[[Query], Tuple[object, ...]]:
    """A prebound parameter-extraction function for ``query``'s shape.

    The returned callable maps any query of the *same shape signature*
    to its parameter tuple in canonical order; the shape-dependent
    traversal decisions (aggregation vs. projection) are bound once, so
    a fast-lane repeat pays a single literal walk and nothing else.
    """
    is_aggregation = query.is_aggregation

    def extract(repeat: Query) -> Tuple[object, ...]:
        return tuple(_collect(repeat, is_aggregation))

    return extract


@dataclass(frozen=True)
class QueryShapeSignature:
    """The literal-independent identity of a query.

    Two queries with equal shape signatures touch the same table with
    structurally identical SELECT and WHERE clauses whose literals have
    the same Python types (int vs. float changes output dtypes and
    compiled parameter handling, so types are part of the shape).  The
    ``param_types`` tuple also disambiguates shapes whose *masked* text
    collides but whose aggregate dedup differs (``sum(a + 1), sum(a +
    1)`` folds to one accumulator, ``sum(a + 1), sum(a + 2)`` to two).
    """

    table: str
    masked_select: Tuple[str, ...]
    masked_where: Optional[str]
    param_types: Tuple[str, ...]


def shape_signature(query: Query) -> QueryShapeSignature:
    """Compute the canonical :class:`QueryShapeSignature` of ``query``.

    Prefer :meth:`repro.sql.query.Query.shape_signature`, which caches
    the result on the query object.
    """
    masked_select = tuple(masked_sql(out.expr) for out in query.select)
    masked_where = (
        masked_sql(query.where) if query.where is not None else None
    )
    param_types = tuple(
        type(value).__name__ for value in query_literals(query)
    )
    return QueryShapeSignature(
        table=query.table,
        masked_select=masked_select,
        masked_where=masked_where,
        param_types=param_types,
    )
