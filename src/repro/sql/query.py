"""The Query object and its access-pattern signature.

A :class:`Query` is one select-project-aggregate statement over a single
table.  Beyond carrying the AST, it computes the two attribute sets that
drive every adaptive decision in H2O (paper section 3.2): the attributes
accessed in the SELECT clause and the attributes accessed in the WHERE
clause.  H2O keeps these separate — they feed two distinct affinity
matrices and may be materialized as distinct column groups so that, e.g.,
a predicate group can produce a selection vector (Fig. 6).

:class:`QuerySignature` is the hashable shape of a query used by the
monitor (pattern frequency), the advisor (candidate generation), and the
operator cache (kernel reuse across structurally identical queries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import FrozenSet, Optional, Tuple

from ..errors import AnalysisError
from .expressions import Aggregate, Expr, flatten_conjuncts


@dataclass(frozen=True)
class OutputColumn:
    """One item of the SELECT list: an expression and an output name."""

    expr: Expr
    alias: Optional[str] = None

    @property
    def name(self) -> str:
        """Name of this column in the result (alias or rendered SQL)."""
        return self.alias if self.alias is not None else self.expr.to_sql()

    def to_sql(self) -> str:
        sql = self.expr.to_sql()
        if self.alias is not None:
            sql += f" AS {self.alias}"
        return sql


class QuerySignature:
    """The access-pattern shape of a query.

    Two queries with the same signature touch the same attributes in the
    same clauses and have structurally identical output expressions and
    predicates, so they can share a generated operator and they count as
    the same pattern for monitoring purposes.

    The ``structure`` tuple (rendered SQL of outputs and predicate) is
    computed lazily: the per-query monitoring hot path only consults the
    attribute sets, while structure is needed by the cost model's shape
    cache, the advisor, and signature equality — all of which run off
    the hot path.  Equality and hashing include the structure, so the
    semantics match the former eager implementation exactly.
    """

    __slots__ = ("select_attrs", "where_attrs", "_select", "_where",
                 "_structure")

    def __init__(
        self,
        select_attrs: FrozenSet[str],
        where_attrs: FrozenSet[str],
        structure: Optional[Tuple[str, ...]] = None,
        select: Tuple["OutputColumn", ...] = (),
        where: Optional[Expr] = None,
    ) -> None:
        self.select_attrs = select_attrs
        self.where_attrs = where_attrs
        self._structure = tuple(structure) if structure is not None else None
        self._select = tuple(select)
        self._where = where

    @property
    def structure(self) -> Tuple[str, ...]:
        """Rendered output/predicate SQL (computed on first access)."""
        if self._structure is None:
            parts = tuple(out.expr.to_sql() for out in self._select)
            if self._where is not None:
                parts += ("WHERE", self._where.to_sql())
            self._structure = parts
        return self._structure

    @property
    def all_attrs(self) -> FrozenSet[str]:
        return self.select_attrs | self.where_attrs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuerySignature):
            return NotImplemented
        return (
            self.select_attrs == other.select_attrs
            and self.where_attrs == other.where_attrs
            and self.structure == other.structure
        )

    def __hash__(self) -> int:
        return hash((self.select_attrs, self.where_attrs, self.structure))

    def __repr__(self) -> str:
        return (
            f"QuerySignature(select_attrs={set(self.select_attrs)!r}, "
            f"where_attrs={set(self.where_attrs)!r}, "
            f"structure={self.structure!r})"
        )


@dataclass(frozen=True)
class Query:
    """A select-project-aggregate query over one table.

    Parameters
    ----------
    table:
        Name of the relation scanned.
    select:
        Output columns, in order.  Either all of them contain aggregates
        (an aggregation query returning one row) or none of them do
        (a projection query returning one row per qualifying tuple).
    where:
        Optional boolean predicate; ``None`` means no WHERE clause.
    """

    table: str
    select: Tuple[OutputColumn, ...]
    where: Optional[Expr] = None
    _signature_cache: "list" = field(
        default_factory=list, compare=False, hash=False, repr=False
    )

    def __post_init__(self) -> None:
        if not self.select:
            raise AnalysisError("a query must select at least one column")
        agg_flags = {out.expr.contains_aggregate() for out in self.select}
        if agg_flags == {True, False}:
            raise AnalysisError(
                "cannot mix aggregate and non-aggregate output columns "
                "(the engine has no GROUP BY)"
            )
        if self.where is not None and self.where.contains_aggregate():
            raise AnalysisError("aggregates are not allowed in WHERE")

    # Access-pattern views ---------------------------------------------
    #
    # The attribute sets are consulted several times per query on the
    # engine's hot path (monitoring, shift detection, candidate match);
    # they are pure functions of the frozen AST, so they are computed
    # once per Query instance (``cached_property`` writes straight into
    # ``__dict__``, which a frozen dataclass permits).

    @cached_property
    def is_aggregation(self) -> bool:
        """Whether this query returns one aggregated row."""
        return self.select[0].expr.contains_aggregate()

    @cached_property
    def select_attributes(self) -> FrozenSet[str]:
        """Attributes referenced anywhere in the SELECT clause."""
        names: set = set()
        for out in self.select:
            names |= out.expr.columns()
        return frozenset(names)

    @cached_property
    def where_attributes(self) -> FrozenSet[str]:
        """Attributes referenced in the WHERE clause."""
        if self.where is None:
            return frozenset()
        return self.where.columns()

    @cached_property
    def attributes(self) -> FrozenSet[str]:
        """All attributes this query touches."""
        return self.select_attributes | self.where_attributes

    @cached_property
    def predicates(self) -> Tuple[Expr, ...]:
        """Top-level AND-ed conjuncts of the WHERE clause."""
        return flatten_conjuncts(self.where)

    @property
    def aggregate_calls(self) -> Tuple[Aggregate, ...]:
        """All aggregate nodes in the SELECT clause, in output order."""
        calls: list = []
        for out in self.select:
            calls.extend(out.expr.aggregates())
        return tuple(calls)

    def signature(self) -> QuerySignature:
        """The hashable access-pattern shape of this query (cached)."""
        if not self._signature_cache:
            self._signature_cache.append(
                QuerySignature(
                    select_attrs=self.select_attributes,
                    where_attrs=self.where_attributes,
                    select=self.select,
                    where=self.where,
                )
            )
        return self._signature_cache[0]

    def shape_signature(self):
        """The literal-masked canonical shape of this query (cached).

        This is the plan-cache key of the engine's steady-state fast
        lane: two queries with equal shape signatures can share one
        access plan and one compiled kernel, re-binding only literals.
        See :mod:`repro.sql.signature`.
        """
        if len(self._signature_cache) < 2:
            from .signature import shape_signature

            self.signature()  # ensure slot 0 holds the access signature
            self._signature_cache.append(shape_signature(self))
        return self._signature_cache[1]

    def to_sql(self) -> str:
        """Render the query back to SQL-subset text."""
        cols = ", ".join(out.to_sql() for out in self.select)
        sql = f"SELECT {cols} FROM {self.table}"
        if self.where is not None:
            sql += f" WHERE {self.where.to_sql()}"
        return sql

    def __repr__(self) -> str:
        return f"Query({self.to_sql()!r})"
