"""Expression AST for select-project-aggregate queries.

The AST is deliberately passive: evaluation lives in
:mod:`repro.execution.evaluator` (the "generic operator" of Fig. 14) and
source-code emission lives in :mod:`repro.codegen` (the generated
operators).  Nodes are immutable and hashable so that queries can be used
as cache keys and compared structurally.

Supported shapes, matching the paper's templates (section 4.2.1):

- ``ColumnRef`` / ``Literal`` leaves,
- ``Arithmetic`` (+, -, *) for arithmetic-expression queries,
- ``Comparison`` (<, <=, >, >=, =, !=) for WHERE predicates,
- ``BooleanOp`` (AND / OR) and ``Not`` combining predicates,
- ``Aggregate`` (SUM, MIN, MAX, AVG, COUNT) for aggregation queries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterator, Tuple, Union

from ..errors import AnalysisError

Scalar = Union[int, float]


class ArithmeticOp(enum.Enum):
    """Binary arithmetic operators."""

    ADD = "+"
    SUB = "-"
    MUL = "*"


class ComparisonOp(enum.Enum):
    """Comparison operators usable in predicates."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "="
    NE = "!="

    def flipped(self) -> "ComparisonOp":
        """The operator with its operands swapped (``a < b`` → ``b > a``)."""
        flips = {
            ComparisonOp.LT: ComparisonOp.GT,
            ComparisonOp.LE: ComparisonOp.GE,
            ComparisonOp.GT: ComparisonOp.LT,
            ComparisonOp.GE: ComparisonOp.LE,
            ComparisonOp.EQ: ComparisonOp.EQ,
            ComparisonOp.NE: ComparisonOp.NE,
        }
        return flips[self]


class BoolConnective(enum.Enum):
    """Boolean connectives for combining predicates."""

    AND = "and"
    OR = "or"


class AggregateFunc(enum.Enum):
    """Aggregate functions supported in the SELECT clause."""

    SUM = "sum"
    MIN = "min"
    MAX = "max"
    AVG = "avg"
    COUNT = "count"


class Expr:
    """Base class for all expression nodes."""

    __slots__ = ()

    def columns(self) -> FrozenSet[str]:
        """Names of all attributes referenced anywhere in this subtree."""
        return frozenset(ref.name for ref in self.column_refs())

    def column_refs(self) -> Iterator["ColumnRef"]:
        """Yield every :class:`ColumnRef` leaf in this subtree."""
        raise NotImplementedError

    def contains_aggregate(self) -> bool:
        """Whether any :class:`Aggregate` node appears in this subtree."""
        return any(True for _ in self.aggregates())

    def aggregates(self) -> Iterator["Aggregate"]:
        """Yield every :class:`Aggregate` node in this subtree."""
        raise NotImplementedError

    def to_sql(self) -> str:
        """Render this expression back to SQL-subset text."""
        raise NotImplementedError

    # Operator sugar so tests and examples can build ASTs tersely. -----

    def _coerce(self, other: "Expr | Scalar") -> "Expr":
        if isinstance(other, Expr):
            return other
        if isinstance(other, (int, float)):
            return Literal(other)
        raise TypeError(f"cannot use {other!r} in an expression")

    def __add__(self, other: "Expr | Scalar") -> "Arithmetic":
        return Arithmetic(ArithmeticOp.ADD, self, self._coerce(other))

    def __radd__(self, other: Scalar) -> "Arithmetic":
        return Arithmetic(ArithmeticOp.ADD, self._coerce(other), self)

    def __sub__(self, other: "Expr | Scalar") -> "Arithmetic":
        return Arithmetic(ArithmeticOp.SUB, self, self._coerce(other))

    def __rsub__(self, other: Scalar) -> "Arithmetic":
        return Arithmetic(ArithmeticOp.SUB, self._coerce(other), self)

    def __mul__(self, other: "Expr | Scalar") -> "Arithmetic":
        return Arithmetic(ArithmeticOp.MUL, self, self._coerce(other))

    def __rmul__(self, other: Scalar) -> "Arithmetic":
        return Arithmetic(ArithmeticOp.MUL, self._coerce(other), self)

    def __lt__(self, other: "Expr | Scalar") -> "Comparison":
        return Comparison(ComparisonOp.LT, self, self._coerce(other))

    def __le__(self, other: "Expr | Scalar") -> "Comparison":
        return Comparison(ComparisonOp.LE, self, self._coerce(other))

    def __gt__(self, other: "Expr | Scalar") -> "Comparison":
        return Comparison(ComparisonOp.GT, self, self._coerce(other))

    def __ge__(self, other: "Expr | Scalar") -> "Comparison":
        return Comparison(ComparisonOp.GE, self, self._coerce(other))

    def eq(self, other: "Expr | Scalar") -> "Comparison":
        """Equality predicate (``==`` is reserved for structural equality)."""
        return Comparison(ComparisonOp.EQ, self, self._coerce(other))

    def ne(self, other: "Expr | Scalar") -> "Comparison":
        """Inequality predicate."""
        return Comparison(ComparisonOp.NE, self, self._coerce(other))


@dataclass(frozen=True)
class ColumnRef(Expr):
    """Reference to a named attribute of the queried relation."""

    name: str

    def column_refs(self) -> Iterator["ColumnRef"]:
        yield self

    def aggregates(self) -> Iterator["Aggregate"]:
        return iter(())

    def to_sql(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"col({self.name!r})"


@dataclass(frozen=True)
class Literal(Expr):
    """A numeric constant."""

    value: Scalar

    def column_refs(self) -> Iterator["ColumnRef"]:
        return iter(())

    def aggregates(self) -> Iterator["Aggregate"]:
        return iter(())

    def to_sql(self) -> str:
        return repr(self.value)

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


@dataclass(frozen=True)
class Arithmetic(Expr):
    """Binary arithmetic over two sub-expressions."""

    op: ArithmeticOp
    left: Expr
    right: Expr

    def column_refs(self) -> Iterator["ColumnRef"]:
        yield from self.left.column_refs()
        yield from self.right.column_refs()

    def aggregates(self) -> Iterator["Aggregate"]:
        yield from self.left.aggregates()
        yield from self.right.aggregates()

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op.value} {self.right.to_sql()})"

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op.value} {self.right!r})"


@dataclass(frozen=True)
class Comparison(Expr):
    """A comparison predicate; evaluates to a boolean per tuple."""

    op: ComparisonOp
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.left.contains_aggregate() or self.right.contains_aggregate():
            raise AnalysisError("aggregates are not allowed in predicates")

    def column_refs(self) -> Iterator["ColumnRef"]:
        yield from self.left.column_refs()
        yield from self.right.column_refs()

    def aggregates(self) -> Iterator["Aggregate"]:
        return iter(())

    def to_sql(self) -> str:
        return f"{self.left.to_sql()} {self.op.value} {self.right.to_sql()}"

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op.value} {self.right!r})"


@dataclass(frozen=True)
class BooleanOp(Expr):
    """Conjunction or disjunction of two boolean sub-expressions."""

    op: BoolConnective
    left: Expr
    right: Expr

    def column_refs(self) -> Iterator["ColumnRef"]:
        yield from self.left.column_refs()
        yield from self.right.column_refs()

    def aggregates(self) -> Iterator["Aggregate"]:
        return iter(())

    def to_sql(self) -> str:
        return (
            f"({self.left.to_sql()} {self.op.value.upper()} "
            f"{self.right.to_sql()})"
        )

    def conjuncts(self) -> Iterator[Expr]:
        """Yield the top-level AND-ed factors of this expression.

        H2O evaluates conjunctive predicates together in one generated
        loop (Fig. 5), so the planner flattens the AND tree.
        """
        if self.op is BoolConnective.AND:
            for side in (self.left, self.right):
                if isinstance(side, BooleanOp):
                    yield from side.conjuncts()
                else:
                    yield side
        else:
            yield self


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation of a boolean sub-expression."""

    child: Expr

    def column_refs(self) -> Iterator["ColumnRef"]:
        yield from self.child.column_refs()

    def aggregates(self) -> Iterator["Aggregate"]:
        return iter(())

    def to_sql(self) -> str:
        return f"NOT ({self.child.to_sql()})"


@dataclass(frozen=True)
class Aggregate(Expr):
    """An aggregate function applied to a (non-aggregate) argument.

    COUNT may take ``None`` as its argument, meaning ``COUNT(*)``.
    """

    func: AggregateFunc
    arg: "Expr | None"

    def __post_init__(self) -> None:
        if self.arg is None and self.func is not AggregateFunc.COUNT:
            raise AnalysisError(f"{self.func.value}() requires an argument")
        if self.arg is not None and self.arg.contains_aggregate():
            raise AnalysisError("nested aggregates are not allowed")

    def column_refs(self) -> Iterator["ColumnRef"]:
        if self.arg is not None:
            yield from self.arg.column_refs()

    def aggregates(self) -> Iterator["Aggregate"]:
        yield self

    def to_sql(self) -> str:
        inner = "*" if self.arg is None else self.arg.to_sql()
        return f"{self.func.value}({inner})"


def col(name: str) -> ColumnRef:
    """Shorthand constructor for a column reference."""
    return ColumnRef(name)


def lit(value: Scalar) -> Literal:
    """Shorthand constructor for a literal."""
    return Literal(value)


def conjunction_of(predicates: "Tuple[Expr, ...] | list") -> "Expr | None":
    """AND together a sequence of predicates (None for an empty sequence)."""
    result: "Expr | None" = None
    for pred in predicates:
        if result is None:
            result = pred
        else:
            result = BooleanOp(BoolConnective.AND, result, pred)
    return result


def flatten_conjuncts(predicate: "Expr | None") -> Tuple[Expr, ...]:
    """Split a predicate into its top-level AND-ed factors."""
    if predicate is None:
        return ()
    if isinstance(predicate, BooleanOp):
        return tuple(predicate.conjuncts())
    return (predicate,)
