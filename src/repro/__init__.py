"""H2O: A Hands-free Adaptive Store — a full Python reproduction.

Reproduces Alagiannis, Idreos & Ailamaki, *H2O: A Hands-free Adaptive
Store*, SIGMOD 2014: an analytical engine that continuously adapts its
physical data layouts (row-major, column-major, groups of columns), its
execution strategies (fused scans vs. late materialization), and its
operator code (generated on the fly, cached) to the observed workload —
with no a-priori tuning.

Quickstart::

    from repro import H2OEngine, generate_table

    table = generate_table("r", num_attrs=50, num_rows=100_000, rng=7)
    engine = H2OEngine(table)
    report = engine.execute(
        "SELECT sum(a1 + a2 + a3) FROM r WHERE a4 < 0 AND a5 > 0"
    )
    print(report.result.scalars(), report.seconds, report.plan)

See DESIGN.md for the architecture and EXPERIMENTS.md for the
reproduction of every table and figure in the paper's evaluation.
"""

from .config import EngineConfig, MachineProfile
from .errors import H2OError
from .sql import Query, QueryBuilder, col, lit, parse_query
from .storage import (
    Attribute,
    Catalog,
    ColumnGroup,
    Schema,
    SingleColumn,
    Table,
    generate_table,
    wide_schema,
)
from .execution import ExecutionStrategy, QueryResult
from .core import CostModel, H2OEngine, H2OSystem, QueryReport
from .service import H2OService, QueryFuture, Session
from .baselines import (
    AutoPartEngine,
    ColumnStoreEngine,
    OptimalEngine,
    RowStoreEngine,
)

__version__ = "1.0.0"

__all__ = [
    "EngineConfig",
    "MachineProfile",
    "H2OError",
    "Query",
    "QueryBuilder",
    "col",
    "lit",
    "parse_query",
    "Attribute",
    "Schema",
    "Table",
    "Catalog",
    "ColumnGroup",
    "SingleColumn",
    "generate_table",
    "wide_schema",
    "ExecutionStrategy",
    "QueryResult",
    "CostModel",
    "H2OEngine",
    "H2OSystem",
    "H2OService",
    "QueryFuture",
    "QueryReport",
    "Session",
    "RowStoreEngine",
    "ColumnStoreEngine",
    "OptimalEngine",
    "AutoPartEngine",
    "__version__",
]
