"""Aligned block iteration over one or more layouts.

The fused strategy processes the relation in vectors (small row ranges
sized for cache locality, paper section 3.3).  A :class:`BlockCursor`
walks all covering layouts in lockstep — row alignment across layouts
makes this sound — and each :class:`Block` resolves attribute names to
array slices for that row range.
"""

from __future__ import annotations

from typing import Dict, Iterator, Sequence, Tuple

import numpy as np

from ..errors import ExecutionError
from ..storage.layout import Layout


class Block:
    """One row range [start, stop) viewed across the covering layouts."""

    __slots__ = ("start", "stop", "_providers")

    def __init__(
        self, start: int, stop: int, providers: Dict[str, Layout]
    ) -> None:
        self.start = start
        self.stop = stop
        self._providers = providers

    @property
    def num_rows(self) -> int:
        return self.stop - self.start

    def col(self, name: str) -> np.ndarray:
        """Slice of attribute ``name`` for this row range (a view)."""
        try:
            layout = self._providers[name]
        except KeyError:
            raise ExecutionError(
                f"attribute {name!r} is not provided by this cursor"
            ) from None
        return layout.column(name)[self.start : self.stop]

    def resolver(self):
        """A ``name -> array`` callable for the expression evaluator."""
        return self.col


class BlockCursor:
    """Iterates row-aligned blocks over a set of covering layouts.

    Parameters
    ----------
    layouts:
        The layouts to read from.  When several layouts store the same
        attribute, the narrowest one wins (fewest useless bytes).
    attrs:
        The attributes the consumer will ask for; validated up front so
        execution fails fast rather than mid-scan.
    block_rows:
        Vector size in rows.
    """

    def __init__(
        self,
        layouts: Sequence[Layout],
        attrs: Sequence[str],
        block_rows: int,
    ) -> None:
        if block_rows <= 0:
            raise ExecutionError(f"block_rows must be positive: {block_rows}")
        if not layouts:
            raise ExecutionError("BlockCursor needs at least one layout")
        rows = {layout.num_rows for layout in layouts}
        if len(rows) != 1:
            raise ExecutionError(
                f"layouts disagree on row count: {sorted(rows)}"
            )
        (self.num_rows,) = rows
        self.block_rows = block_rows
        providers: Dict[str, Layout] = {}
        for attr in attrs:
            candidates = [l for l in layouts if attr in l.attr_set]
            if not candidates:
                raise ExecutionError(
                    f"attribute {attr!r} is not stored in any given layout"
                )
            providers[attr] = min(candidates, key=lambda l: l.width)
        self._providers = providers

    def __iter__(self) -> Iterator[Block]:
        for start in range(0, self.num_rows, self.block_rows):
            stop = min(start + self.block_rows, self.num_rows)
            yield Block(start, stop, self._providers)

    def ranges(self) -> Iterator[Tuple[int, int]]:
        for start in range(0, self.num_rows, self.block_rows):
            yield start, min(start + self.block_rows, self.num_rows)
