"""Interpreted late-materialization execution (column-store style).

Follows the evaluation procedure of paper section 2.1 exactly:

1. evaluate the first predicate over its full column(s), producing a
   selection vector of qualifying positions;
2. for each further conjunct, *fetch* the qualifying values of its
   columns into new intermediate columns, evaluate, and refine the
   selection vector;
3. gather the SELECT-clause columns at the final positions and compute
   the output expressions, materializing one intermediate per operator;
4. aggregate or emit the row-major result.

The per-step materialization cost is tracked and surfaced — it is the
central overhead that makes column-major execution lose to groups when
many attributes are accessed (Fig. 2, Fig. 10c).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from ..errors import ExecutionError
from ..sql.analyzer import QueryInfo
from ..sql.expressions import (
    Aggregate,
    Arithmetic,
    ArithmeticOp,
    ColumnRef,
    Expr,
    Literal,
)
from ..storage.layout import Layout
from .evaluator import (
    AggregateAccumulator,
    collect_aggregates,
    evaluate_predicate,
    finalize_output,
)
from .result import QueryResult
from .selection import SelectionVector
from .volcano import projection_dtype


class _MaterializingEvaluator:
    """Evaluates value expressions with explicit per-op intermediates."""

    def __init__(self, columns: Dict[str, np.ndarray]) -> None:
        self._columns = columns
        self.intermediate_bytes = 0

    def evaluate(self, expr: Expr) -> np.ndarray:
        if isinstance(expr, Literal):
            return np.asarray(expr.value)
        if isinstance(expr, ColumnRef):
            return self._columns[expr.name]
        if isinstance(expr, Arithmetic):
            left = self.evaluate(expr.left)
            right = self.evaluate(expr.right)
            if expr.op is ArithmeticOp.ADD:
                out = left + right
            elif expr.op is ArithmeticOp.SUB:
                out = left - right
            else:
                out = left * right
            if isinstance(out, np.ndarray) and out.ndim:
                self.intermediate_bytes += int(out.nbytes)
            return out
        raise ExecutionError(f"cannot evaluate {expr!r} late")


def _provider_columns(
    layouts: Sequence[Layout], attrs: Sequence[str]
) -> Dict[str, np.ndarray]:
    """Full column per attribute, each from its narrowest provider."""
    columns: Dict[str, np.ndarray] = {}
    for attr in attrs:
        candidates = [l for l in layouts if attr in l.attr_set]
        if not candidates:
            raise ExecutionError(f"attribute {attr!r} not stored")
        columns[attr] = min(candidates, key=lambda l: l.width).column(attr)
    return columns


def run_late_interpreted(
    info: QueryInfo, layouts: Sequence[Layout], num_rows: int
) -> Tuple[QueryResult, int, int]:
    """Execute with interpreted late materialization.

    Returns the result, the total bytes of intermediates (selection
    vectors, gathered columns, per-op arrays) materialized, and the
    number of tuples that qualified the predicate.
    """
    columns = _provider_columns(layouts, info.all_attrs)
    selection = SelectionVector.all_rows(num_rows)
    intermediate = 0

    # Phase 1: predicate conjuncts refine the selection vector in turn.
    for conjunct in info.query.predicates:
        gathered = {
            name: selection.gather(columns[name])
            for name in conjunct.columns()
        }
        mask = evaluate_predicate(conjunct, gathered.__getitem__)
        selection = selection.refine(mask)

    # Phase 2: gather SELECT-clause columns at the qualifying positions.
    select_values = {
        name: selection.gather(columns[name]) for name in info.select_attrs
    }
    evaluator = _MaterializingEvaluator(select_values)

    if info.is_aggregation:
        aggregates = collect_aggregates(info.query.select)
        agg_values: Dict[Aggregate, float] = {}
        count = selection.count
        for agg in aggregates:
            state = AggregateAccumulator(agg.func)
            if agg.arg is None:
                state.update(None, count)
            else:
                values = evaluator.evaluate(agg.arg)
                state.update(np.atleast_1d(values), count)
            agg_values[agg] = state.finalize()
        names = [out.name for out in info.query.select]
        values = [
            finalize_output(out.expr, agg_values)
            for out in info.query.select
        ]
        result = QueryResult.scalar_row(names, values)
    else:
        out_dtype = projection_dtype(info)
        block = np.empty(
            (selection.count, len(info.query.select)), dtype=out_dtype
        )
        for position, out in enumerate(info.query.select):
            block[:, position] = evaluator.evaluate(out.expr)
        names = [out.name for out in info.query.select]
        result = QueryResult(names, block)
        intermediate += int(block.nbytes)

    intermediate += selection.materialized_bytes + evaluator.intermediate_bytes
    return result, intermediate, selection.count
