"""Aggregation operator: streams chunks into aggregate accumulators."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ...sql.expressions import Aggregate as AggregateExpr
from ...sql.query import OutputColumn
from ..evaluator import (
    AggregateAccumulator,
    collect_aggregates,
    evaluate_value,
    finalize_output,
)
from ..result import QueryResult
from .base import Chunk, Operator


class Aggregate(Operator):
    """Consumes its child entirely and produces the one-row result.

    Aggregate arguments are evaluated per chunk with the interpreted
    evaluator, folded into streaming accumulators, and the output
    expressions (which may combine several aggregates arithmetically)
    are finalized at the end.
    """

    def __init__(
        self, child: Operator, outputs: Sequence[OutputColumn]
    ) -> None:
        self._child = child
        self._outputs = tuple(outputs)
        self._aggregates = collect_aggregates(self._outputs)
        self._accumulators: Dict[AggregateExpr, AggregateAccumulator] = {}
        self._done = False
        #: Tuples that reached the aggregate (i.e. qualified the filter
        #: below, if any) — the executor reports this as the qualifying
        #: row count so selectivity feedback also works for aggregations.
        self.rows_seen = 0

    def open(self) -> None:
        self._child.open()
        self._accumulators = {
            agg: AggregateAccumulator(agg.func) for agg in self._aggregates
        }
        self._done = False
        self.rows_seen = 0

    def next_chunk(self) -> Optional[Chunk]:
        if self._done:
            return None
        while True:
            chunk = self._child.next_chunk()
            if chunk is None:
                break
            self.rows_seen += chunk.num_rows
            for agg, state in self._accumulators.items():
                if agg.arg is None:  # COUNT(*)
                    state.update(None, chunk.num_rows)
                else:
                    values = evaluate_value(agg.arg, chunk.col)
                    state.update(values, chunk.num_rows)
        self._done = True
        return Chunk(num_rows=1, columns={})

    def result(self) -> QueryResult:
        """Finalize into the one-row query result (after exhaustion)."""
        agg_values = {
            agg: state.finalize()
            for agg, state in self._accumulators.items()
        }
        values = [
            finalize_output(out.expr, agg_values) for out in self._outputs
        ]
        names = [out.name for out in self._outputs]
        return QueryResult.scalar_row(names, values)

    def close(self) -> None:
        self._child.close()
