"""Generic volcano-style physical operators.

These are the *interpreted* operators: each implements ``open`` /
``next_chunk`` / ``close`` and passes vectors (chunks of columns) up the
pipeline, evaluating expressions with the tree-walking evaluator.  They
are the baseline that on-the-fly generated code beats in Fig. 14, and
the semantic reference every generated kernel is tested against.
"""

from .base import Chunk, Operator
from .scan import LayoutScan
from .filter import Filter
from .project import Project
from .aggregate import Aggregate as AggregateOperator

__all__ = [
    "Chunk",
    "Operator",
    "LayoutScan",
    "Filter",
    "Project",
    "AggregateOperator",
]
