"""Filter operator: interpreted predicate evaluation with compaction."""

from __future__ import annotations

from typing import Optional

from ...sql.expressions import Expr
from ..evaluator import evaluate_predicate
from .base import Chunk, Operator


class Filter(Operator):
    """Keeps the tuples of each chunk that satisfy the predicate.

    This is the pushed-down selection of the volcano pipeline (paper
    section 3.3, row-major strategy): the predicate is evaluated on the
    incoming vector and qualifying tuples are compacted before being
    passed upstream, so later operators only touch qualifying data.
    """

    def __init__(self, child: Operator, predicate: Expr) -> None:
        self._child = child
        self._predicate = predicate

    def open(self) -> None:
        self._child.open()

    def next_chunk(self) -> Optional[Chunk]:
        while True:
            chunk = self._child.next_chunk()
            if chunk is None:
                return None
            mask = evaluate_predicate(self._predicate, chunk.col)
            kept = int(mask.sum())
            if kept == 0:
                continue  # fully filtered vector; pull the next one
            if kept == chunk.num_rows:
                return chunk  # nothing filtered; avoid the copy
            compacted = {
                name: array[mask] for name, array in chunk.columns.items()
            }
            return Chunk(num_rows=kept, columns=compacted)

    def close(self) -> None:
        self._child.close()
