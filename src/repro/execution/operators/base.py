"""Operator protocol and the chunk format flowing between operators."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ...errors import ExecutionError


@dataclass
class Chunk:
    """A vector of tuples represented as named column slices.

    ``columns`` maps attribute name to a 1-D array; all arrays share
    ``num_rows`` entries.  Chunks own no schema: an operator only sees
    the columns its producer chose to pass on.
    """

    num_rows: int
    columns: Dict[str, np.ndarray] = field(default_factory=dict)

    def col(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise ExecutionError(
                f"chunk has no column {name!r}; has "
                f"{sorted(self.columns)}"
            ) from None

    def validate(self) -> None:
        """Check the row-count consistency invariant (used in tests)."""
        for name, array in self.columns.items():
            if len(array) != self.num_rows:
                raise ExecutionError(
                    f"column {name!r} has {len(array)} rows, chunk says "
                    f"{self.num_rows}"
                )


class Operator(abc.ABC):
    """Volcano-style operator: a pull-based iterator of chunks."""

    @abc.abstractmethod
    def open(self) -> None:
        """Prepare for iteration (resets any prior state)."""

    @abc.abstractmethod
    def next_chunk(self) -> Optional[Chunk]:
        """The next chunk, or ``None`` when exhausted."""

    def close(self) -> None:
        """Release resources (default: nothing to do)."""

    def __iter__(self):
        self.open()
        try:
            while True:
                chunk = self.next_chunk()
                if chunk is None:
                    return
                yield chunk
        finally:
            self.close()
