"""Projection operator: computes output expressions into row-major blocks."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ...sql.query import OutputColumn
from ..evaluator import evaluate_value
from .base import Chunk, Operator


class Project(Operator):
    """Evaluates the SELECT list and emits row-major output blocks.

    Every strategy in H2O materializes its final output in contiguous
    row-major blocks (paper section 3.3); the produced chunk carries a
    single 2-D ``__output__`` column holding that block.
    """

    OUTPUT_KEY = "__output__"

    def __init__(
        self,
        child: Operator,
        outputs: Sequence[OutputColumn],
        dtype: np.dtype = np.dtype(np.float64),
    ) -> None:
        self._child = child
        self._outputs = tuple(outputs)
        self._dtype = dtype

    def open(self) -> None:
        self._child.open()

    def next_chunk(self) -> Optional[Chunk]:
        chunk = self._child.next_chunk()
        if chunk is None:
            return None
        block = np.empty(
            (chunk.num_rows, len(self._outputs)), dtype=self._dtype
        )
        for position, out in enumerate(self._outputs):
            block[:, position] = evaluate_value(out.expr, chunk.col)
        return Chunk(
            num_rows=chunk.num_rows, columns={self.OUTPUT_KEY: block}
        )

    def close(self) -> None:
        self._child.close()
