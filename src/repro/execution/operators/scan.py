"""Scan operator: reads covering layouts block by block."""

from __future__ import annotations

from typing import Optional, Sequence

from ...storage.layout import Layout
from ..vector import BlockCursor
from .base import Chunk, Operator


class LayoutScan(Operator):
    """Produces chunks of the requested attributes from covering layouts.

    The scan pulls each attribute from the narrowest layout that stores
    it (delegated to :class:`~repro.execution.vector.BlockCursor`), so a
    single scan can read several coexisting groups in lockstep — the
    multi-group access pattern of Fig. 12.
    """

    def __init__(
        self,
        layouts: Sequence[Layout],
        attrs: Sequence[str],
        block_rows: int,
    ) -> None:
        self._cursor = BlockCursor(layouts, attrs, block_rows)
        self._attrs = tuple(attrs)
        self._iterator = None

    def open(self) -> None:
        self._iterator = iter(self._cursor)

    def next_chunk(self) -> Optional[Chunk]:
        assert self._iterator is not None, "open() was not called"
        block = next(self._iterator, None)
        if block is None:
            return None
        columns = {name: block.col(name) for name in self._attrs}
        return Chunk(num_rows=block.num_rows, columns=columns)

    def close(self) -> None:
        self._iterator = None
