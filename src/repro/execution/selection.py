"""Selection vectors: materialized lists of qualifying tuple positions.

Column-store style execution (paper section 2.1, Fig. 6) evaluates each
predicate into a vector of matching positions, refines it predicate by
predicate, and finally uses it to fetch the SELECT-clause values.  The
materialization cost of these vectors is exactly the overhead the fused
strategy avoids — so this class also tracks how many bytes it has
materialized, which feeds the cost model's intermediate-result term.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ExecutionError


class SelectionVector:
    """Positions of qualifying tuples, in ascending order.

    ``positions is None`` encodes the virgin state "all N rows qualify"
    without materializing anything, so a query with no WHERE clause pays
    no selection-vector cost.
    """

    __slots__ = ("_num_rows", "_positions", "materialized_bytes")

    def __init__(
        self, num_rows: int, positions: Optional[np.ndarray] = None
    ) -> None:
        if num_rows < 0:
            raise ExecutionError(f"negative row count: {num_rows}")
        self._num_rows = num_rows
        if positions is not None:
            positions = np.asarray(positions, dtype=np.intp)
            if positions.ndim != 1:
                raise ExecutionError("positions must be 1-D")
        self._positions = positions
        self.materialized_bytes = (
            0 if positions is None else int(positions.nbytes)
        )

    # Constructors ---------------------------------------------------------

    @classmethod
    def all_rows(cls, num_rows: int) -> "SelectionVector":
        """The virgin selection: every row qualifies, nothing materialized."""
        return cls(num_rows, None)

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "SelectionVector":
        """Materialize positions from a boolean mask over all rows."""
        if mask.dtype != np.bool_:
            raise ExecutionError(f"mask must be boolean, got {mask.dtype}")
        return cls(len(mask), np.flatnonzero(mask))

    # State ------------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        """Total rows of the underlying relation."""
        return self._num_rows

    @property
    def is_all(self) -> bool:
        """Whether this still selects every row (nothing materialized)."""
        return self._positions is None

    @property
    def count(self) -> int:
        """Number of qualifying tuples."""
        if self._positions is None:
            return self._num_rows
        return int(len(self._positions))

    @property
    def selectivity(self) -> float:
        """Qualifying fraction in [0, 1] (1.0 for an empty relation)."""
        if self._num_rows == 0:
            return 1.0
        return self.count / self._num_rows

    @property
    def positions(self) -> np.ndarray:
        """Materialized qualifying positions (forces materialization)."""
        if self._positions is None:
            self._positions = np.arange(self._num_rows, dtype=np.intp)
            self.materialized_bytes += int(self._positions.nbytes)
        return self._positions

    # Operations ---------------------------------------------------------------

    def refine(self, mask: np.ndarray) -> "SelectionVector":
        """New selection keeping only currently selected rows where
        ``mask`` (aligned with the *current* selection) is True."""
        if len(mask) != self.count:
            raise ExecutionError(
                f"refinement mask has {len(mask)} entries, selection has "
                f"{self.count}"
            )
        if self._positions is None:
            refined = SelectionVector.from_mask(mask)
        else:
            refined = SelectionVector(
                self._num_rows, self._positions[mask]
            )
        refined.materialized_bytes += self.materialized_bytes
        return refined

    def gather(self, column: np.ndarray) -> np.ndarray:
        """Fetch the selected values of ``column`` (an intermediate).

        For the virgin selection this is the column itself (no copy);
        otherwise a new contiguous intermediate array is materialized,
        as a column-store must (paper section 2.1).
        """
        if len(column) != self._num_rows:
            raise ExecutionError(
                f"column has {len(column)} rows, selection expects "
                f"{self._num_rows}"
            )
        if self._positions is None:
            return column
        gathered = column[self._positions]
        self.materialized_bytes += int(gathered.nbytes)
        return gathered

    def gather_rows(self, matrix: np.ndarray) -> np.ndarray:
        """Fetch the selected rows of a (rows × width) group block."""
        if matrix.shape[0] != self._num_rows:
            raise ExecutionError(
                f"matrix has {matrix.shape[0]} rows, selection expects "
                f"{self._num_rows}"
            )
        if self._positions is None:
            return matrix
        gathered = matrix[self._positions]
        self.materialized_bytes += int(gathered.nbytes)
        return gathered

    def __repr__(self) -> str:
        state = "ALL" if self.is_all else f"{self.count}"
        return f"SelectionVector({state}/{self._num_rows})"
