"""Access plans: which layouts to read and with which strategy.

H2O evaluates alternative access plans for the available data layouts
(paper section 3, architecture; section 3.5 cost model) and picks the
cheapest.  :func:`enumerate_plans` produces the candidate
(layout-cover, strategy) pairs for one query; the engine costs them with
:mod:`repro.core.cost_model`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from typing import TYPE_CHECKING, Union

from ..errors import ExecutionError
from ..sql.analyzer import QueryInfo
from ..storage.layout import Layout, LayoutKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..storage.relation import LayoutSnapshot, Table


class ExecutionStrategy(enum.Enum):
    """The two execution-strategy families (paper section 3.3)."""

    #: Volcano-style single pass with predicate push-down; the natural
    #: strategy for row-major and group layouts (Fig. 5).
    FUSED = "fused"
    #: Column-store style: selection vectors + late materialization of
    #: intermediates (Fig. 6).
    LATE = "late"


#: A fused (volcano-style) operator processes whole tuples per vector;
#: that only makes sense over tuple-bearing layouts.  Single columns are
#: processed column-at-a-time with late materialization (paper section
#: 3.3 binds strategies to layout kinds), and stitching too many
#: independent streams into one fused loop stops resembling a tuple scan
#: (Fig. 12 fuses up to 5 groups).
MAX_FUSED_STREAMS = 8


#: A fused plan tolerates a couple of stray single-column streams next
#: to its tuple-bearing groups (a query slightly wider than its hot
#: group); beyond that the cover is column-major in character.
MAX_FUSED_SINGLES = 2


def fused_allowed(layouts: Sequence[Layout]) -> bool:
    """Whether a fused single-pass scan is a legal strategy for a cover.

    True when the cover is anchored by at least one (multi-attribute)
    group or row layout, carries at most :data:`MAX_FUSED_SINGLES`
    single columns, and the number of parallel streams stays small.
    Covers that are mostly single columns execute column-at-a-time
    (LATE), as a column-store does.
    """
    if len(layouts) > MAX_FUSED_STREAMS:
        return False
    singles = sum(1 for layout in layouts if layout.width == 1)
    if singles > MAX_FUSED_SINGLES:
        return False
    return singles < len(layouts)  # at least one tuple-bearing layout


@dataclass(frozen=True)
class AccessPlan:
    """One concrete way to execute a query over existing layouts."""

    strategy: ExecutionStrategy
    layouts: Tuple[Layout, ...]

    def describe(self) -> str:
        parts = ", ".join(layout.describe() for layout in self.layouts)
        return f"{self.strategy.value}({parts})"

    @property
    def layout_key(self) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
        """Hashable identity of the layout combination.

        Kind rides along with the attr tuples so an encoded provider is
        never deduplicated against the plain column storing the same
        attribute — they are different physical accesses with different
        costs.
        """
        return tuple(
            (layout.kind.value, layout.attrs) for layout in self.layouts
        )


def _encoded_where_cover(
    table: "Union[Table, LayoutSnapshot]",
    info: QueryInfo,
    cover: Sequence[Layout],
):
    """``cover`` with WHERE-attribute singles swapped for encoded replicas.

    Only width-1 providers whose attribute appears in the predicate are
    substituted — encoded layouts shine exactly there (code-space
    filtering); SELECT-side reads would decode every row anyway.
    Returns None when nothing substitutes.
    """
    if not info.has_predicate:
        return None
    encoded = {
        layout.attrs[0]: layout
        for layout in table.layouts
        if layout.kind is LayoutKind.ENCODED
    }
    if not encoded:
        return None
    changed = False
    substituted: List[Layout] = []
    for layout in cover:
        attr = layout.attrs[0] if layout.width == 1 else None
        if (
            attr is not None
            and attr in info.where_attrs
            and attr not in info.select_attrs
            and attr in encoded
            and layout.kind is not LayoutKind.ENCODED
        ):
            substituted.append(encoded[attr])
            changed = True
        else:
            substituted.append(layout)
    if not changed:
        return None
    return tuple(dict.fromkeys(substituted))


def enumerate_plans(
    table: "Union[Table, LayoutSnapshot]", info: QueryInfo
) -> List[AccessPlan]:
    """All distinct candidate plans for ``info`` over ``table``.

    ``table`` may be a live :class:`~repro.storage.relation.Table` or a
    pinned :class:`~repro.storage.relation.LayoutSnapshot` — the engine
    plans against snapshots so a concurrent reorganization cannot
    change the covers mid-enumeration.

    Candidates come from two covering choices — one greedy cover of all
    accessed attributes, and (when a predicate exists) the union of
    separate covers for the WHERE and SELECT attribute sets, which lets
    a predicate group drive a selection vector while a different group
    serves the select clause (the two-group plan of Fig. 6) — crossed
    with the execution strategies legal for each cover (see
    :func:`fused_allowed`).
    """
    if not info.all_attrs:
        # e.g. SELECT count(*) FROM r — any layout answers it from its
        # row count alone; the executor short-circuits such plans.
        return [
            AccessPlan(
                strategy=ExecutionStrategy.FUSED,
                layouts=(table.layouts[0],),
            )
        ]
    covers = []
    cover_all = table.covering_layouts(info.all_attrs)
    covers.append(cover_all)
    covers.append(table.narrowest_cover(info.all_attrs))
    if info.has_predicate and info.select_attrs:
        split = tuple(
            dict.fromkeys(
                table.covering_layouts(info.where_attrs)
                + table.covering_layouts(info.select_attrs)
            )
        )
        covers.append(split)
    # Encoded WHERE variants: for every cover, substitute encoded
    # replicas for the single-column providers of predicate attributes
    # (the kernels then filter on 1–4-byte codes and decode only
    # qualifying rows).  The plain covers stay in the pool; the cost
    # model arbitrates.
    for cover in list(covers):
        variant = _encoded_where_cover(table, info, cover)
        if variant is not None:
            covers.append(variant)

    plans: List[AccessPlan] = []
    seen = set()
    for cover in covers:
        strategies = [ExecutionStrategy.LATE]
        if fused_allowed(cover):
            strategies.insert(0, ExecutionStrategy.FUSED)
        for strategy in strategies:
            plan = AccessPlan(strategy=strategy, layouts=tuple(cover))
            key = (strategy, plan.layout_key)
            if key not in seen:
                seen.add(key)
                plans.append(plan)
    return plans
