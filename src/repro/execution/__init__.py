"""Query execution: strategies, operators, results.

Two execution strategies coexist, mirroring the paper (section 3.3):

- **Fused scan** (:mod:`repro.execution.volcano`): volcano-style single
  pass with predicate push-down — the natural strategy for row-major and
  group layouts (Fig. 5).
- **Late materialization** (:mod:`repro.execution.vectorized`):
  column-store style — predicates produce selection vectors, qualifying
  values are gathered into intermediate columns, arithmetic materializes
  one intermediate per operator (Fig. 6).

Both strategies exist in two forms: the *interpreted* form in this
package (the "generic operator" of Fig. 14, paying tree-walking dispatch
per vector) and the *generated* form produced by :mod:`repro.codegen`.
Either form, over any layout combination, must return identical results;
the integration tests assert exactly that.
"""

from .result import QueryResult
from .selection import SelectionVector
from .vector import BlockCursor
from .strategies import AccessPlan, ExecutionStrategy, enumerate_plans
from .executor import ExecStats, Executor

__all__ = [
    "QueryResult",
    "SelectionVector",
    "BlockCursor",
    "AccessPlan",
    "ExecutionStrategy",
    "enumerate_plans",
    "Executor",
    "ExecStats",
]
