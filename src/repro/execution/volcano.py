"""Interpreted fused-scan execution (volcano pipeline).

Builds the scan → filter → project/aggregate pipeline from the generic
operators and runs it to completion.  This is the row-store / group
execution strategy in its *generic* form: correct for any layout
combination, but paying interpretation overhead per vector — the cost
the generated kernels of :mod:`repro.codegen` eliminate (Fig. 14).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..sql.analyzer import QueryInfo
from ..sql.types import DataType
from ..storage.layout import Layout
from .operators import AggregateOperator, Filter, LayoutScan, Project
from .operators.base import Operator
from .result import QueryResult


def projection_dtype(info: QueryInfo) -> np.dtype:
    """Output dtype for a projection: int64 unless any output is float."""
    if any(t is DataType.FLOAT64 for t in info.output_types):
        return np.dtype(np.float64)
    return np.dtype(np.int64)


def build_pipeline(
    info: QueryInfo, layouts: Sequence[Layout], block_rows: int
) -> Operator:
    """Assemble the operator tree for ``info`` over ``layouts``."""
    node: Operator = LayoutScan(layouts, info.all_attrs, block_rows)
    if info.has_predicate:
        node = Filter(node, info.query.where)
    if info.is_aggregation:
        node = AggregateOperator(node, info.query.select)
    else:
        node = Project(node, info.query.select, projection_dtype(info))
    return node


def run_fused_interpreted(
    info: QueryInfo, layouts: Sequence[Layout], block_rows: int
) -> Tuple[QueryResult, int, int]:
    """Execute with the interpreted volcano pipeline.

    Returns the result, the bytes of intermediates materialized (filter
    compaction buffers) and the number of qualifying tuples — the rows
    that survived the predicate, which feeds the engine's selectivity
    feedback even for aggregations that emit a single row.
    """
    root = build_pipeline(info, layouts, block_rows)
    if isinstance(root, AggregateOperator):
        for _ in root:
            pass
        return root.result(), 0, root.rows_seen

    blocks = []
    intermediate = 0
    root.open()
    try:
        while True:
            chunk = root.next_chunk()
            if chunk is None:
                break
            block = chunk.col(Project.OUTPUT_KEY)
            blocks.append(block)
            intermediate += int(block.nbytes)
    finally:
        root.close()
    names = [out.name for out in info.query.select]
    result = QueryResult.from_blocks(names, blocks, projection_dtype(info))
    return result, intermediate, result.num_rows
