"""Morsel-driven scan execution with zone-map pruning.

A *morsel* is an aligned ``(lo, hi)`` row range of
``EngineConfig.morsel_rows`` rows.  This module turns one access plan
into per-morsel work items, prunes morsels that zone maps prove empty,
dispatches the survivors over the shared :class:`ScanPool`, and combines
the per-morsel partial results **in morsel-index order** — regardless of
thread completion order — so parallel answers are bit-identical to
serial execution.

Both execution flavours run per-morsel:

- *generated*: the compiled kernel is invoked with its ``lo``/``hi``
  slice parameters (``partial=True`` for aggregations), so one cached
  operator serves the serial and the parallel path alike;
- *interpreted*: the generic evaluator runs on sliced column views with
  one accumulator set per morsel.

Pruning is exact — a pruned morsel provably holds zero qualifying rows
(see :mod:`repro.storage.zonemap`) — so the sum of per-morsel qualifying
counts equals the full-scan qualifying count.  That keeps the engine's
selectivity feedback (qualifying / num_rows) unskewed by pruning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..config import EngineConfig
from ..sql.analyzer import QueryInfo
from ..sql.expressions import AggregateFunc
from ..storage.layout import Layout, flatten_kernel_buffers
from ..storage.zonemap import (
    conjunct_bounds,
    ensure_attr_stats,
    morsel_ranges,
    num_morsels_for,
    prune_mask,
)
from .evaluator import (
    AggregateAccumulator,
    collect_aggregates,
    evaluate_predicate,
    evaluate_value,
    finalize_output,
)
from .parallel import ScanPool
from .result import QueryResult
from .volcano import projection_dtype

#: Optional per-morsel cancellation hook (the engine passes its deadline
#: check, which raises QueryTimeoutError when the budget is exhausted).
DeadlineCheck = Optional[Callable[[], None]]


@dataclass(frozen=True)
class MorselSettings:
    """The execution-relevant subset of the parallel-scan knobs."""

    parallel: bool
    zone_maps: bool
    morsel_rows: int
    threshold_rows: int
    max_threads: int  # per-query thread cap; 0 = pool maximum

    @classmethod
    def from_config(cls, config: EngineConfig) -> "MorselSettings":
        return cls(
            parallel=config.parallel_scans,
            zone_maps=config.zone_maps,
            morsel_rows=config.morsel_rows,
            threshold_rows=config.parallel_threshold_rows,
            max_threads=config.max_scan_threads,
        )


@dataclass
class MorselOutcome:
    """Result + telemetry of one morsel-driven execution."""

    result: QueryResult
    qualifying: Optional[int]
    morsels_total: int
    morsels_pruned: int
    threads_used: int
    parallel: bool

    def fill_extras(self, extras: dict) -> None:
        extras["morsels_total"] = self.morsels_total
        extras["morsels_pruned"] = self.morsels_pruned
        extras["scan_threads_used"] = self.threads_used
        extras["parallel"] = self.parallel


@dataclass(frozen=True)
class _MorselPlan:
    """The dispatch decision for one query over one layout set."""

    ranges: List[Tuple[int, int]]  # surviving morsels, index order
    morsels_total: int
    morsels_pruned: int
    want_threads: int  # 1 = morsel-serial (pruning only)


def keep_mask_for(
    info: QueryInfo,
    layouts: Sequence[Layout],
    num_rows: int,
    morsel_rows: int,
) -> Optional[np.ndarray]:
    """Per-morsel keep mask from zone maps, or None when nothing prunes.

    Stats are resolved per predicate attribute from its narrowest
    providing layout (all layouts are row-aligned, so any provider's
    stats are equally valid) and built lazily on first consultation.
    """
    if not info.has_predicate:
        return None
    predicates = info.query.predicates
    if not any(conjunct_bounds(c) is not None for c in predicates):
        return None
    num = num_morsels_for(num_rows, morsel_rows)
    if num == 0:
        return None

    def stats_for(attr: str):
        candidates = [lay for lay in layouts if attr in lay.attr_set]
        if not candidates:
            return None
        layout = min(candidates, key=lambda lay: lay.width)
        return ensure_attr_stats(layout, attr, morsel_rows)

    return prune_mask(num, predicates, stats_for)


def plan_morsels(
    info: QueryInfo,
    layouts: Sequence[Layout],
    num_rows: int,
    settings: MorselSettings,
    pool: ScanPool,
) -> Optional[_MorselPlan]:
    """Decide whether this query runs morsel-driven, and on how much.

    Returns None when plain serial execution is both correct and
    cheapest: morsels add value only via parallelism (above the row
    threshold) or via pruning (zone maps removed at least one morsel).
    """
    if not (settings.parallel or settings.zone_maps):
        return None
    if not info.all_attrs or num_rows == 0:
        return None
    total = num_morsels_for(num_rows, settings.morsel_rows)
    keep = (
        keep_mask_for(info, layouts, num_rows, settings.morsel_rows)
        if settings.zone_maps
        else None
    )
    ranges = morsel_ranges(num_rows, settings.morsel_rows)
    if keep is not None:
        surviving = [ranges[i] for i in np.flatnonzero(keep)]
    else:
        surviving = ranges
    pruned = total - len(surviving)
    parallel_eligible = (
        settings.parallel
        and num_rows >= settings.threshold_rows
        and len(surviving) > 1
        and pool.max_threads > 1
    )
    if not parallel_eligible and pruned == 0:
        return None  # serial whole-table scan is strictly cheaper
    want = 1
    if parallel_eligible:
        cap = settings.max_threads or pool.max_threads
        want = max(1, min(cap, len(surviving)))
    return _MorselPlan(
        ranges=surviving,
        morsels_total=total,
        morsels_pruned=pruned,
        want_threads=want,
    )


def _dispatch(
    mp: _MorselPlan,
    pool: ScanPool,
    fn: Callable[[int], None],
) -> Tuple[int, bool]:
    """Run ``fn`` over the surviving morsel indices; returns
    ``(threads_used, went_parallel)``."""
    count = len(mp.ranges)
    if mp.want_threads <= 1:
        for index in range(count):
            fn(index)
        return 1, False
    with pool.acquire(mp.want_threads) as grant:
        used = grant.map_indexed(count, fn)
    return used, used > 1


# Generated (compiled-kernel) path -------------------------------------


def run_generated_morsels(
    kernel,
    params: Tuple[object, ...],
    info: QueryInfo,
    layouts: Sequence[Layout],
    mp: _MorselPlan,
    pool: ScanPool,
    deadline_check: DeadlineCheck = None,
) -> MorselOutcome:
    """Execute a compiled kernel morsel-at-a-time over ``layouts``."""
    buffers = flatten_kernel_buffers(layouts)
    names = [out.name for out in info.query.select]
    count = len(mp.ranges)
    results: List[object] = [None] * count
    if info.is_aggregation:

        def run_agg(index: int) -> None:
            if deadline_check is not None:
                deadline_check()
            lo, hi = mp.ranges[index]
            results[index] = kernel(buffers, params, lo, hi, True)

        used, went_parallel = _dispatch(mp, pool, run_agg)
        result, qualifying = _combine_generated_aggregates(
            info, names, results
        )
    else:

        def run_proj(index: int) -> None:
            if deadline_check is not None:
                deadline_check()
            lo, hi = mp.ranges[index]
            results[index] = kernel(buffers, params, lo, hi)

        used, went_parallel = _dispatch(mp, pool, run_proj)
        blocks = [block for block in results if block.shape[0]]
        result = QueryResult.from_blocks(
            names, blocks, projection_dtype(info)
        )
        qualifying = result.num_rows
    return MorselOutcome(
        result=result,
        qualifying=qualifying,
        morsels_total=mp.morsels_total,
        morsels_pruned=mp.morsels_pruned,
        threads_used=used,
        parallel=went_parallel,
    )


def combine_partial_aggregates(
    aggregates: Sequence[object], payloads: Sequence[object]
) -> Tuple[dict, float]:
    """Fold ``(count, states)`` partial payloads in payload-index order.

    This is **the** combine contract shared by every partial-aggregation
    producer: per-morsel kernels (this module), and per-shard engines
    (:mod:`repro.sharding`).  State contract per slot (see
    codegen/templates.py): COUNT → None, SUM/AVG → running float sum,
    MIN/MAX → float or None (None = no qualifying rows in that
    partial).  Empty partials contribute nothing — exactly what
    executing them would have contributed.  Folding happens strictly in
    index order (morsel index, shard index), which is what makes
    parallel and distributed answers bit-identical to serial execution.

    Returns ``(agg_values, count)`` where ``agg_values`` maps each
    aggregate node to its finalized value (COUNT → count, AVG →
    sum/count or NaN, MIN/MAX → value or NaN).
    """
    cnt = 0.0
    sums = [0.0] * len(aggregates)
    mins: List[Optional[float]] = [None] * len(aggregates)
    maxs: List[Optional[float]] = [None] * len(aggregates)
    for payload in payloads:
        part_cnt, states = payload
        cnt += part_cnt
        for i, agg in enumerate(aggregates):
            state = states[i]
            if agg.func in (AggregateFunc.SUM, AggregateFunc.AVG):
                sums[i] += state
            elif agg.func is AggregateFunc.MIN and state is not None:
                mins[i] = state if mins[i] is None else min(mins[i], state)
            elif agg.func is AggregateFunc.MAX and state is not None:
                maxs[i] = state if maxs[i] is None else max(maxs[i], state)
    agg_values = {}
    for i, agg in enumerate(aggregates):
        if agg.func is AggregateFunc.COUNT:
            agg_values[agg] = float(cnt)
        elif agg.func is AggregateFunc.SUM:
            agg_values[agg] = sums[i]
        elif agg.func is AggregateFunc.AVG:
            agg_values[agg] = sums[i] / cnt if cnt else float("nan")
        elif agg.func is AggregateFunc.MIN:
            agg_values[agg] = (
                mins[i] if mins[i] is not None else float("nan")
            )
        else:
            agg_values[agg] = (
                maxs[i] if maxs[i] is not None else float("nan")
            )
    return agg_values, cnt


def _combine_generated_aggregates(
    info: QueryInfo, names: List[str], payloads: Sequence[object]
) -> Tuple[QueryResult, int]:
    """Fold per-morsel ``(count, states)`` payloads in morsel order.

    Pruned morsels contribute nothing — exactly what executing them
    would have contributed, since they hold zero qualifying rows.
    """
    aggregates = collect_aggregates(info.query.select)
    agg_values, cnt = combine_partial_aggregates(aggregates, payloads)
    values = [
        float(finalize_output(out.expr, agg_values))
        for out in info.query.select
    ]
    return QueryResult.scalar_row(names, values), int(cnt)


# Interpreted path -----------------------------------------------------


def _narrowest_columns(
    layouts: Sequence[Layout], attrs: Sequence[str]
) -> dict:
    columns = {}
    for attr in attrs:
        candidates = [lay for lay in layouts if attr in lay.attr_set]
        provider = min(candidates, key=lambda lay: lay.width)
        columns[attr] = provider.column(attr)
    return columns


def run_interpreted_morsels(
    info: QueryInfo,
    layouts: Sequence[Layout],
    mp: _MorselPlan,
    pool: ScanPool,
    deadline_check: DeadlineCheck = None,
) -> MorselOutcome:
    """Execute the generic evaluator morsel-at-a-time over ``layouts``."""
    columns = _narrowest_columns(layouts, info.all_attrs)
    names = [out.name for out in info.query.select]
    aggregates = (
        collect_aggregates(info.query.select) if info.is_aggregation else ()
    )
    out_dtype = None if info.is_aggregation else projection_dtype(info)
    num_outputs = len(info.query.select)
    count = len(mp.ranges)
    results: List[object] = [None] * count

    def run_one(index: int) -> None:
        if deadline_check is not None:
            deadline_check()
        lo, hi = mp.ranges[index]

        def resolve(name: str) -> np.ndarray:
            return columns[name][lo:hi]

        if info.has_predicate:
            mask = evaluate_predicate(info.query.where, resolve)
            kept = int(np.count_nonzero(mask))

            def resolve_rows(name: str) -> np.ndarray:
                return resolve(name)[mask]

        else:
            kept = hi - lo
            resolve_rows = resolve

        if info.is_aggregation:
            states = tuple(
                AggregateAccumulator(agg.func) for agg in aggregates
            )
            if kept:
                for agg, state in zip(aggregates, states):
                    if agg.arg is None:
                        state.update(None, kept)
                    else:
                        state.update(
                            evaluate_value(agg.arg, resolve_rows), kept
                        )
            results[index] = (kept, states)
        else:
            if kept == 0:
                results[index] = None
                return
            block = np.empty((kept, num_outputs), dtype=out_dtype)
            for j, out in enumerate(info.query.select):
                block[:, j] = evaluate_value(out.expr, resolve_rows)
            results[index] = block

    used, went_parallel = _dispatch(mp, pool, run_one)

    if info.is_aggregation:
        merged = [AggregateAccumulator(agg.func) for agg in aggregates]
        qualifying = 0
        for payload in results:
            kept, states = payload
            qualifying += kept
            for master, part in zip(merged, states):
                master.merge(part)
        agg_values = {
            agg: state.finalize()
            for agg, state in zip(aggregates, merged)
        }
        values = [
            finalize_output(out.expr, agg_values)
            for out in info.query.select
        ]
        result = QueryResult.scalar_row(names, values)
    else:
        blocks = [block for block in results if block is not None]
        result = QueryResult.from_blocks(names, blocks, out_dtype)
        qualifying = result.num_rows
    return MorselOutcome(
        result=result,
        qualifying=qualifying,
        morsels_total=mp.morsels_total,
        morsels_pruned=mp.morsels_pruned,
        threads_used=used,
        parallel=went_parallel,
    )
