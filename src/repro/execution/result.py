"""Query results.

All execution strategies materialize their output in row-major,
contiguous memory (paper section 3.3, last paragraph): a projection
result is one (rows × output-columns) array; an aggregation result is a
single row of scalars.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionError


class QueryResult:
    """Row-major result of one query."""

    def __init__(
        self,
        column_names: Sequence[str],
        data: np.ndarray,
    ) -> None:
        names = tuple(column_names)
        if data.ndim != 2:
            raise ExecutionError(
                f"result data must be 2-D, got shape {data.shape}"
            )
        if data.shape[1] != len(names):
            raise ExecutionError(
                f"result has {len(names)} columns but data has "
                f"{data.shape[1]}"
            )
        self._names = names
        self._data = data

    # Constructors ---------------------------------------------------------

    @classmethod
    def scalar_row(
        cls, column_names: Sequence[str], values: Sequence[float]
    ) -> "QueryResult":
        """An aggregation result: exactly one row."""
        data = np.array([list(values)], dtype=np.float64)
        return cls(column_names, data)

    @classmethod
    def from_blocks(
        cls,
        column_names: Sequence[str],
        blocks: Sequence[np.ndarray],
        dtype: Optional[np.dtype] = None,
    ) -> "QueryResult":
        """Concatenate row-major output blocks into one result."""
        names = tuple(column_names)
        if not blocks:
            data = np.empty((0, len(names)), dtype=dtype or np.float64)
        else:
            data = np.concatenate([np.atleast_2d(b) for b in blocks], axis=0)
        return cls(names, data)

    @classmethod
    def empty(
        cls, column_names: Sequence[str], dtype: Optional[np.dtype] = None
    ) -> "QueryResult":
        names = tuple(column_names)
        return cls(names, np.empty((0, len(names)), dtype=dtype or np.float64))

    # Access -----------------------------------------------------------------

    @property
    def column_names(self) -> Tuple[str, ...]:
        return self._names

    @property
    def data(self) -> np.ndarray:
        """The (rows × columns) row-major result array."""
        return self._data

    @property
    def num_rows(self) -> int:
        return int(self._data.shape[0])

    @property
    def num_columns(self) -> int:
        return len(self._names)

    def column(self, name_or_index: "str | int") -> np.ndarray:
        """One output column as a 1-D array."""
        if isinstance(name_or_index, str):
            try:
                index = self._names.index(name_or_index)
            except ValueError:
                raise ExecutionError(
                    f"no result column named {name_or_index!r}; "
                    f"have {self._names}"
                ) from None
        else:
            index = name_or_index
        return self._data[:, index]

    def rows(self) -> List[Tuple[float, ...]]:
        """All rows as tuples (convenience for small results/tests)."""
        return [tuple(row) for row in self._data]

    def scalars(self) -> Tuple[float, ...]:
        """The single row of an aggregation result."""
        if self.num_rows != 1:
            raise ExecutionError(
                f"scalars() requires exactly one row, result has "
                f"{self.num_rows}"
            )
        return tuple(self._data[0])

    # Comparison ---------------------------------------------------------------

    def allclose(
        self, other: "QueryResult", rtol: float = 1e-9, atol: float = 1e-6
    ) -> bool:
        """Numeric equality against another result (same shape & order)."""
        if self.num_columns != other.num_columns:
            return False
        if self.num_rows != other.num_rows:
            return False
        if self.num_rows == 0:
            return True
        mine = self._data.astype(np.float64, copy=False)
        theirs = other._data.astype(np.float64, copy=False)
        return bool(
            np.allclose(mine, theirs, rtol=rtol, atol=atol, equal_nan=True)
        )

    def __repr__(self) -> str:
        return (
            f"QueryResult(columns={self._names}, rows={self.num_rows})"
        )
