"""A process-wide bounded thread pool for morsel-parallel scans.

NumPy kernels release the GIL during array work, so a small shared pool
of plain threads yields real multi-core speedups for scan-heavy queries.
The pool is deliberately *bounded and shared*:

- One :class:`ScanPool` serves every engine in the process (see
  :func:`get_scan_pool`), sized to the usable cores by default.
- Grants are budgeted against *external load*: the query service
  registers a load provider reporting how many queries its workers are
  running, and each grant deducts the other busy workers from the
  available thread budget.  A saturated service therefore degrades
  toward one thread per query instead of oversubscribing the machine.
- The calling thread always participates in its own scan, so a grant of
  ``k`` threads reserves only ``k - 1`` helpers — and a grant of one
  thread (the contended case) costs nothing at all.

Work distribution is dynamic: helpers and the caller steal morsel
indices from a shared counter, so a skewed morsel (page faults, NUMA,
pruned neighbours) never idles the other threads.  Result *combination*
order is the caller's business — :mod:`repro.execution.morsel` combines
partial states in morsel-index order regardless of completion order,
which is what keeps parallel answers bit-identical to serial ones.

Deadlock-freedom: helper tasks never block on other tasks (each drains
an independent index counter and exits), and grant arithmetic keeps
``Σ helpers + callers ≤ max_threads``, so queued tasks always find a
worker eventually.
"""

from __future__ import annotations

import itertools
import os
import queue
import threading
from typing import Callable, Dict, List, Optional

__all__ = ["ScanPool", "ScanGrant", "get_scan_pool", "usable_cores"]


def usable_cores() -> int:
    """CPU cores this process may actually run on (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


class ScanGrant:
    """A reservation of ``1 + extra`` threads for one scan.

    Use as a context manager; :meth:`map_indexed` runs a per-index
    function across the grant's threads with dynamic work stealing.
    """

    def __init__(self, pool: "ScanPool", extra: int) -> None:
        self._pool = pool
        self.extra = extra
        self._released = False

    @property
    def threads(self) -> int:
        """Total threads this grant may occupy (caller included)."""
        return 1 + self.extra

    def __enter__(self) -> "ScanGrant":
        return self

    def __exit__(self, *_exc) -> None:
        self.release()

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._pool._release(self.extra)

    def map_indexed(self, total: int, fn: Callable[[int], None]) -> int:
        """Run ``fn(i)`` for every ``i in range(total)``.

        Helpers and the caller pull indices from one shared counter
        (``next`` on :func:`itertools.count` is atomic under the GIL).
        The first exception raised by any thread stops the remaining
        work and is re-raised in the caller.  Returns the number of
        threads that actually participated.
        """
        helpers = min(self.extra, max(0, total - 1))
        if helpers == 0:
            for index in range(total):
                fn(index)
            return 1
        counter = itertools.count()
        errors: List[BaseException] = []
        error_lock = threading.Lock()

        def drain() -> None:
            while not errors:
                index = next(counter)
                if index >= total:
                    return
                try:
                    fn(index)
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    with error_lock:
                        errors.append(exc)
                    return

        latch = threading.Semaphore(0)

        def helper_task() -> None:
            try:
                drain()
            finally:
                latch.release()

        for _ in range(helpers):
            self._pool._submit(helper_task)
        drain()  # the caller is a worker too
        for _ in range(helpers):
            latch.acquire()
        if errors:
            raise errors[0]
        return 1 + helpers


class ScanPool:
    """Bounded pool of persistent daemon threads for morsel scans."""

    def __init__(self, max_threads: Optional[int] = None) -> None:
        self.max_threads = (
            max_threads if max_threads and max_threads > 0 else usable_cores()
        )
        self._lock = threading.Lock()
        self._reserved = 0  # helper threads currently granted
        self._load_providers: Dict[str, Callable[[], int]] = {}
        self._tasks: "queue.SimpleQueue[Callable[[], None]]" = (
            queue.SimpleQueue()
        )
        self._spawned = 0
        self._idle = 0

    # Load accounting --------------------------------------------------

    def register_load(self, name: str, provider: Callable[[], int]) -> None:
        """Register an external load source (e.g. the query service).

        ``provider()`` must cheaply return how many external workers are
        currently busy; grants deduct the *other* busy workers (the
        caller is assumed to be one of them) from the thread budget.
        """
        with self._lock:
            self._load_providers[name] = provider

    def unregister_load(self, name: str) -> None:
        with self._lock:
            self._load_providers.pop(name, None)

    def _external_busy(self) -> int:
        busy = 0
        for provider in list(self._load_providers.values()):
            try:
                busy += max(0, int(provider()))
            except Exception:  # noqa: BLE001 - load is advisory only
                continue
        return busy

    # Granting ---------------------------------------------------------

    def acquire(self, want: int) -> ScanGrant:
        """Reserve up to ``want`` threads (caller included) for a scan.

        The grant never exceeds what the budget allows:
        ``max_threads - reserved helpers - other busy callers``.  Always
        succeeds — in the worst case with zero helpers, meaning the scan
        simply runs serially on the caller.
        """
        want = max(1, int(want))
        with self._lock:
            external = self._external_busy()
            # The caller occupies one slot; other busy external workers
            # occupy theirs; granted helpers occupy the rest.
            occupied = 1 + max(0, external - 1) + self._reserved
            available = max(0, self.max_threads - occupied)
            extra = min(want - 1, available)
            self._reserved += extra
        return ScanGrant(self, extra)

    def _release(self, extra: int) -> None:
        with self._lock:
            self._reserved = max(0, self._reserved - extra)

    # Worker threads ---------------------------------------------------

    def _submit(self, task: Callable[[], None]) -> None:
        with self._lock:
            if self._idle == 0 and self._spawned < max(
                0, self.max_threads - 1
            ):
                self._spawned += 1
                thread = threading.Thread(
                    target=self._worker,
                    name=f"h2o-scan-{self._spawned}",
                    daemon=True,
                )
                thread.start()
        self._tasks.put(task)

    def _worker(self) -> None:
        while True:
            with self._lock:
                self._idle += 1
            try:
                task = self._tasks.get()
            finally:
                with self._lock:
                    self._idle -= 1
            try:
                task()
            except Exception:  # noqa: BLE001 - tasks report their own errors
                pass

    def snapshot(self) -> Dict[str, int]:
        """Introspection for stats/health endpoints (defensive copy)."""
        with self._lock:
            return {
                "max_threads": self.max_threads,
                "reserved": self._reserved,
                "spawned": self._spawned,
                "idle": self._idle,
                "external_busy": self._external_busy(),
            }


_pool_lock = threading.Lock()
_shared_pool: Optional[ScanPool] = None


def get_scan_pool() -> ScanPool:
    """The process-wide shared scan pool (created on first use)."""
    global _shared_pool
    with _pool_lock:
        if _shared_pool is None:
            _shared_pool = ScanPool()
        return _shared_pool
