"""Generic (interpreted) expression evaluation.

This is the "generic database operator" of the paper's Fig. 14: a
tree-walking evaluator that dispatches on node type for every vector and
materializes a fresh intermediate array for every operator.  It is
deliberately *not* specialized — that overhead is the thing the
on-the-fly generated operators (:mod:`repro.codegen`) remove.

The evaluator is also the semantic reference: generated kernels must
produce bit-identical results to it (integration tests enforce this).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from ..errors import ExecutionError
from ..sql.expressions import (
    Aggregate,
    AggregateFunc,
    Arithmetic,
    ArithmeticOp,
    BoolConnective,
    BooleanOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    Literal,
    Not,
)

Resolver = Callable[[str], np.ndarray]

_ARITH_FUNCS = {
    ArithmeticOp.ADD: np.add,
    ArithmeticOp.SUB: np.subtract,
    ArithmeticOp.MUL: np.multiply,
}

_CMP_FUNCS = {
    ComparisonOp.LT: np.less,
    ComparisonOp.LE: np.less_equal,
    ComparisonOp.GT: np.greater,
    ComparisonOp.GE: np.greater_equal,
    ComparisonOp.EQ: np.equal,
    ComparisonOp.NE: np.not_equal,
}


def evaluate_value(expr: Expr, resolve: Resolver) -> np.ndarray:
    """Evaluate an arithmetic expression to an array (or 0-d scalar).

    Every Arithmetic node allocates a fresh output array — the
    full-materialization behaviour of a generic column-at-a-time
    operator (paper section 2.1: "one intermediate for a+b and one for
    the addition of the previous intermediate with c").
    """
    if isinstance(expr, Literal):
        return np.asarray(expr.value)
    if isinstance(expr, ColumnRef):
        return resolve(expr.name)
    if isinstance(expr, Arithmetic):
        left = evaluate_value(expr.left, resolve)
        right = evaluate_value(expr.right, resolve)
        return _ARITH_FUNCS[expr.op](left, right)
    if isinstance(expr, Aggregate):
        raise ExecutionError(
            "aggregate encountered during value evaluation; aggregates "
            "are computed by the aggregation operator"
        )
    raise ExecutionError(f"cannot evaluate {expr!r} as a value")


def evaluate_predicate(expr: Expr, resolve: Resolver) -> np.ndarray:
    """Evaluate a boolean expression to a boolean mask array."""
    if isinstance(expr, Comparison):
        left = evaluate_value(expr.left, resolve)
        right = evaluate_value(expr.right, resolve)
        return _CMP_FUNCS[expr.op](left, right)
    if isinstance(expr, BooleanOp):
        left = evaluate_predicate(expr.left, resolve)
        right = evaluate_predicate(expr.right, resolve)
        if expr.op is BoolConnective.AND:
            return np.logical_and(left, right)
        return np.logical_or(left, right)
    if isinstance(expr, Not):
        return np.logical_not(evaluate_predicate(expr.child, resolve))
    raise ExecutionError(f"cannot evaluate {expr!r} as a predicate")


class AggregateAccumulator:
    """Streaming state for one aggregate call across blocks."""

    __slots__ = ("func", "_sum", "_count", "_min", "_max")

    def __init__(self, func: AggregateFunc) -> None:
        self.func = func
        self._sum = 0.0
        self._count = 0
        self._min: "float | None" = None
        self._max: "float | None" = None

    def update(self, values: "np.ndarray | None", count: int) -> None:
        """Fold one block of qualifying values into the state.

        ``values`` is None for COUNT(*) (only the count matters).
        """
        if count == 0:
            return
        self._count += count
        if self.func is AggregateFunc.COUNT:
            return
        if values is None:
            raise ExecutionError(f"{self.func.value}() needs values")
        if self.func in (AggregateFunc.SUM, AggregateFunc.AVG):
            self._sum += float(values.sum(dtype=np.float64))
        elif self.func is AggregateFunc.MIN:
            block_min = float(values.min())
            self._min = (
                block_min if self._min is None else min(self._min, block_min)
            )
        elif self.func is AggregateFunc.MAX:
            block_max = float(values.max())
            self._max = (
                block_max if self._max is None else max(self._max, block_max)
            )

    def merge(self, other: "AggregateAccumulator") -> None:
        """Combine another partial state (same function) into this one."""
        if other.func is not self.func:
            raise ExecutionError("cannot merge different aggregate states")
        self._count += other._count
        self._sum += other._sum
        for mine, theirs, pick in (
            ("_min", other._min, min),
            ("_max", other._max, max),
        ):
            if theirs is not None:
                current = getattr(self, mine)
                setattr(
                    self,
                    mine,
                    theirs if current is None else pick(current, theirs),
                )

    def finalize(self) -> float:
        """The aggregate's final scalar value.

        Empty inputs follow numpy-friendly conventions: SUM→0, COUNT→0,
        MIN/MAX/AVG→NaN.
        """
        if self.func is AggregateFunc.COUNT:
            return float(self._count)
        if self.func is AggregateFunc.SUM:
            return self._sum
        if self.func is AggregateFunc.AVG:
            return self._sum / self._count if self._count else float("nan")
        if self.func is AggregateFunc.MIN:
            return self._min if self._min is not None else float("nan")
        return self._max if self._max is not None else float("nan")


def finalize_output(expr: Expr, agg_values: Dict[Aggregate, float]) -> float:
    """Evaluate an output expression whose aggregates are now scalars.

    Supports arithmetic *over* aggregates, e.g. ``sum(a) - min(b)``.
    """
    if isinstance(expr, Aggregate):
        return agg_values[expr]
    if isinstance(expr, Literal):
        return float(expr.value)
    if isinstance(expr, Arithmetic):
        left = finalize_output(expr.left, agg_values)
        right = finalize_output(expr.right, agg_values)
        if expr.op is ArithmeticOp.ADD:
            return left + right
        if expr.op is ArithmeticOp.SUB:
            return left - right
        return left * right
    raise ExecutionError(
        f"unsupported expression over aggregates: {expr.to_sql()}"
    )


def collect_aggregates(outputs) -> Tuple[Aggregate, ...]:
    """Unique aggregate nodes across the output expressions, in order."""
    seen: Dict[Aggregate, None] = {}
    for out in outputs:
        for agg in out.expr.aggregates():
            seen.setdefault(agg, None)
    return tuple(seen.keys())
