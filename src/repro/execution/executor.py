"""The low-level plan runner.

Given an analyzed query and a concrete :class:`AccessPlan`, the executor
runs it either through the generated kernel path (default — H2O's
on-the-fly operators) or through the interpreted operators (the generic
fallback and Fig. 14 baseline).  Strategy and layout decisions are *not*
made here; the engine (or a baseline) passes an explicit plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import threading

import numpy as np

from ..config import EngineConfig
from ..errors import CodegenError
from ..sql.analyzer import QueryInfo
from .evaluator import (
    AggregateAccumulator,
    collect_aggregates,
    evaluate_value,
    finalize_output,
)
from .morsel import (
    DeadlineCheck,
    MorselSettings,
    plan_morsels,
    run_generated_morsels,
    run_interpreted_morsels,
)
from .parallel import ScanPool, get_scan_pool
from .result import QueryResult
from .strategies import AccessPlan, ExecutionStrategy
from .vectorized import run_late_interpreted
from .volcano import run_fused_interpreted


@dataclass
class ExecStats:
    """What happened while executing one plan."""

    strategy: ExecutionStrategy
    plan: str
    used_codegen: bool = False
    codegen_cache_hit: bool = False
    #: Seconds spent generating + compiling operator source (charged to
    #: the query, as in the paper).
    codegen_seconds: float = 0.0
    #: Bytes of intermediate results materialized during execution.
    intermediate_bytes: int = 0
    rows_out: int = 0
    #: Number of tuples that qualified the WHERE clause (equals
    #: ``rows_out`` for projections, but differs for aggregations whose
    #: result is a single row).  ``None`` when the path cannot tell —
    #: the engine's selectivity feedback skips those.
    qualifying_rows: Optional[int] = None
    #: Filled in by the engine when the query also built a layout.
    reorg_seconds: float = 0.0
    layout_created: Optional[str] = None
    extras: dict = field(default_factory=dict)


class Executor:
    """Runs access plans; owns the operator cache when codegen is on."""

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config or EngineConfig()
        # Imported lazily-ish at construction to keep module import light
        # and one-directional (codegen only imports execution submodules).
        from ..codegen.cache import OperatorCache

        self.operator_cache = OperatorCache(
            enabled=self.config.operator_cache,
            capacity=self.config.max_cached_operators,
        )
        #: How many times the generated path failed and the interpreted
        #: fallback answered instead (see :meth:`_run_generated`).  The
        #: testkit oracle asserts this equals the number of compile
        #: faults it injected — a silently swallowed failure is caught.
        self.codegen_fallbacks = 0
        self._fallback_lock = threading.Lock()
        #: Morsel-driven parallel-scan knobs (see execution/morsel.py).
        self.morsel_settings = MorselSettings.from_config(self.config)
        #: The shared scan pool; ``None`` until first used.  Tests and
        #: benchmarks may inject a dedicated :class:`ScanPool` here to
        #: control thread counts independently of the machine.
        self.scan_pool: Optional[ScanPool] = None

    def _pool(self) -> ScanPool:
        if self.scan_pool is None:
            self.scan_pool = get_scan_pool()
        return self.scan_pool

    def run_plan(
        self,
        info: QueryInfo,
        plan: AccessPlan,
        allow_codegen: bool = True,
        deadline_check: DeadlineCheck = None,
    ) -> Tuple[QueryResult, ExecStats]:
        """Execute ``info`` with ``plan`` and report what happened.

        ``allow_codegen=False`` forces the interpreted path even when
        the configuration enables codegen — the engine's per-signature
        circuit breaker uses it to short-circuit compilation for shapes
        whose compiles keep failing (see docs/resilience.md); answers
        are identical either way, only slower.

        ``deadline_check`` is invoked before each morsel on the
        morsel-driven path (and never on the monolithic serial path); it
        should raise to abort an over-budget query between morsels.
        """
        if not info.all_attrs:
            return self._run_attribute_free(info, plan)
        if self.config.use_codegen and allow_codegen:
            return self._run_generated(info, plan, deadline_check)
        return self._run_interpreted(info, plan, deadline_check)

    def _run_attribute_free(
        self, info: QueryInfo, plan: AccessPlan
    ) -> Tuple[QueryResult, ExecStats]:
        """Queries that read no attributes (e.g. ``SELECT count(*)``)."""
        num_rows = plan.layouts[0].num_rows
        names = [out.name for out in info.query.select]
        if info.is_aggregation:
            agg_values = {}
            for agg in collect_aggregates(info.query.select):
                state = AggregateAccumulator(agg.func)
                if agg.arg is None:
                    state.update(None, num_rows)
                else:
                    # A constant argument repeated for every tuple.
                    value = evaluate_value(agg.arg, lambda _n: None)
                    state.update(
                        np.full(num_rows, float(value)), num_rows
                    )
                agg_values[agg] = state.finalize()
            values = [
                finalize_output(out.expr, agg_values)
                for out in info.query.select
            ]
            result = QueryResult.scalar_row(names, values)
        else:
            block = np.empty(
                (num_rows, len(info.query.select)), dtype=np.float64
            )
            for position, out in enumerate(info.query.select):
                block[:, position] = float(
                    evaluate_value(out.expr, lambda _n: None)
                )
            result = QueryResult(names, block)
        stats = ExecStats(
            strategy=plan.strategy,
            plan="attribute-free",
            rows_out=result.num_rows,
        )
        return result, stats

    # Interpreted path ------------------------------------------------------

    def _run_interpreted(
        self,
        info: QueryInfo,
        plan: AccessPlan,
        deadline_check: DeadlineCheck = None,
    ) -> Tuple[QueryResult, ExecStats]:
        num_rows = plan.layouts[0].num_rows
        pool = self._pool()
        mp = plan_morsels(
            info, plan.layouts, num_rows, self.morsel_settings, pool
        )
        if mp is not None:
            outcome = run_interpreted_morsels(
                info, plan.layouts, mp, pool, deadline_check
            )
            stats = ExecStats(
                strategy=plan.strategy,
                plan=plan.describe(),
                used_codegen=False,
                rows_out=outcome.result.num_rows,
                qualifying_rows=outcome.qualifying,
            )
            outcome.fill_extras(stats.extras)
            return outcome.result, stats
        if plan.strategy is ExecutionStrategy.FUSED:
            result, intermediate, qualifying = run_fused_interpreted(
                info, plan.layouts, self.config.vector_size
            )
        else:
            result, intermediate, qualifying = run_late_interpreted(
                info, plan.layouts, num_rows
            )
        stats = ExecStats(
            strategy=plan.strategy,
            plan=plan.describe(),
            used_codegen=False,
            intermediate_bytes=intermediate,
            rows_out=result.num_rows,
            qualifying_rows=qualifying,
        )
        return result, stats

    # Generated path --------------------------------------------------------

    def _run_generated(
        self,
        info: QueryInfo,
        plan: AccessPlan,
        deadline_check: DeadlineCheck = None,
    ) -> Tuple[QueryResult, ExecStats]:
        from ..codegen.generator import generate_operator

        try:
            operator, gen_seconds, cache_hit = generate_operator(
                info, plan, self.config, self.operator_cache
            )
        except CodegenError:
            # A failed generation/compilation must never fail the query:
            # the interpreted operators answer any supported shape over
            # any layout combination, just slower (Fig. 14).  The
            # fallback is counted so it can never pass silently; with
            # ``codegen_fallback=False`` (tests hunting real codegen
            # bugs) the error propagates instead.
            if not self.config.codegen_fallback:
                raise
            with self._fallback_lock:
                self.codegen_fallbacks += 1
            result, stats = self._run_interpreted(info, plan, deadline_check)
            stats.extras["codegen_fallback"] = True
            return result, stats
        pool = self._pool()
        num_rows = plan.layouts[0].num_rows
        mp = plan_morsels(
            info, plan.layouts, num_rows, self.morsel_settings, pool
        )
        if mp is not None:
            outcome = run_generated_morsels(
                operator.kernel,
                operator.params,
                info,
                plan.layouts,
                mp,
                pool,
                deadline_check,
            )
            stats = ExecStats(
                strategy=plan.strategy,
                plan=plan.describe(),
                used_codegen=True,
                codegen_cache_hit=cache_hit,
                codegen_seconds=gen_seconds,
                rows_out=outcome.result.num_rows,
                qualifying_rows=outcome.qualifying,
            )
            outcome.fill_extras(stats.extras)
            stats.extras["operator"] = operator
            return outcome.result, stats
        result, intermediate, qualifying = operator.run(plan.layouts)
        stats = ExecStats(
            strategy=plan.strategy,
            plan=plan.describe(),
            used_codegen=True,
            codegen_cache_hit=cache_hit,
            codegen_seconds=gen_seconds,
            intermediate_bytes=intermediate,
            rows_out=result.num_rows,
            qualifying_rows=qualifying,
        )
        # The engine's plan cache needs the compiled kernel + params to
        # replay this shape without re-deriving them.
        stats.extras["operator"] = operator
        return result, stats
