"""The shard worker: one process, one full adaptive engine per table.

Spawned by :class:`~repro.sharding.coordinator.ShardedSystem`, a worker
attaches the shared-memory packs the coordinator created, builds its
slice of every table as zero-copy ``SingleColumn`` views over them, and
serves framed commands (:mod:`repro.sharding.protocol`) over its pipe
until shutdown or coordinator death (EOF on the pipe).

Each worker runs a private :class:`~repro.core.system.H2OSystem`, so a
shard has its *own* plan cache, operator cache, monitoring window,
affinity matrices and zone maps — per-shard adaptation is the point
(RodentStore's argument: each partition learns the layout its slice of
the workload deserves).  Three knobs are forced regardless of the
coordinator's config:

- ``parallel_scans=False`` — shard processes *are* the parallel tier;
  nesting thread fan-out inside each shard would oversubscribe cores;
- ``adaptation_mode="inline"`` — there is no background scheduler in a
  shard; inline adaptation keeps per-shard evolution deterministic;
- ``shard_count=0`` — shards do not recursively shard.

For aggregations the coordinator sends a rewritten *partials* query
(``count(*)`` first, then one slot per unique aggregate with AVG
decomposed into SUM); the worker executes it through its ordinary
adaptive path and returns the scalar row as raw float64 bytes.  The
coordinator reshapes that into the per-morsel combine contract — a
worker never needs to know it is producing partials.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from ..config import EngineConfig, MachineProfile
from ..core.system import H2OSystem
from ..sql.types import DataType
from ..storage.relation import Table
from ..storage.schema import Attribute, Schema
from .protocol import encode_block, recv_msg, send_msg
from .shm import attach_segment, segment_view


def worker_config(knobs: dict) -> EngineConfig:
    """The coordinator's scalar knobs with the shard overrides applied."""
    merged = dict(knobs)
    machine = merged.get("machine")
    if isinstance(machine, dict):
        # dataclasses.asdict flattened the MachineProfile for transport.
        merged["machine"] = MachineProfile(**machine)
    merged.update(
        parallel_scans=False,
        adaptation_mode="inline",
        shard_count=0,
    )
    return EngineConfig(**merged)


def _attach_columns(packs: List[dict]):
    """Attach the listed packs; returns (columns, attachments)."""
    columns: Dict[str, np.ndarray] = {}
    attachments = []
    for pack in packs:
        seg = attach_segment(pack["seg"])
        attachments.append(seg)
        attrs = pack["attrs"]
        view = segment_view(
            seg, (len(attrs), pack["rows"]), np.dtype(pack["dtype"])
        )
        for i, name in enumerate(attrs):
            columns[name] = view[i]
    return columns, attachments


class _ShardServer:
    """Command dispatch state for one worker process."""

    def __init__(self, shard_index: int, knobs: dict) -> None:
        self.shard_index = shard_index
        self.system = H2OSystem(config=worker_config(knobs))
        #: table → shared-memory handles kept alive while views exist.
        self.attachments: Dict[str, list] = {}

    # Commands ----------------------------------------------------------

    def create_table(self, header: dict) -> dict:
        schema = Schema(
            Attribute(name, DataType(dtype))
            for name, dtype in zip(
                header["attr_names"], header["attr_dtypes"]
            )
        )
        columns, attachments = _attach_columns(header["packs"])
        table = Table.from_columns(
            header["name"], schema, columns, initial_layout="column"
        )
        self.system.register(table, replace=True)
        # Replace (respawn replay / re-register) drops the old views.
        for seg in self.attachments.pop(header["name"], ()):
            seg.close()
        self.attachments[header["name"]] = attachments
        return {"ok": True, "rows": table.num_rows, "epoch": 0}

    def append(self, header: dict) -> dict:
        columns, attachments = _attach_columns(header["packs"])
        table = self.system.catalog.get(header["name"])
        table.append_rows(columns)
        # append_rows copies into reallocated layouts; the staging
        # segments are not referenced afterwards.
        for seg in attachments:
            seg.close()
        return {
            "ok": True,
            "rows": table.num_rows,
            "epoch": table.layout_epoch,
        }

    def query(self, header: dict):
        budget = header.get("budget")
        deadline = time.monotonic() + budget if budget is not None else None
        report = self.system.execute(header["sql"], deadline=deadline)
        reply = {
            "ok": True,
            "kind": header["mode"],
            "epoch": report.snapshot_epoch,
            "morsels_total": report.morsels_total,
            "morsels_pruned": report.morsels_pruned,
            "codegen_fallback": report.codegen_fallback,
            "breaker_short_circuit": report.breaker_short_circuit,
            "reorg_aborted": report.reorg_aborted,
            "plan_cache_hit": report.plan_cache_hit,
        }
        meta, blob = encode_block(report.result.data)
        reply.update(meta)
        return reply, [blob]

    def drop(self, header: dict) -> dict:
        self.system.drop(header["name"])
        for seg in self.attachments.pop(header["name"], ()):
            seg.close()
        return {"ok": True}

    def health(self, header: dict) -> dict:
        tables = {}
        for engine in self.system.engines():
            tables[engine.table.name] = {
                "breaker": engine.breaker.snapshot(),
                "quarantine": engine.quarantine.snapshot(),
                "codegen_fallbacks": engine.executor.codegen_fallbacks,
                "breaker_short_circuits": engine.breaker.short_circuits,
                "reorg_aborts": engine.reorg_aborts,
                "deadline_aborts": engine.deadline_aborts,
                "policy": engine.policy.snapshot(),
                "epoch": engine.table.layout_epoch,
            }
        return {"ok": True, "shard": self.shard_index, "tables": tables}

    def close(self) -> None:
        for segs in self.attachments.values():
            for seg in segs:
                seg.close()
        self.attachments.clear()


def shard_worker_main(conn, shard_index: int, knobs: dict) -> None:
    """Entry point of one shard process (spawn-safe, top-level)."""
    server = _ShardServer(shard_index, knobs)
    try:
        while True:
            try:
                header, _blobs = recv_msg(conn)
            except (EOFError, OSError):
                return  # coordinator went away; exit quietly
            cmd = header.get("cmd")
            reply_blobs: list = []
            try:
                if cmd == "shutdown":
                    send_msg(conn, {"ok": True, "id": header.get("id")})
                    return
                if cmd == "create_table":
                    reply = server.create_table(header)
                elif cmd == "append":
                    reply = server.append(header)
                elif cmd == "query":
                    reply, reply_blobs = server.query(header)
                elif cmd == "drop":
                    reply = server.drop(header)
                elif cmd == "health":
                    reply = server.health(header)
                else:
                    reply = {
                        "ok": False,
                        "error": f"unknown command {cmd!r}",
                        "etype": "ShardError",
                        "retryable": False,
                    }
            except Exception as exc:  # noqa: BLE001 - forwarded, not fatal
                reply = {
                    "ok": False,
                    "error": str(exc),
                    "etype": type(exc).__name__,
                    "retryable": bool(getattr(exc, "is_retryable", False)),
                }
                reply_blobs = []
            reply["id"] = header.get("id")
            try:
                send_msg(conn, reply, reply_blobs)
            except (BrokenPipeError, OSError):
                return
    finally:
        server.close()
        try:
            conn.close()
        except Exception:  # pragma: no cover - already closed
            pass
