"""The pickle-free framed command protocol between coordinator and shards.

One message is one ``Connection.send_bytes`` frame::

    !I  header length        (JSON, UTF-8)
    !I  blob count
    header bytes
    [ !Q blob length, blob bytes ] * blob_count

The header is plain JSON — command names, SQL text, segment names,
integer telemetry.  Anything numeric whose *bits* matter (partial
aggregate states, projection blocks) rides in raw binary blobs, so no
float ever round-trips through a decimal representation and nothing on
the command path is ever unpickled (a dead or compromised shard cannot
inject objects into the coordinator).

Partial aggregate payloads use the morsel combine contract
(:func:`repro.execution.morsel.combine_partial_aggregates`): a payload
is ``(count, states)`` with per-slot states COUNT → None, SUM/AVG →
running float sum, MIN/MAX → float or None.  :func:`encode_partial` /
:func:`decode_partial` pack that as a float64 vector
``[count, present_0, value_0, present_1, value_1, ...]`` — the
``present`` flag carries the None-ness explicitly so an empty shard's
MIN stays None (skipped by the combiner) instead of NaN-poisoning the
fold.
"""

from __future__ import annotations

import json
import struct
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ShardError

_HEAD = struct.Struct("!II")
_BLOB = struct.Struct("!Q")


def send_msg(conn, header: dict, blobs: Sequence[bytes] = ()) -> None:
    """Send one framed message (header JSON + raw blobs)."""
    payload = json.dumps(header).encode("utf-8")
    parts: List[bytes] = [_HEAD.pack(len(payload), len(blobs)), payload]
    for blob in blobs:
        parts.append(_BLOB.pack(len(blob)))
        parts.append(blob)
    conn.send_bytes(b"".join(parts))


def recv_msg(
    conn, timeout: Optional[float] = None
) -> Tuple[dict, List[bytes]]:
    """Receive one framed message; raises ShardError on timeout.

    ``timeout=None`` blocks (the worker side); the coordinator always
    passes its scatter timeout so a wedged shard cannot hang a query.
    """
    if timeout is not None and not conn.poll(timeout):
        raise ShardError(
            f"shard did not reply within {timeout:.1f}s (scatter timeout)"
        )
    data = conn.recv_bytes()
    header_len, blob_count = _HEAD.unpack_from(data, 0)
    offset = _HEAD.size
    header = json.loads(data[offset : offset + header_len].decode("utf-8"))
    offset += header_len
    blobs: List[bytes] = []
    for _ in range(blob_count):
        (length,) = _BLOB.unpack_from(data, offset)
        offset += _BLOB.size
        blobs.append(data[offset : offset + length])
        offset += length
    return header, blobs


# Partial-aggregate payload packing ------------------------------------


def encode_partial(
    count: float, states: Sequence[Optional[float]]
) -> bytes:
    """Pack one ``(count, states)`` payload as a float64 vector."""
    vec = np.empty(1 + 2 * len(states), dtype=np.float64)
    vec[0] = count
    for i, state in enumerate(states):
        if state is None:
            vec[1 + 2 * i] = 0.0
            vec[2 + 2 * i] = 0.0
        else:
            vec[1 + 2 * i] = 1.0
            vec[2 + 2 * i] = state
    return vec.tobytes()


def decode_partial(blob: bytes) -> Tuple[float, Tuple[Optional[float], ...]]:
    """Unpack one payload back into the combine contract's shape."""
    vec = np.frombuffer(blob, dtype=np.float64)
    count = float(vec[0])
    states: List[Optional[float]] = []
    for i in range((len(vec) - 1) // 2):
        present = vec[1 + 2 * i] != 0.0
        states.append(float(vec[2 + 2 * i]) if present else None)
    return count, tuple(states)


# Projection block packing ---------------------------------------------


def encode_block(data: np.ndarray) -> Tuple[dict, bytes]:
    """Pack a row-major result block; returns (shape header, bytes)."""
    data = np.ascontiguousarray(data)
    meta = {
        "rows": int(data.shape[0]),
        "cols": int(data.shape[1]),
        "dtype": str(data.dtype),
    }
    return meta, data.tobytes()


def decode_block(meta: dict, blob: bytes) -> np.ndarray:
    """Unpack a projection block (copy — the frame buffer is transient)."""
    array = np.frombuffer(blob, dtype=np.dtype(meta["dtype"]))
    return array.reshape(meta["rows"], meta["cols"]).copy()
