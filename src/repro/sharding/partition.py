"""Row partitioning and column→segment packing for the sharding tier.

Two strategies (``EngineConfig.shard_partition``):

- **range** — contiguous near-equal row chunks in original order.  The
  global row order is, by construction, the concatenation of the shard
  slices in shard-index order, so gathered *projection* results are
  bit-identical to serial execution.  Appends go to the tail shard —
  the only assignment that keeps "concat of shards" equal to "serial
  append order" (a tail-heavy distribution is rebalanced only by
  re-registering; the paper's workloads are read-dominated).
- **hash** — rows are assigned by a Fibonacci-multiplicative hash of an
  int64 partition key.  A query whose predicate pins the key with an
  equality conjunct routes to exactly one shard; appends fan out by
  key.  Aggregates stay bit-identical (the combine contract is
  order-free across *values*, deterministic across shards); projection
  row order follows shard order, not insertion order.

Segment packing groups a shard's columns by dtype into one 2-D
``(attrs, rows)`` C-order array per dtype, so a wide table costs one or
two ``/dev/shm`` segments per shard instead of one per attribute, and
each attribute is a contiguous 1-D row-slice view on the worker side
(zero copy into ``SingleColumn``).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

#: Fibonacci hashing constant (2**64 / golden ratio, odd): multiplies
#: avalanche well even for sequential keys, and is exactly what a
#: dict-of-shards must NOT depend on Python's randomized hash() for —
#: shard assignment must be stable across processes and runs.
_GOLDEN = 0x9E3779B97F4A7C15
_MASK = (1 << 64) - 1


def range_splits(num_rows: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` per shard, remainder spread left-first."""
    if shards <= 0:
        raise ValueError(f"shards must be >= 1, got {shards}")
    base, rem = divmod(num_rows, shards)
    splits: List[Tuple[int, int]] = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < rem else 0)
        splits.append((lo, hi))
        lo = hi
    return splits


def hash_shard_of(value: int, shards: int) -> int:
    """Stable shard index of one int64 key value (scalar form)."""
    return ((int(value) & _MASK) * _GOLDEN & _MASK) % shards


def hash_assignments(values: np.ndarray, shards: int) -> np.ndarray:
    """Vectorized :func:`hash_shard_of` over an int64 key column."""
    with np.errstate(over="ignore"):
        mixed = values.astype(np.uint64) * np.uint64(_GOLDEN)
    return (mixed % np.uint64(shards)).astype(np.intp)


def partition_rows(
    columns: Mapping[str, np.ndarray],
    num_rows: int,
    shards: int,
    partition: str,
    key: "str | None",
) -> List[Dict[str, np.ndarray]]:
    """Split per-attribute arrays into per-shard column dicts.

    Hash assignment is *stable*: within a shard, rows keep their
    relative input order, so repeated registration or append of the
    same data is deterministic.
    """
    if partition == "range":
        return [
            {name: arr[lo:hi] for name, arr in columns.items()}
            for lo, hi in range_splits(num_rows, shards)
        ]
    if partition != "hash":
        raise ValueError(f"unknown partition strategy {partition!r}")
    if key is None or key not in columns:
        raise ValueError(
            f"hash partitioning needs a key attribute present in the "
            f"table, got {key!r}"
        )
    assign = hash_assignments(np.asarray(columns[key]), shards)
    return [
        {
            name: np.asarray(arr)[assign == sid]
            for name, arr in columns.items()
        }
        for sid in range(shards)
    ]


def pack_by_dtype(
    columns: Mapping[str, np.ndarray], attr_order: Sequence[str]
) -> List[Tuple[Tuple[str, ...], np.ndarray]]:
    """Group columns by dtype into ``(attrs, rows)`` C-order arrays.

    Attribute order inside each pack follows ``attr_order`` (the schema
    order), so the worker can rebuild its column dict deterministically
    from the pack's attribute list alone.
    """
    by_dtype: Dict[np.dtype, List[str]] = {}
    for name in attr_order:
        if name not in columns:
            continue
        by_dtype.setdefault(np.asarray(columns[name]).dtype, []).append(name)
    packs: List[Tuple[Tuple[str, ...], np.ndarray]] = []
    for dtype, names in by_dtype.items():
        rows = len(np.asarray(columns[names[0]]))
        block = np.empty((len(names), rows), dtype=dtype)
        for i, name in enumerate(names):
            block[i, :] = columns[name]
        packs.append((tuple(names), block))
    return packs
