"""Process-based sharding: break the GIL ceiling with shared memory.

Thread-level morsel parallelism (PR 5) stalls near ~2.6x on four cores:
NumPy kernels release the GIL, but prepare/finish, codegen and
small-morsel work stay serialized in one interpreter.  This package adds
the next tier — hash/range-partition each table across N worker
*processes* whose column arrays live in ``multiprocessing.shared_memory``
(zero-copy views on both sides), each shard running its own full
adaptive engine (plan cache, operator cache, affinity matrices, zone
maps) over its slice of the workload.

- :mod:`repro.sharding.shm` — shared-memory segment lifecycle (creation,
  attach without double-unlink, atexit cleanup so no run leaks
  ``/dev/shm`` segments);
- :mod:`repro.sharding.protocol` — the pickle-free framed command
  protocol (JSON header + raw binary blobs over one pipe message);
- :mod:`repro.sharding.partition` — range/hash row partitioning and the
  column→segment packing;
- :mod:`repro.sharding.worker` — the shard process main loop;
- :mod:`repro.sharding.coordinator` — :class:`ShardedSystem`, the
  scatter–gather coordinator that duck-types
  :class:`~repro.core.system.H2OSystem` for the service.
"""

from .coordinator import ShardedSystem
from .partition import hash_shard_of, range_splits
from .shm import leaked_segments

__all__ = [
    "ShardedSystem",
    "hash_shard_of",
    "range_splits",
    "leaked_segments",
]
