"""Shared-memory segment lifecycle for the sharding tier.

The coordinator *owns* every segment: it creates them (column data
copied in once at registration/append time), hands the names to shard
workers, and unlinks them when the table is dropped or the system
closes.  Workers only ever *attach*; spawned workers share the
coordinator's ``resource_tracker`` process, so their attach-time
re-registration is idempotent and never causes an early unlink (see
:func:`attach_segment`).

Leak discipline: every created segment is recorded in a process-global
registry whose ``atexit`` hook closes and unlinks whatever is still
live, so an interrupted run (test failure, ^C, uncaught exception)
leaves ``/dev/shm`` clean.  A coordinator killed with SIGKILL cannot run
atexit — that case is covered by the stdlib ``resource_tracker``
process, which outlives the parent and unlinks registered segments.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
from multiprocessing import shared_memory
from typing import Dict, Tuple

import numpy as np

#: Distinctive name prefix: leak checks glob /dev/shm for it, and the
#: pid component keeps concurrent test runs from colliding.
SEGMENT_PREFIX = "h2o-shm"

_counter = itertools.count()
_lock = threading.Lock()
#: name → SharedMemory for every segment this process created and has
#: not yet unlinked.
_owned: Dict[str, shared_memory.SharedMemory] = {}


def _next_name() -> str:
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_counter)}"


def create_segment(array: np.ndarray) -> Tuple[str, shared_memory.SharedMemory]:
    """Copy ``array`` into a fresh owned segment; returns (name, handle).

    The handle (and its zero-copy view via :func:`segment_view`) stays
    valid until :func:`unlink_segment` — the coordinator keeps it alive
    for respawn replay.
    """
    array = np.ascontiguousarray(array)
    name = _next_name()
    # A shard can legitimately hold zero rows (fewer rows than shards);
    # shm segments cannot be zero-sized, so floor at one byte — the
    # zero-item view never reads it.
    seg = shared_memory.SharedMemory(
        name=name, create=True, size=max(1, array.nbytes)
    )
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=seg.buf)
    view[...] = array
    with _lock:
        _owned[name] = seg
    return name, seg


def segment_view(
    seg: shared_memory.SharedMemory,
    shape: Tuple[int, ...],
    dtype: np.dtype,
) -> np.ndarray:
    """Zero-copy ndarray over a segment's buffer."""
    return np.ndarray(shape, dtype=dtype, buffer=seg.buf)


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment *without* taking ownership.

    On Python < 3.13 attaching re-registers the segment with the
    resource tracker.  Spawned shard workers *share* the coordinator's
    tracker process (the fd travels in the spawn preparation data), so
    that re-registration is an idempotent set-add in the one tracker
    that already knows the name — harmless.  Crucially we must NOT
    ``resource_tracker.unregister`` here: that would remove the
    *owner's* registration from the shared tracker, losing the
    SIGKILL-the-coordinator leak backstop.
    """
    return shared_memory.SharedMemory(name=name)


def unlink_segment(name: str) -> None:
    """Close and unlink one owned segment (idempotent)."""
    with _lock:
        seg = _owned.pop(name, None)
    if seg is None:
        return
    try:
        seg.close()
    finally:
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def owned_segments() -> Tuple[str, ...]:
    """Names of segments this process currently owns (for tests)."""
    with _lock:
        return tuple(_owned)


def leaked_segments(prefix: str = SEGMENT_PREFIX) -> Tuple[str, ...]:
    """Segments with our prefix still present in /dev/shm.

    The leak tests assert this is empty after a sharded system closes —
    including runs where a shard was killed mid-query.
    """
    try:
        entries = os.listdir("/dev/shm")
    except FileNotFoundError:  # pragma: no cover - non-Linux hosts
        return ()
    return tuple(sorted(e for e in entries if e.startswith(prefix)))


def _cleanup_all() -> None:
    """atexit: unlink everything still owned, whatever got us here."""
    with _lock:
        names = list(_owned)
    for name in names:
        try:
            unlink_segment(name)
        except Exception:  # pragma: no cover - best effort at exit
            pass


atexit.register(_cleanup_all)
