"""The scatter–gather coordinator over N shard processes.

:class:`ShardedSystem` duck-types :class:`~repro.core.system.H2OSystem`
(register / drop / execute / run_sequence / describe / engines /
cumulative_seconds) so :class:`~repro.service.H2OService` routes tickets
through it unchanged.  Per query:

1. **route** — the routing decision is cached by the query's masked
   shape signature: aggregation vs projection, and (for hash-partitioned
   tables) whether a top-level equality conjunct pins the partition key,
   in which case the query goes to exactly one shard;
2. **scatter** — aggregations are rewritten into a *partials* query
   (``count(*)`` first, one slot per unique aggregate, AVG decomposed
   into SUM) and sent to every target shard over the pickle-free framed
   protocol; projections are forwarded verbatim;
3. **gather** — per-shard replies are reshaped into the per-morsel
   combine contract and folded **in shard-index order** via
   :func:`repro.execution.morsel.combine_partial_aggregates`, so the
   answer is bit-identical to serial execution; projection blocks are
   concatenated in shard order (bit-identical under range partitioning,
   which preserves global row order).

**Failure model.**  A shard that dies or misses the scatter timeout is
marked dead, killed if wedged, and the watchdog thread is woken; the
query raises a *retryable* :class:`~repro.errors.ShardError`, which the
service's retry ladder turns into a requeued ticket — the waiter never
sees the death.  The watchdog respawns dead shards under a token-bucket
budget and replays their slice from the coordinator's retained
shared-memory segments (initial registration plus every append batch,
in order), so a respawned shard is bit-identical in *data*; its learned
adaptive state starts fresh and is re-learned from traffic.

One scatter is in flight at a time (``_io_lock``): parallelism comes
from the shards executing concurrently inside one query, not from
interleaving queries on the pipes.  Replies carry echoed request ids so
a reply abandoned by a failed scatter is drained, never mis-matched.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import weakref
from typing import Dict, List, Optional, Sequence, Tuple, Union

import multiprocessing
import numpy as np

from ..config import EngineConfig
from ..core.engine import QueryReport
from ..errors import CatalogError, H2OError, ShardError
from ..execution.evaluator import collect_aggregates, finalize_output
from ..execution.morsel import combine_partial_aggregates
from ..execution.result import QueryResult
from ..resilience.budget import TokenBucket
from ..sql.expressions import (
    Aggregate,
    AggregateFunc,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Literal,
)
from ..sql.parser import parse_query
from ..sql.query import OutputColumn, Query
from ..storage.relation import Table
from .partition import hash_shard_of, pack_by_dtype, partition_rows
from .protocol import decode_block, recv_msg, send_msg
from .shm import create_segment, unlink_segment
from .worker import shard_worker_main

from .. import errors as _errors


class _Shard:
    """One worker process + its command pipe."""

    __slots__ = ("index", "process", "conn", "alive", "seq")

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.alive = True
        self.seq = 0


@dataclasses.dataclass
class _TableState:
    """Everything needed to answer for — and replay — one table."""

    name: str
    attr_names: Tuple[str, ...]
    attr_dtypes: Tuple[str, ...]
    partition: str
    key: Optional[str]
    num_rows: int
    #: [shard][batch] → pack descriptors; batch 0 is the initial
    #: registration, later batches are appends (replayed in order).
    shard_batches: List[List[List[dict]]]
    #: Every owned segment name (unlinked on drop/close).
    segments: List[str]
    #: Latest layout epoch each shard reported (per-shard publication).
    epochs: Dict[int, int]
    query_index: int = 0


@dataclasses.dataclass(frozen=True)
class _Route:
    """Cached routing decision for one (table, shape signature)."""

    is_aggregation: bool
    #: Index of the top-level EQ conjunct pinning the hash key, and
    #: which side holds the literal ("left"/"right"); None → all shards.
    key_conjunct: Optional[int] = None
    literal_side: Optional[str] = None


def _scalar_knobs(config: EngineConfig) -> dict:
    """The config as a JSON-able dict the spawn bootstrap can carry."""
    knobs = dataclasses.asdict(config)
    # MachineProfile flattens to a plain dict; the worker rebuilds it.
    return knobs


def _finalize_shards(processes: List) -> None:
    """weakref.finalize hook: never leave orphan shard processes."""
    for proc in processes:
        try:
            if proc.is_alive():
                proc.terminate()
        except Exception:  # pragma: no cover - interpreter teardown
            pass


class ShardedSystem:
    """Process-sharded adaptive store with scatter–gather execution."""

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        *,
        name: str = "h2o-sharded",
        watchdog_interval: float = 0.05,
        respawn_wait: float = 30.0,
    ) -> None:
        config = config or EngineConfig(shard_count=2)
        if config.shard_count < 1:
            raise ShardError(
                "ShardedSystem needs shard_count >= 1 in its config "
                f"(got {config.shard_count}); use H2OSystem when "
                "sharding is off"
            )
        self.config = config
        self.name = name
        self.shard_count = config.shard_count
        self.scatter_timeout = config.scatter_timeout
        self._respawn_wait = respawn_wait
        self._ctx = multiprocessing.get_context("spawn")
        self._knobs = _scalar_knobs(config)
        self._tables: Dict[str, _TableState] = {}
        self._routes: Dict[Tuple[str, object], _Route] = {}
        #: One scatter (or append/health broadcast) in flight at a time.
        self._io_lock = threading.RLock()
        #: Guards shard aliveness; respawns notify waiters.
        self._state_lock = threading.Lock()
        self._ready = threading.Condition(self._state_lock)
        self._closed = threading.Event()
        self._cumulative = 0.0
        self.shard_respawns = 0
        self.shard_deaths = 0
        self._respawn_budget = TokenBucket(
            burst=max(4, 2 * self.shard_count), window=1.0
        )
        self._shards: List[_Shard] = [
            self._spawn_shard(index) for index in range(self.shard_count)
        ]
        #: Mutable process list the exit finalizer terminates; updated
        #: in place on respawn so late deaths are still covered.
        self._finalize_procs = [s.process for s in self._shards]
        self._finalizer = weakref.finalize(
            self, _finalize_shards, self._finalize_procs
        )
        self._watchdog_wake = threading.Event()
        self._watchdog = threading.Thread(
            target=self._watchdog_loop,
            name=f"{name}-watchdog",
            daemon=True,
        )
        self._watchdog_interval = watchdog_interval
        self._watchdog.start()

    # Shard lifecycle ---------------------------------------------------

    def _spawn_shard(self, index: int) -> _Shard:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=shard_worker_main,
            args=(child_conn, index, self._knobs),
            name=f"{self.name}-shard-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Shard(index, process, parent_conn)

    def _watchdog_loop(self) -> None:
        while not self._closed.is_set():
            self._watchdog_wake.wait(self._watchdog_interval)
            self._watchdog_wake.clear()
            if self._closed.is_set():
                return
            self._heal()

    def _heal(self) -> int:
        """Respawn dead shards (budgeted) and replay their data."""
        respawned = 0
        for position, shard in enumerate(list(self._shards)):
            dead = not shard.alive or not shard.process.is_alive()
            if not dead or self._closed.is_set():
                continue
            self.shard_deaths += shard.alive  # died without being marked
            if not self._respawn_budget.try_take():
                continue  # throttled; next tick retries
            with self._io_lock:
                if self._closed.is_set():
                    return respawned
                fresh = self._spawn_shard(shard.index)
                try:
                    self._replay(fresh)
                except ShardError:
                    # The replacement died during replay; next tick
                    # tries again (budget willing).
                    fresh.alive = False
                try:
                    shard.conn.close()
                except Exception:  # pragma: no cover - already closed
                    pass
                self._shards[position] = fresh
                self._finalize_procs.append(fresh.process)
            if fresh.alive:
                self.shard_respawns += 1
                respawned += 1
                with self._ready:
                    self._ready.notify_all()
        return respawned

    def _replay(self, shard: _Shard) -> None:
        """Rebuild a fresh shard's slice of every table, batch order."""
        for state in self._tables.values():
            batches = state.shard_batches[shard.index]
            if not batches:
                continue
            self._request(
                shard,
                {
                    "cmd": "create_table",
                    "name": state.name,
                    "attr_names": list(state.attr_names),
                    "attr_dtypes": list(state.attr_dtypes),
                    "packs": batches[0],
                },
                timeout=self.scatter_timeout,
            )
            for packs in batches[1:]:
                reply, _ = self._request(
                    shard,
                    {"cmd": "append", "name": state.name, "packs": packs},
                    timeout=self.scatter_timeout,
                )
                state.epochs[shard.index] = int(reply.get("epoch", 0))

    def _mark_dead(self, shard: _Shard, reason: str, kill: bool) -> None:
        with self._state_lock:
            was_alive = shard.alive
            shard.alive = False
        if was_alive:
            self.shard_deaths += 1
        if kill and shard.process.is_alive():
            shard.process.kill()
        self._watchdog_wake.set()

    def _shard_failed(self, shard: _Shard, reason: str, kill: bool = False):
        self._mark_dead(shard, reason, kill)
        raise ShardError(
            f"shard {shard.index} of {self.name!r} {reason}; it is being "
            f"respawned — retry the query"
        )

    def _await_ready(
        self, shard_ids: Sequence[int], timeout: Optional[float]
    ) -> None:
        """Block (bounded) until the target shards are alive again.

        This is what makes the service's retry ladder deterministic: a
        requeued ticket's next attempt waits here for the watchdog's
        respawn instead of failing again on a still-dead shard.
        """
        wait = self._respawn_wait if timeout is None else timeout
        deadline = time.monotonic() + wait

        def ready() -> bool:
            if self._closed.is_set():
                return True
            return all(
                self._shards[i].alive and self._shards[i].process.is_alive()
                for i in shard_ids
            )

        with self._ready:
            while not ready():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ShardError(
                        f"shards {list(shard_ids)} of {self.name!r} not "
                        f"ready within {wait:.1f}s"
                    )
                self._ready.wait(min(0.05, remaining))
        if self._closed.is_set():
            raise ShardError(f"sharded system {self.name!r} is closed")

    # Framed RPC --------------------------------------------------------

    def _send(self, shard: _Shard, header: dict) -> int:
        shard.seq += 1
        header = dict(header, id=shard.seq)
        try:
            send_msg(shard.conn, header)
        except (BrokenPipeError, EOFError, OSError):
            self._shard_failed(shard, "pipe broke on send")
        return shard.seq

    def _recv(
        self, shard: _Shard, want_id: int, timeout: float
    ) -> Tuple[dict, List[bytes]]:
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._shard_failed(
                    shard, "missed the scatter timeout", kill=True
                )
            try:
                reply, blobs = recv_msg(shard.conn, remaining)
            except ShardError:
                self._shard_failed(
                    shard, "missed the scatter timeout", kill=True
                )
            except (EOFError, OSError):
                self._shard_failed(shard, "died mid-query")
            if reply.get("id") == want_id:
                if not reply.get("ok", False):
                    self._raise_reply_error(reply)
                return reply, blobs
            # Stale reply from a scatter an earlier failure abandoned.

    def _request(
        self,
        shard: _Shard,
        header: dict,
        timeout: Optional[float] = None,
    ) -> Tuple[dict, List[bytes]]:
        want = self._send(shard, header)
        return self._recv(
            shard, want, self.scatter_timeout if timeout is None else timeout
        )

    @staticmethod
    def _raise_reply_error(reply: dict) -> None:
        """Re-raise a worker-side error under its original class.

        The class is resolved *by name* from :mod:`repro.errors` — no
        pickling — so permanent errors (analysis, schema) surface
        exactly as a local engine would raise them, and anything
        unrecognized degrades to a non-retryable ShardError.
        """
        etype = str(reply.get("etype", ""))
        message = str(reply.get("error", "shard-side failure"))
        cls = getattr(_errors, etype, None)
        if isinstance(cls, type) and issubclass(cls, H2OError):
            raise cls(message)
        exc = ShardError(f"shard-side {etype or 'failure'}: {message}")
        exc.is_retryable = bool(reply.get("retryable", False))
        raise exc

    # Catalog -----------------------------------------------------------

    def register(
        self,
        table: Table,
        replace: bool = False,
        partition_key: Optional[str] = None,
    ) -> None:
        """Partition ``table`` across the shards and ship the slices.

        ``partition_key`` names the hash attribute (defaults to the
        first schema attribute when ``shard_partition="hash"``; unused
        for range partitioning).
        """
        if self._closed.is_set():
            raise ShardError(f"sharded system {self.name!r} is closed")
        name = table.name
        if name in self._tables and not replace:
            raise CatalogError(f"table {name!r} is already registered")
        schema = table.schema
        partition = self.config.shard_partition
        key = (
            (partition_key or schema.names[0])
            if partition == "hash"
            else None
        )
        columns = {n: table.column(n) for n in schema.names}
        parts = partition_rows(
            columns, table.num_rows, self.shard_count, partition, key
        )
        state = _TableState(
            name=name,
            attr_names=tuple(schema.names),
            attr_dtypes=tuple(a.dtype.value for a in schema.attributes),
            partition=partition,
            key=key,
            num_rows=table.num_rows,
            shard_batches=[[] for _ in range(self.shard_count)],
            segments=[],
            epochs={i: 0 for i in range(self.shard_count)},
        )
        for sid, part in enumerate(parts):
            packs = self._make_packs(state, part)
            state.shard_batches[sid].append(packs)
        if replace:
            self.drop(name, missing_ok=True)
        self._tables[name] = state
        with self._io_lock:
            self._await_ready(range(self.shard_count), None)
            pending = [
                (
                    shard,
                    self._send(
                        shard,
                        {
                            "cmd": "create_table",
                            "name": name,
                            "attr_names": list(state.attr_names),
                            "attr_dtypes": list(state.attr_dtypes),
                            "packs": state.shard_batches[shard.index][0],
                        },
                    ),
                )
                for shard in self._shards
            ]
            for shard, want in pending:
                self._recv(shard, want, self.scatter_timeout)

    def _make_packs(
        self, state: _TableState, columns: Dict[str, np.ndarray]
    ) -> List[dict]:
        packs: List[dict] = []
        for attrs, block in pack_by_dtype(columns, state.attr_names):
            seg_name, _seg = create_segment(block)
            state.segments.append(seg_name)
            packs.append(
                {
                    "seg": seg_name,
                    "attrs": list(attrs),
                    "rows": int(block.shape[1]),
                    "dtype": str(block.dtype),
                }
            )
        return packs

    def drop(self, name: str, missing_ok: bool = False) -> None:
        state = self._tables.pop(name, None)
        if state is None:
            if missing_ok:
                return
            raise CatalogError(f"unknown table {name!r}")
        with self._io_lock:
            for shard in self._shards:
                if not shard.alive:
                    continue
                try:
                    self._request(shard, {"cmd": "drop", "name": name})
                except (ShardError, H2OError):
                    pass  # dying shard; respawn simply omits the table
        for seg in state.segments:
            unlink_segment(seg)

    def __contains__(self, name: object) -> bool:
        return name in self._tables

    def tables(self) -> Tuple[str, ...]:
        return tuple(self._tables)

    def num_rows(self, name: str) -> int:
        return self._state_of(name).num_rows

    def shard_epochs(self, name: str) -> Dict[int, int]:
        """Latest layout epoch each shard published for ``name``."""
        return dict(self._state_of(name).epochs)

    def _state_of(self, name: str) -> _TableState:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"unknown table {name!r} (registered: "
                + (", ".join(sorted(self._tables)) or "<none>")
                + ")"
            ) from None

    # Appends -----------------------------------------------------------

    def append_rows(self, name: str, columns) -> None:
        """Fan an append out to the owning shards (exactly-once).

        The batch is recorded in the coordinator's replay log *before*
        delivery: a shard that dies around its append gets the batch
        replayed on respawn, so delivery is exactly-once per shard and
        the append never raises for a recoverable death.

        Range partitioning appends to the tail shard (the only
        assignment preserving global row order); hash partitioning fans
        out by key.  Each receiving shard publishes its own epoch bump.
        """
        state = self._state_of(name)
        arrays = {n: np.asarray(v) for n, v in columns.items()}
        missing = [n for n in state.attr_names if n not in arrays]
        if missing:
            raise CatalogError(
                f"append to {name!r} is missing attributes: {missing}"
            )
        lengths = {len(arrays[n]) for n in state.attr_names}
        if len(lengths) != 1:
            raise CatalogError(
                f"appended columns differ in length: {lengths}"
            )
        (extra,) = lengths
        if extra == 0:
            return
        if state.partition == "hash":
            parts = partition_rows(
                arrays, extra, self.shard_count, "hash", state.key
            )
        else:
            parts = [
                {n: arrays[n][0:0] for n in state.attr_names}
                for _ in range(self.shard_count - 1)
            ] + [arrays]
        targets: List[Tuple[int, List[dict]]] = []
        for sid, part in enumerate(parts):
            rows = len(part[state.attr_names[0]])
            if rows == 0:
                continue
            packs = self._make_packs(state, part)
            state.shard_batches[sid].append(packs)
            targets.append((sid, packs))
        state.num_rows += extra
        with self._io_lock:
            for sid, packs in targets:
                shard = self._shards[sid]
                if not shard.alive:
                    continue  # the replay log delivers it on respawn
                try:
                    reply, _ = self._request(
                        shard,
                        {"cmd": "append", "name": name, "packs": packs},
                    )
                    state.epochs[sid] = int(reply.get("epoch", 0))
                except ShardError:
                    # Recorded above; respawn replay delivers it.
                    continue

    # Querying ----------------------------------------------------------

    def execute(
        self,
        query: Union[Query, str],
        deadline: Optional[float] = None,
    ) -> QueryReport:
        """Scatter one query, gather bit-identical answers."""
        started = time.perf_counter()
        if isinstance(query, str):
            query = parse_query(query)
        state = self._state_of(query.table)
        route = self._route_for(query, state)
        shard_ids = self._target_shards(query, state, route)
        budget = self.scatter_timeout
        if deadline is not None:
            budget = min(budget, max(0.0, deadline - time.monotonic()))
        self._await_ready(shard_ids, None)
        if route.is_aggregation:
            aggregates, slots, partials_sql = self._partials_for(query)
            sql, mode = partials_sql, "scalar"
        else:
            aggregates, slots = (), {}
            sql, mode = query.to_sql(), "rows"
        replies: List[Tuple[dict, List[bytes]]] = []
        with self._io_lock:
            pending = []
            for sid in shard_ids:
                shard = self._shards[sid]
                if not shard.alive:
                    self._shard_failed(shard, "is down")
                want = self._send(
                    shard,
                    {
                        "cmd": "query",
                        "sql": sql,
                        "mode": mode,
                        "budget": budget,
                    },
                )
                pending.append((shard, want))
            gather_deadline = time.monotonic() + budget
            for shard, want in pending:
                remaining = max(0.001, gather_deadline - time.monotonic())
                replies.append(self._recv(shard, want, remaining))
        result = self._gather(query, route, aggregates, slots, replies)
        seconds = time.perf_counter() - started
        self._cumulative += seconds
        state.query_index += 1
        for sid, (reply, _) in zip(shard_ids, replies):
            state.epochs[sid] = max(
                state.epochs.get(sid, 0), int(reply.get("epoch", 0))
            )
        return QueryReport(
            index=state.query_index - 1,
            query=query,
            result=result,
            seconds=seconds,
            strategy=f"sharded-scatter-gather[{len(shard_ids)}]",
            plan=(
                f"scatter {len(shard_ids)}/{self.shard_count} shards "
                f"({state.partition} partition), gather "
                f"{'partials' if route.is_aggregation else 'blocks'}"
            ),
            snapshot_epoch=max(
                (int(r.get("epoch", 0)) for r, _ in replies), default=0
            ),
            plan_cache_hit=all(
                bool(r.get("plan_cache_hit")) for r, _ in replies
            ),
            codegen_fallback=any(
                bool(r.get("codegen_fallback")) for r, _ in replies
            ),
            breaker_short_circuit=any(
                bool(r.get("breaker_short_circuit")) for r, _ in replies
            ),
            reorg_aborted=any(
                bool(r.get("reorg_aborted")) for r, _ in replies
            ),
            morsels_total=sum(
                int(r.get("morsels_total", 0)) for r, _ in replies
            ),
            morsels_pruned=sum(
                int(r.get("morsels_pruned", 0)) for r, _ in replies
            ),
            scan_threads_used=len(shard_ids),
            parallel_scan=len(shard_ids) > 1,
            shards_used=len(shard_ids),
        )

    # Routing -----------------------------------------------------------

    def _route_for(self, query: Query, state: _TableState) -> _Route:
        cache_key = (state.name, query.shape_signature())
        route = self._routes.get(cache_key)
        if route is not None:
            return route
        key_conjunct = None
        literal_side = None
        if state.partition == "hash" and state.key is not None:
            for index, conjunct in enumerate(query.predicates):
                if not isinstance(conjunct, Comparison):
                    continue
                if conjunct.op is not ComparisonOp.EQ:
                    continue
                left, right = conjunct.left, conjunct.right
                if (
                    isinstance(left, ColumnRef)
                    and left.name == state.key
                    and isinstance(right, Literal)
                ):
                    key_conjunct, literal_side = index, "right"
                    break
                if (
                    isinstance(right, ColumnRef)
                    and right.name == state.key
                    and isinstance(left, Literal)
                ):
                    key_conjunct, literal_side = index, "left"
                    break
        route = _Route(
            is_aggregation=query.is_aggregation,
            key_conjunct=key_conjunct,
            literal_side=literal_side,
        )
        self._routes[cache_key] = route
        return route

    def _target_shards(
        self, query: Query, state: _TableState, route: _Route
    ) -> List[int]:
        if route.key_conjunct is not None:
            conjunct = query.predicates[route.key_conjunct]
            literal = (
                conjunct.right
                if route.literal_side == "right"
                else conjunct.left
            )
            value = literal.value
            if isinstance(value, (int, np.integer)):
                return [hash_shard_of(int(value), self.shard_count)]
        return list(range(self.shard_count))

    # Partials rewrite + gather -----------------------------------------

    def _partials_for(
        self, query: Query
    ) -> Tuple[Tuple[Aggregate, ...], Dict[Aggregate, Optional[int]], str]:
        """Rewrite an aggregation into its partials query.

        Output 0 is always ``count(*)``; every unique non-COUNT
        aggregate gets one slot, with AVG decomposed into SUM (the
        count is shared).  ``slots`` maps each original aggregate to
        its value's position in the partials row (None = use count).
        """
        aggregates = collect_aggregates(query.select)
        outputs: List[OutputColumn] = [
            OutputColumn(Aggregate(AggregateFunc.COUNT, None), "c")
        ]
        slots: Dict[Aggregate, Optional[int]] = {}
        positions: Dict[Aggregate, int] = {}
        for agg in aggregates:
            if agg.func is AggregateFunc.COUNT:
                slots[agg] = None
                continue
            func = (
                AggregateFunc.SUM
                if agg.func is AggregateFunc.AVG
                else agg.func
            )
            rewritten = Aggregate(func, agg.arg)
            position = positions.get(rewritten)
            if position is None:
                position = len(outputs)
                positions[rewritten] = position
                outputs.append(OutputColumn(rewritten, f"s{position}"))
            slots[agg] = position
        partials = Query(query.table, tuple(outputs), query.where)
        return aggregates, slots, partials.to_sql()

    def _gather(
        self,
        query: Query,
        route: _Route,
        aggregates: Tuple[Aggregate, ...],
        slots: Dict[Aggregate, Optional[int]],
        replies: List[Tuple[dict, List[bytes]]],
    ) -> QueryResult:
        names = [out.name for out in query.select]
        if not route.is_aggregation:
            blocks = [
                decode_block(reply, blobs[0]) for reply, blobs in replies
            ]
            dtype = blocks[0].dtype if blocks else np.float64
            return QueryResult.from_blocks(
                names, [b for b in blocks if b.shape[0]], dtype
            )
        payloads = []
        for reply, blobs in replies:
            row = decode_block(reply, blobs[0])[0]
            count = float(row[0])
            states: List[Optional[float]] = []
            for agg in aggregates:
                position = slots[agg]
                if position is None:
                    states.append(None)  # COUNT: contract carries None
                elif agg.func in (AggregateFunc.SUM, AggregateFunc.AVG):
                    states.append(float(row[position]))
                else:  # MIN/MAX: None when the shard had no qualifiers
                    states.append(
                        None if count == 0 else float(row[position])
                    )
            payloads.append((count, tuple(states)))
        agg_values, _count = combine_partial_aggregates(
            aggregates, payloads
        )
        values = [
            float(finalize_output(out.expr, agg_values))
            for out in query.select
        ]
        return QueryResult.scalar_row(names, values)

    # H2OSystem-compatible surface --------------------------------------

    def run_sequence(self, queries) -> List[QueryReport]:
        return [self.execute(q) for q in queries]

    def engines(self) -> Tuple[()]:
        """Engines live in the shard processes; see :meth:`shard_health`."""
        return ()

    def cumulative_seconds(self) -> float:
        return self._cumulative

    def alive_shards(self) -> int:
        return sum(
            1
            for s in self._shards
            if s.alive and s.process.is_alive()
        )

    def shard_health(self) -> Dict[int, Optional[dict]]:
        """Per-shard engine health over the protocol (None = dead)."""
        out: Dict[int, Optional[dict]] = {}
        with self._io_lock:
            for shard in self._shards:
                if self._closed.is_set():
                    break
                if not (shard.alive and shard.process.is_alive()):
                    out[shard.index] = None
                    continue
                try:
                    reply, _ = self._request(shard, {"cmd": "health"})
                    out[shard.index] = reply
                except (ShardError, H2OError):
                    out[shard.index] = None
        return out

    def describe(self) -> str:
        lines = [
            f"H2O sharded system {self.name!r}: {self.shard_count} "
            f"shards ({self.config.shard_partition} partition), "
            f"{self.alive_shards()} alive, "
            f"{self.shard_respawns} respawn(s), "
            f"{len(self._tables)} table(s)"
        ]
        for name in sorted(self._tables):
            state = self._tables[name]
            lines.append(
                f"  - {name}: {state.num_rows} rows, epochs "
                f"{[state.epochs[i] for i in range(self.shard_count)]}"
            )
        return "\n".join(lines)

    # Lifecycle ---------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Shut shards down and unlink every owned segment (idempotent)."""
        if self._closed.is_set():
            return
        self._closed.set()
        self._watchdog_wake.set()
        self._watchdog.join(timeout)
        with self._ready:
            self._ready.notify_all()
        with self._io_lock:
            for shard in self._shards:
                if shard.alive and shard.process.is_alive():
                    try:
                        self._send(shard, {"cmd": "shutdown"})
                    except (ShardError, H2OError, OSError):
                        pass
            for shard in self._shards:
                shard.process.join(timeout)
                if shard.process.is_alive():
                    shard.process.terminate()
                    shard.process.join(1.0)
                if shard.process.is_alive():  # pragma: no cover - stuck
                    shard.process.kill()
                    shard.process.join(1.0)
                try:
                    shard.conn.close()
                except Exception:  # pragma: no cover - already closed
                    pass
                shard.alive = False
        for state in self._tables.values():
            for seg in state.segments:
                unlink_segment(seg)
        self._tables.clear()
        self._finalizer.detach()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def __enter__(self) -> "ShardedSystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
