"""Restart-recovery oracle: kill, recover, and demand bit-identity.

One seeded scenario runs the same op stream (create → interleaved
appends and queries) through two stores:

- **reference** — uninterrupted, WAL off: pure in-memory semantics;
- **crash** — WAL on; a checkpoint fires at a seeded midpoint, the
  store is abandoned (no flush, no final checkpoint — the process-death
  equivalent) at a later seeded cut, optionally with garbage bytes
  appended to the WAL to simulate a write torn mid-record, and a fresh
  :class:`~repro.gateway.persist.DurableStore` recovers from disk and
  runs the remaining ops.

Assertions:

1. **Bit-identity** — every query answered after recovery returns the
   same dtype and the same *bytes* as the reference run's answer at the
   same op index (NaNs included; this is the repo-wide invariant that
   physical layout and recovery history must never leak into answers).
2. **No re-learning ramp** — the recovered engine's adaptation state
   equals the state persisted at the checkpoint: same materialized
   layout attribute sets, same dynamic-window size, same windowed query
   count, an affinity matrix equal to the pre-crash one, and a
   plan-cache *hit* on the first re-execution of a warm shape.
3. **Torn-tail handling** — injected trailing garbage is diagnosed and
   discarded without losing any acknowledged write.
"""

from __future__ import annotations

import shutil
import struct
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import EngineConfig, GatewayConfig
from ..gateway.persist import DurableStore
from ..sql.parser import parse_query
from ..util.rng import ensure_rng
from .generate import random_case

#: Engine knobs sized so adaptation (window cycling, group creation,
#: plan-cache warmth) actually happens within one short scenario.
ORACLE_ENGINE_CONFIG = EngineConfig(
    window_size=8, min_window=4, max_window=24
)


class RestartOracleFailure(AssertionError):
    """A recovery divergence, with enough context to replay it."""


@dataclass
class RestartEvidence:
    """What one scenario exercised (returned on success)."""

    seed: int
    ops: int
    queries_compared: int
    appends: int
    checkpoint_at: int
    cut_at: int
    torn_tail_injected: bool
    replayed_records: int
    recovered_layouts: Tuple[Tuple[str, ...], ...] = ()
    plan_cache_warm: bool = False

    def describe(self) -> str:
        return (
            f"seed={self.seed} ops={self.ops} "
            f"compared={self.queries_compared} appends={self.appends} "
            f"checkpoint@{self.checkpoint_at} cut@{self.cut_at} "
            f"torn={self.torn_tail_injected} "
            f"replayed={self.replayed_records} "
            f"warm={self.plan_cache_warm}"
        )


@dataclass
class _Scenario:
    """The seeded op stream, fully determined by the seed."""

    seed: int
    table: str
    attributes: List[Tuple[str, str]]
    initial_columns: Dict[str, np.ndarray]
    #: ("append", columns) | ("query", sql), executed in order.
    ops: List[Tuple[str, object]] = field(default_factory=list)
    checkpoint_at: int = 0
    cut_at: int = 0
    torn_tail: bool = False


def _build_scenario(seed: int) -> _Scenario:
    spec = random_case(seed)
    table = spec.build_table()
    columns = {
        name: table.column(name).copy() for name in table.schema.names
    }
    scenario = _Scenario(
        seed=seed,
        table=spec.table_name,
        attributes=[
            (attr.name, attr.dtype.value) for attr in table.schema
        ],
        initial_columns=columns,
    )
    rng = ensure_rng(seed ^ 0x5EED1E57)
    for sql in spec.queries:
        if rng.random() < 0.3:
            rows = int(rng.integers(1, 33))
            batch = {
                name: rng.integers(-1000, 1000, size=rows, dtype=np.int64)
                for name in table.schema.names
            }
            scenario.ops.append(("append", batch))
        scenario.ops.append(("query", sql))
    total = len(scenario.ops)
    # Checkpoint after roughly a third of the stream (so learned state
    # exists to persist), cut strictly later with at least one op left.
    scenario.checkpoint_at = max(1, total // 3)
    scenario.cut_at = int(
        rng.integers(scenario.checkpoint_at + 1, total)
    )
    scenario.torn_tail = bool(rng.random() < 0.5)
    return scenario


def _open_store(
    data_dir: Path, wal: bool, engine_config: EngineConfig
) -> DurableStore:
    return DurableStore(
        data_dir,
        engine_config=engine_config,
        gateway_config=GatewayConfig(
            wal_enabled=wal,
            wal_fsync=wal,
            snapshot_every_records=0,  # manual checkpoint only
        ),
        num_workers=2,
        default_timeout=60.0,
    )


def _run_op(store: DurableStore, table: str, op: Tuple[str, object]):
    kind, payload = op
    if kind == "append":
        store.append(table, payload)  # type: ignore[arg-type]
        return None
    report = store.execute(payload)  # type: ignore[arg-type]
    return report.result


def _result_key(result) -> Tuple[str, Tuple[int, ...], bytes]:
    data = result.data
    return (str(data.dtype), tuple(data.shape), data.tobytes())


def _engine_fingerprint(store: DurableStore, table: str) -> Dict[str, object]:
    engine = store.system.engine_for(table)
    return {
        "layouts": tuple(
            sorted(
                tuple(layout.attrs)
                for layout in store.system.catalog.get(table).layouts
            )
        ),
        "window_size": engine.window.size,
        "windowed": len(engine.monitor),
        "queries_seen": engine.monitor.queries_seen,
        "select_affinity": engine.monitor.select_affinity.matrix.copy(),
        "where_affinity": engine.monitor.where_affinity.matrix.copy(),
        "warmup_sql": list(engine.adaptation_state()["warmup_sql"]),
        "policy": engine.policy.export(),
    }


def restart_case(
    seed: int,
    base_dir: Optional[Path] = None,
    engine_config: Optional[EngineConfig] = None,
) -> RestartEvidence:
    """Run one seeded kill/recover scenario; raise on any divergence."""
    engine_config = engine_config or ORACLE_ENGINE_CONFIG
    scenario = _build_scenario(seed)
    work_dir = Path(
        base_dir if base_dir is not None else tempfile.mkdtemp()
    )
    owns_dir = base_dir is None
    try:
        return _run_scenario(scenario, work_dir, engine_config)
    finally:
        if owns_dir:
            shutil.rmtree(work_dir, ignore_errors=True)


def _run_scenario(
    scenario: _Scenario, work_dir: Path, engine_config: EngineConfig
) -> RestartEvidence:
    seed = scenario.seed

    def fail(message: str) -> "RestartOracleFailure":
        return RestartOracleFailure(
            f"restart oracle seed {seed}: {message} "
            f"(checkpoint@{scenario.checkpoint_at}, cut@"
            f"{scenario.cut_at}, torn={scenario.torn_tail})"
        )

    # ---- reference: uninterrupted, WAL off --------------------------------
    reference = _open_store(work_dir / "ref", wal=False,
                            engine_config=engine_config)
    try:
        reference.create_table(
            scenario.table, scenario.attributes, scenario.initial_columns
        )
        expected: Dict[int, Tuple[str, Tuple[int, ...], bytes]] = {}
        for index, op in enumerate(scenario.ops):
            result = _run_op(reference, scenario.table, op)
            if result is not None:
                expected[index] = _result_key(result)
    finally:
        reference.close(checkpoint=False)

    # ---- crash run: checkpoint, keep going, die ---------------------------
    crash_dir = work_dir / "crash"
    store = _open_store(crash_dir, wal=True, engine_config=engine_config)
    fingerprint: Optional[Dict[str, object]] = None
    try:
        store.create_table(
            scenario.table, scenario.attributes, scenario.initial_columns
        )
        for index, op in enumerate(scenario.ops[: scenario.cut_at]):
            result = _run_op(store, scenario.table, op)
            if result is not None and _result_key(result) != expected[index]:
                raise fail(
                    f"pre-crash divergence at op {index} — the two runs "
                    "disagree before any crash was involved"
                )
            if index == scenario.checkpoint_at:
                store.checkpoint()
                fingerprint = _engine_fingerprint(store, scenario.table)
    finally:
        store.abandon()  # the kill: no flush, no final checkpoint
    if fingerprint is None:
        raise fail("scenario never reached its checkpoint")

    if scenario.torn_tail:
        # A record claiming 4096 payload bytes of which 7 arrived.
        with open(crash_dir / "wal.log", "ab") as handle:
            handle.write(struct.pack("<II", 4096, 0xDEADBEEF) + b"partial")

    # ---- recovery ---------------------------------------------------------
    recovered = _open_store(
        crash_dir, wal=True, engine_config=engine_config
    )
    try:
        stats = recovered.stats()
        if not stats["recovered"]:
            raise fail("store did not report recovery")
        if scenario.torn_tail and not stats["torn_tail_discarded"]:
            raise fail("injected torn tail was not diagnosed")

        # (2) no re-learning ramp: state matches the checkpoint exactly.
        post = _engine_fingerprint(recovered, scenario.table)
        for key in ("window_size", "windowed", "queries_seen"):
            if post[key] != fingerprint[key]:
                raise fail(
                    f"adaptation state {key!r} re-ramped: checkpoint had "
                    f"{fingerprint[key]}, recovery has {post[key]}"
                )
        for key in ("select_affinity", "where_affinity"):
            if not np.array_equal(post[key], fingerprint[key]):
                raise fail(f"{key} matrix diverged across recovery")
        if post["policy"] != fingerprint["policy"]:
            raise fail(
                "switching-policy ledger diverged across recovery: "
                f"checkpoint had {fingerprint['policy']}, recovery has "
                f"{post['policy']}"
            )
        missing = set(fingerprint["layouts"]) - set(post["layouts"])
        if missing:
            raise fail(
                f"checkpointed layouts were not recovered: {sorted(missing)}"
            )

        # Plan-cache warmth: the first repeat of a persisted warm shape
        # must ride the fast lane — unless that very query triggers a
        # reorganization (the restored window can legitimately be one
        # query away from adapting, which bumps the epoch and is a miss
        # with or without a crash in between).
        plan_cache_warm = False
        # Attribute-free shapes (`SELECT count(*) ...`) are never cached
        # by design, so probe the most recent warm shape that actually
        # touches attributes.
        warmup_sql = [
            sql
            for sql in fingerprint["warmup_sql"]
            if parse_query(sql).attributes
        ]
        if warmup_sql:
            engine = recovered.system.engine_for(scenario.table)
            before = (
                engine.window.shrink_events,
                engine.window.grow_events,
                engine.window.since_adaptation,
            )
            report = recovered.execute(warmup_sql[-1])
            after = (
                engine.window.shrink_events,
                engine.window.grow_events,
                engine.window.since_adaptation,
            )
            adapted = (
                after[:2] != before[:2] or after[2] < before[2]
            )
            plan_cache_warm = bool(report.plan_cache_hit)
            if not plan_cache_warm and not adapted:
                raise fail(
                    "first re-execution of a persisted warm shape missed "
                    "the plan cache — the adaptation ramp was re-paid"
                )

        # (1) bit-identity on everything after the cut.
        compared = 0
        for index in range(scenario.cut_at, len(scenario.ops)):
            result = _run_op(
                recovered, scenario.table, scenario.ops[index]
            )
            if result is None:
                continue
            compared += 1
            if _result_key(result) != expected[index]:
                exp_dtype, exp_shape, _ = expected[index]
                got = result.data
                raise fail(
                    f"post-recovery answer at op {index} diverged: "
                    f"expected {exp_dtype}{exp_shape}, got "
                    f"{got.dtype}{got.shape} with different bytes"
                )
        return RestartEvidence(
            seed=seed,
            ops=len(scenario.ops),
            queries_compared=compared,
            appends=sum(
                1 for kind, _ in scenario.ops if kind == "append"
            ),
            checkpoint_at=scenario.checkpoint_at,
            cut_at=scenario.cut_at,
            torn_tail_injected=scenario.torn_tail,
            replayed_records=int(stats["replayed_records"]),
            recovered_layouts=tuple(post["layouts"]),
            plan_cache_warm=plan_cache_warm,
        )
    finally:
        recovered.close(checkpoint=False)
