"""The differential oracle: adaptation must be invisible in answers.

One generated :class:`~repro.testkit.generate.CaseSpec` is executed
through ten independent paths, each over its *own* copy of the same
deterministic data:

1. **row reference** — the static row-store baseline, interpreted
   (no codegen): the ground truth, sharing as little machinery with the
   adaptive paths as possible;
2. **volcano** — the generic interpreted Volcano evaluator over the
   initial column layouts (a :class:`~repro.baselines.base.StaticEngine`
   with codegen off);
3. **column baseline** — the late-materialization column store;
4. **adaptive inline** — the full H2O engine, paper defaults with a
   small adaptation window so advisor runs, online reorganizations and
   plan-cache hits all happen inside a short sequence;
5. **adaptive interpreted** — the same engine with codegen disabled;
6. **adaptive background** — the engine behind the concurrent service
   with N workers and the background adaptation scheduler;
7. **adaptive parallel** — the full engine with morsel-driven parallel
   scans on a dedicated 4-thread :class:`~repro.execution.parallel.
   ScanPool` and tiny morsels (so even small cases split into many),
   checked both against the row reference and against a morsel-serial
   twin: answers bit-identical *and* ``morsels_pruned`` equal — the
   zone-map pruning decision must not depend on the thread count;
8. **adaptive sharded** — a 2-shard :class:`~repro.sharding.coordinator.
   ShardedSystem`: the table range-partitioned across two worker
   *processes* (each running its own full adaptive engine over a
   shared-memory slice), answers gathered via the per-morsel combine
   contract in shard-index order — partitioning must be invisible in
   answers, and each shard's published layout epoch must stay
   monotone;
9. **adaptive guarded** — the full engine under the regret-bounded
   switching policy (``adaptation_policy="guarded"``, see
   docs/adaptation.md): materializations may be *deferred* but answers
   must stay bit-identical, and the policy's regret invariant
   (hedged reorganization spend never exceeds accrued benefit at
   switch) must hold at the end of the sequence;
10. **adaptive clustered+encoded** — the full engine with adaptive
    clustering *and* encoded column layouts enabled
    (``adaptive_clustering=True, encoded_layouts=True`` with tiny
    row minimums so even small cases cluster and encode): the
    reorganizer may permute the table's physical row order and add
    dictionary/bit-packed replicas mid-sequence.  Aggregations must
    stay bit-identical; projections are compared as *multisets*
    (canonical row sort on both sides — SQL semantics don't fix row
    order, and clustering legitimately changes it).  After the
    sequence the oracle re-derives every cached zone map from the
    layout's decoded values and asserts **exact** equality (clustering
    must never leave stale or merely-conservative bounds behind), and
    the physical + policy-ledger invariants must hold throughout.

The module also hosts the **scenario-replay oracle**
(:func:`scenario_case` / :func:`run_all_scenarios`, exposed as
``python -m repro.testkit scenarios``): every adversarial scenario in
:mod:`repro.workloads.scenarios` — queries *and* appends — is replayed
under both switching policies against the row reference, asserting
bit-identical answers, the physical invariants after every query, and
the guarded policy's regret invariant.

Every mode must produce **bit-identical** :class:`~repro.execution.
result.QueryResult` data (the generator bounds values so all float64
arithmetic is exact), and after every step the adaptive engines must
satisfy the physical invariants:

- layout **epoch monotonicity** (a snapshot's epoch never regresses);
- **snapshot row-count consistency** (every layout in a snapshot has
  exactly the snapshot's row count — no torn layout set);
- **coverage** (the union of layout attribute sets covers the schema);
- **operator-cache key/source agreement** (every cached kernel still
  carries the exact source it was compiled from).

The fault pass then re-runs the sequence with a seeded
:class:`~repro.testkit.faults.FaultInjector` installed and asserts that
every fired fault surfaces as the documented exception or a *counted*
clean fallback — and that every query that did answer still answered
identically to the reference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.base import StaticEngine
from ..baselines.column_engine import ColumnStoreEngine
from ..baselines.row_engine import RowStoreEngine
from ..config import EngineConfig
from ..core.engine import H2OEngine
from ..execution.result import QueryResult
from ..service.service import H2OService
from ..sql.parser import parse_query
from ..util.rng import derive_rng
from .faults import FaultInjector, random_schedule
from .generate import CaseSpec

#: Adaptation knobs used by the oracle's adaptive modes: a small window
#: so short sequences still exercise advisor runs, reorganizations and
#: the plan cache.
ORACLE_CONFIG = dict(
    window_size=4,
    min_window=2,
    max_window=12,
    amortization_threshold=1.0,
)

CLEAN_MODES = (
    "volcano",
    "column",
    "adaptive-inline",
    "adaptive-interpreted",
    "adaptive-background",
    "adaptive-parallel",
    "adaptive-sharded",
    "adaptive-guarded",
    "adaptive-clustered-encoded",
)


class OracleFailure(AssertionError):
    """A divergence, invariant violation, or unaccounted fault."""


@dataclass
class SequenceResult:
    """What one oracle sequence executed and observed."""

    spec: CaseSpec
    modes: Tuple[str, ...]
    queries_checked: int = 0
    #: point → number of injected faults that actually fired.
    fired_faults: Dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0

    def describe(self) -> str:
        fired = sum(self.fired_faults.values())
        return (
            f"{self.spec.describe()} — {self.queries_checked} answers "
            f"checked, {fired} fault(s) fired, {self.seconds:.2f}s"
        )


# Result comparison ----------------------------------------------------------


def results_identical(a: QueryResult, b: QueryResult) -> bool:
    """Bit-identical modulo float64 widening (NaN compares equal).

    The generator bounds values so every sum/product is exactly
    representable in float64; engines may carry int64 or float64
    internally, but the *values* must match exactly.
    """
    if a.column_names != b.column_names:
        return False
    if a.data.shape != b.data.shape:
        return False
    mine = np.asarray(a.data, dtype=np.float64)
    theirs = np.asarray(b.data, dtype=np.float64)
    return bool(np.array_equal(mine, theirs, equal_nan=True))


def _canonical_rows(data: np.ndarray) -> np.ndarray:
    """Rows sorted into a canonical order for multiset comparison.

    Sorts on the float64 *bit patterns* (last column least significant)
    so NaN payloads and -0.0 vs +0.0 land deterministically — two
    multiset-equal results canonicalize to bit-identical arrays.
    """
    rows = np.ascontiguousarray(data, dtype=np.float64)
    if rows.ndim == 1:
        rows = rows.reshape(-1, 1)
    bits = rows.view(np.int64)
    if bits.shape[0] <= 1:
        return bits
    order = np.lexsort(tuple(bits[:, j] for j in range(bits.shape[1] - 1, -1, -1)))
    return bits[order]


def results_multiset_identical(a: QueryResult, b: QueryResult) -> bool:
    """Bit-identical as *row multisets* (SQL semantics for projections).

    Adaptive clustering permutes the table's physical row order, so a
    projection's rows may come back in a different — equally valid —
    order.  Both sides are canonically sorted before the bit-exact
    compare, which keeps the check as strong as
    :func:`results_identical` on everything except row order.
    """
    if a.column_names != b.column_names:
        return False
    if a.data.shape != b.data.shape:
        return False
    # Canonical rows are int64 bit views: plain equality is bit-exact
    # (each NaN payload only equals itself, -0.0 never equals +0.0).
    mine = _canonical_rows(a.data)
    theirs = _canonical_rows(b.data)
    return bool(np.array_equal(mine, theirs))


def _describe_divergence(
    index: int, sql: str, got: QueryResult, want: QueryResult, mode: str
) -> str:
    return (
        f"[{mode}] query #{index} diverged from the row reference\n"
        f"  sql:  {sql}\n"
        f"  want: shape={want.data.shape} {want.rows()[:3]}\n"
        f"  got:  shape={got.data.shape} {got.rows()[:3]}"
    )


# Invariant checks -----------------------------------------------------------


def check_engine_invariants(
    engine: H2OEngine, last_epoch: int, label: str
) -> int:
    """Assert the physical invariants; returns the current epoch."""
    snapshot = engine.table.snapshot()
    if snapshot.epoch < last_epoch:
        raise OracleFailure(
            f"[{label}] layout epoch regressed: {snapshot.epoch} < "
            f"{last_epoch}"
        )
    for layout in snapshot.layouts:
        if layout.num_rows != snapshot.num_rows:
            raise OracleFailure(
                f"[{label}] torn snapshot: layout {layout.describe()} has "
                f"{layout.num_rows} rows, snapshot has {snapshot.num_rows}"
            )
    covered: set = set()
    for layout in snapshot.layouts:
        covered |= layout.attr_set
    missing = set(engine.table.schema.names) - covered
    if missing:
        raise OracleFailure(
            f"[{label}] layouts no longer cover the schema; missing "
            f"{sorted(missing)}"
        )
    for key, entry in engine.executor.operator_cache.entries():
        source = getattr(entry.kernel, "__h2o_source__", None)
        if source != entry.source:
            raise OracleFailure(
                f"[{label}] operator-cache key/source disagreement for "
                f"key {key!r}: the cached kernel was not compiled from "
                f"the cached source"
            )
    return snapshot.epoch


def check_zone_map_exactness(engine: H2OEngine, label: str) -> None:
    """Every cached zone map must match a from-scratch recompute exactly.

    Clustering rebuilds zone maps eagerly after permuting rows and
    encoded replicas build theirs over *decoded* values; either path
    leaving stale or merely-conservative bounds behind would silently
    weaken pruning (or worse, prune a qualifying morsel).  Recomputing
    per-morsel min/max from ``layout.column(attr)`` and demanding exact
    equality catches both directions.
    """
    from ..storage.zonemap import _minmax_per_morsel, cached_zone_maps

    snapshot = engine.table.snapshot()
    for layout in snapshot.layouts:
        maps = cached_zone_maps(layout)
        if maps is None:
            continue
        if maps.num_rows != layout.num_rows:
            raise OracleFailure(
                f"[{label}] stale zone map on {layout.describe()}: maps "
                f"cover {maps.num_rows} rows, layout has {layout.num_rows}"
            )
        for attr in maps.attrs:
            mins, maxs = maps.stats_for(attr)
            true_mins, true_maxs = _minmax_per_morsel(
                layout.column(attr), maps.morsel_rows
            )
            if not (
                np.array_equal(
                    np.asarray(mins, dtype=np.float64),
                    np.asarray(true_mins, dtype=np.float64),
                    equal_nan=True,
                )
                and np.array_equal(
                    np.asarray(maxs, dtype=np.float64),
                    np.asarray(true_maxs, dtype=np.float64),
                    equal_nan=True,
                )
            ):
                raise OracleFailure(
                    f"[{label}] zone map for {attr!r} on "
                    f"{layout.describe()} is not exact after adaptation"
                )


def check_cluster_telemetry(engine: H2OEngine, label: str) -> None:
    """``clustered_fraction`` must be honest bookkeeping."""
    table = engine.table
    fraction = table.clustered_fraction
    if not (0.0 <= fraction <= 1.0):
        raise OracleFailure(
            f"[{label}] clustered_fraction out of range: {fraction}"
        )
    if table.cluster_key is None and fraction != 0.0:
        raise OracleFailure(
            f"[{label}] no cluster key but clustered_fraction={fraction}"
        )
    if table.clustered_rows > table.num_rows:
        raise OracleFailure(
            f"[{label}] clustered_rows {table.clustered_rows} exceeds "
            f"table rows {table.num_rows}"
        )


def check_policy_invariants(engine: H2OEngine, label: str) -> None:
    """The switching policy's own bookkeeping must be sound.

    - the **regret invariant**: ``hedging_factor * invested_cost <=
      accrued_at_switch`` (every granted switch had already accrued its
      hedged build cost);
    - every switch record individually carries enough accrued benefit
      for its hedged cost;
    - in a serial replay, the ledgered switch count equals the layouts
      the manager actually built (no unledgered reorganization).
    """
    policy = engine.policy
    if not policy.regret_bound_satisfied():
        raise OracleFailure(
            f"[{label}] regret invariant violated: "
            f"{policy.hedging_factor} * {policy.invested_cost} > "
            f"{policy.accrued_at_switch}"
        )
    for record in policy.switches:
        if record.accrued + 1e-9 < (
            record.hedging_factor * record.build_cost
        ):
            raise OracleFailure(
                f"[{label}] switch to {record.attrs} granted with "
                f"accrued {record.accrued} < hedged cost "
                f"{record.hedging_factor} * {record.build_cost}"
            )
    built = len(engine.manager.creation_log)
    if policy.switch_count != built:
        raise OracleFailure(
            f"[{label}] policy ledgered {policy.switch_count} "
            f"switch(es) but the layout manager built {built} — "
            f"an unledgered reorganization"
        )


# The oracle -----------------------------------------------------------------


class DifferentialOracle:
    """Runs one spec through every mode and the fault pass."""

    def __init__(
        self,
        *,
        workers: int = 3,
        with_faults: bool = True,
        faults_per_point: int = 2,
    ) -> None:
        self.workers = workers
        self.with_faults = with_faults
        self.faults_per_point = faults_per_point

    # Engine/config factories ---------------------------------------------

    def _adaptive_config(self, **overrides: object) -> EngineConfig:
        merged = dict(ORACLE_CONFIG)
        merged.update(overrides)
        return EngineConfig(**merged)

    # Reference ------------------------------------------------------------

    def reference_results(self, spec: CaseSpec) -> List[QueryResult]:
        """Ground truth: the interpreted row baseline."""
        engine = RowStoreEngine(
            spec.build_table(), EngineConfig(use_codegen=False)
        )
        return [engine.execute(q).result for q in spec.parsed()]

    # Clean differential modes ---------------------------------------------

    def run_case(self, spec: CaseSpec) -> SequenceResult:
        """Run every mode + the fault pass; raises OracleFailure."""
        started = time.perf_counter()
        expected = self.reference_results(spec)
        outcome = SequenceResult(spec=spec, modes=CLEAN_MODES)
        self._run_static(
            spec,
            expected,
            StaticEngine(spec.build_table(), EngineConfig(use_codegen=False)),
            "volcano",
        )
        self._run_static(
            spec, expected, ColumnStoreEngine(spec.build_table()), "column"
        )
        self._run_adaptive(spec, expected, use_codegen=True)
        self._run_adaptive(spec, expected, use_codegen=False)
        self._run_service(spec, expected)
        self._run_adaptive_parallel(spec, expected)
        self._run_sharded(spec, expected)
        self._run_adaptive_guarded(spec, expected)
        self._run_adaptive_clustered_encoded(spec, expected)
        outcome.queries_checked = len(expected) * (len(CLEAN_MODES) + 1)
        if self.with_faults:
            fired_inline = self._run_faulted_inline(spec, expected)
            fired_service = self._run_faulted_service(spec, expected)
            for point, count in {**fired_inline, **fired_service}.items():
                outcome.fired_faults[point] = (
                    fired_inline.get(point, 0) + fired_service.get(point, 0)
                )
        outcome.seconds = time.perf_counter() - started
        return outcome

    def _run_static(
        self,
        spec: CaseSpec,
        expected: Sequence[QueryResult],
        engine,
        mode: str,
    ) -> None:
        for index, query in enumerate(spec.parsed()):
            got = engine.execute(query).result
            if not results_identical(got, expected[index]):
                raise OracleFailure(
                    _describe_divergence(
                        index, spec.queries[index], got, expected[index], mode
                    )
                )

    def _run_adaptive(
        self,
        spec: CaseSpec,
        expected: Sequence[QueryResult],
        use_codegen: bool,
    ) -> None:
        mode = "adaptive-inline" if use_codegen else "adaptive-interpreted"
        engine = H2OEngine(
            spec.build_table(),
            self._adaptive_config(use_codegen=use_codegen),
        )
        epoch = 0
        for index, query in enumerate(spec.parsed()):
            report = engine.execute(query)
            if not results_identical(report.result, expected[index]):
                raise OracleFailure(
                    _describe_divergence(
                        index,
                        spec.queries[index],
                        report.result,
                        expected[index],
                        mode,
                    )
                )
            epoch = check_engine_invariants(engine, epoch, mode)
            if report.snapshot_epoch > epoch:
                raise OracleFailure(
                    f"[{mode}] report pinned epoch {report.snapshot_epoch} "
                    f"newer than the table's {epoch}"
                )

    def _run_adaptive_parallel(
        self, spec: CaseSpec, expected: Sequence[QueryResult]
    ) -> None:
        """Parallel morsel path vs a morsel-serial twin of itself.

        Both engines share every adaptive knob (tiny morsels so even a
        small case splits into many, threshold 1 so every scan is
        parallel-eligible); only ``parallel_scans`` differs, and the
        parallel engine gets a dedicated 4-thread pool so the check is
        independent of the host's core count.  Adaptation is
        deterministic and blind to the thread count, so the two engines
        evolve identical layouts — which lets the oracle assert the
        *stronger* property: per query, answers are bit-identical to
        the row reference **and** ``morsels_pruned`` matches between
        parallel and serial execution (zone-map pruning must be a pure
        function of data + predicate, never of scheduling).
        """
        from ..execution.parallel import ScanPool

        mode = "adaptive-parallel"
        morsel_knobs = dict(
            vector_size=64,
            morsel_rows=128,
            max_scan_threads=4,
        )
        engine = H2OEngine(
            spec.build_table(),
            self._adaptive_config(
                parallel_threshold_rows=1, **morsel_knobs
            ),
        )
        engine.executor.scan_pool = ScanPool(max_threads=4)
        twin = H2OEngine(
            spec.build_table(),
            self._adaptive_config(parallel_scans=False, **morsel_knobs),
        )
        epoch = 0
        for index, query in enumerate(spec.parsed()):
            report = engine.execute(query)
            twin_report = twin.execute(query)
            if not results_identical(report.result, expected[index]):
                raise OracleFailure(
                    _describe_divergence(
                        index,
                        spec.queries[index],
                        report.result,
                        expected[index],
                        mode,
                    )
                )
            if not results_identical(report.result, twin_report.result):
                raise OracleFailure(
                    _describe_divergence(
                        index,
                        spec.queries[index],
                        report.result,
                        twin_report.result,
                        f"{mode} (vs morsel-serial twin)",
                    )
                )
            if report.morsels_pruned != twin_report.morsels_pruned:
                raise OracleFailure(
                    f"[{mode}] query #{index} pruning diverged between "
                    f"parallel ({report.morsels_pruned}/"
                    f"{report.morsels_total}) and serial "
                    f"({twin_report.morsels_pruned}/"
                    f"{twin_report.morsels_total}) execution\n"
                    f"  sql: {spec.queries[index]}"
                )
            epoch = check_engine_invariants(engine, epoch, mode)

    def _run_sharded(
        self, spec: CaseSpec, expected: Sequence[QueryResult]
    ) -> None:
        """Two shard processes over shared-memory slices vs the reference.

        Each shard runs the full adaptive engine (small oracle window,
        so advisor runs and reorganizations happen *inside the worker
        processes*) on its half of the rows; the coordinator rewrites
        aggregations into partials and folds them in shard-index order.
        Beyond bit-identity, the oracle asserts per-shard layout-epoch
        monotonicity — each shard adapts independently, and its
        published epoch must never regress across the sequence.
        """
        from ..core.system import build_system

        mode = "adaptive-sharded"
        system = build_system(self._adaptive_config(shard_count=2))
        try:
            system.register(spec.build_table())
            last_epochs = system.shard_epochs(spec.table_name)
            for index, query in enumerate(spec.parsed()):
                report = system.execute(query)
                if not results_identical(report.result, expected[index]):
                    raise OracleFailure(
                        _describe_divergence(
                            index,
                            spec.queries[index],
                            report.result,
                            expected[index],
                            mode,
                        )
                    )
                if report.shards_used != 2:
                    raise OracleFailure(
                        f"[{mode}] query #{index} used "
                        f"{report.shards_used} shard(s), expected 2 "
                        f"(range partitioning scatters everywhere)"
                    )
                epochs = system.shard_epochs(spec.table_name)
                for sid, epoch in epochs.items():
                    if epoch < last_epochs[sid]:
                        raise OracleFailure(
                            f"[{mode}] shard {sid} layout epoch "
                            f"regressed: {epoch} < {last_epochs[sid]}"
                        )
                last_epochs = epochs
        finally:
            system.close()

    def _run_adaptive_guarded(
        self, spec: CaseSpec, expected: Sequence[QueryResult]
    ) -> None:
        """The ninth path: the regret-bounded switching policy.

        Same adaptive knobs as ``adaptive-inline`` but with
        ``adaptation_policy="guarded"`` — materializations the greedy
        engine performs immediately may be deferred or skipped here,
        which must be invisible in answers.  Beyond bit-identity and
        the physical invariants, the oracle asserts the policy's own
        regret invariant and that its deferral/switch ledger is
        consistent with the layouts actually built.
        """
        mode = "adaptive-guarded"
        engine = H2OEngine(
            spec.build_table(),
            self._adaptive_config(
                adaptation_policy="guarded", hedging_factor=2.0
            ),
        )
        epoch = 0
        for index, query in enumerate(spec.parsed()):
            report = engine.execute(query)
            if not results_identical(report.result, expected[index]):
                raise OracleFailure(
                    _describe_divergence(
                        index,
                        spec.queries[index],
                        report.result,
                        expected[index],
                        mode,
                    )
                )
            epoch = check_engine_invariants(engine, epoch, mode)
        check_policy_invariants(engine, mode)

    def _run_adaptive_clustered_encoded(
        self, spec: CaseSpec, expected: Sequence[QueryResult]
    ) -> None:
        """The tenth path: adaptive clustering + encoded layouts.

        Same adaptive knobs as ``adaptive-inline`` plus
        ``adaptive_clustering`` and ``encoded_layouts`` with tiny row
        minimums, so even small oracle cases trigger physical
        transforms that *permute row order* and add dictionary /
        bit-packed replicas mid-sequence.  Aggregations must stay
        bit-identical to the row reference; projections are compared
        as canonical-sorted multisets (row order is not part of SQL
        semantics, and clustering legitimately changes it).  After the
        sequence: zone maps must recompute exactly, clustering
        telemetry must be honest, and the switch ledger must balance
        against the layouts/transforms actually built.
        """
        mode = "adaptive-clustered-encoded"
        engine = H2OEngine(
            spec.build_table(),
            self._adaptive_config(
                adaptive_clustering=True,
                encoded_layouts=True,
                cluster_rows_min=64,
                encoding_min_rows=64,
            ),
        )
        epoch = 0
        queries = spec.parsed()
        for index, query in enumerate(queries):
            report = engine.execute(query)
            same = (
                results_identical(report.result, expected[index])
                if query.is_aggregation
                else results_multiset_identical(
                    report.result, expected[index]
                )
            )
            if not same:
                raise OracleFailure(
                    _describe_divergence(
                        index,
                        spec.queries[index],
                        report.result,
                        expected[index],
                        mode,
                    )
                )
            epoch = check_engine_invariants(engine, epoch, mode)
        check_zone_map_exactness(engine, mode)
        check_cluster_telemetry(engine, mode)
        check_policy_invariants(engine, mode)

    def _run_service(
        self, spec: CaseSpec, expected: Sequence[QueryResult]
    ) -> None:
        mode = "adaptive-background"
        service = H2OService(
            config=self._adaptive_config(adaptation_mode="background"),
            num_workers=self.workers,
            max_pending=4 * max(1, len(spec.queries)),
            name="oracle-service",
        )
        try:
            service.register(spec.build_table())
            engine = service.system.engine_for(spec.table_name)
            epoch = 0
            # Submit the whole sequence concurrently — workers interleave
            # shapes while the background scheduler publishes layouts.
            futures = [
                service.submit(sql, timeout=120.0) for sql in spec.queries
            ]
            for index, future in enumerate(futures):
                report = future.result(120.0)
                if not results_identical(report.result, expected[index]):
                    raise OracleFailure(
                        _describe_divergence(
                            index,
                            spec.queries[index],
                            report.result,
                            expected[index],
                            mode,
                        )
                    )
                epoch = check_engine_invariants(engine, epoch, mode)
        finally:
            service.close()

    # Fault passes ---------------------------------------------------------

    def _run_faulted_inline(
        self,
        spec: CaseSpec,
        expected: Sequence[QueryResult],
        rng_tag: str = "inline",
    ) -> Dict[str, int]:
        """Inline engine under compile + online-stitch faults.

        Both fault kinds have *fallback* semantics: every query must
        still be answered, identically, and every fired fault must be
        visible in the engine's counters afterwards.
        """
        mode = f"faults-{rng_tag}"
        engine = H2OEngine(spec.build_table(), self._adaptive_config())
        schedule = random_schedule(
            derive_rng(spec.seed, "faults", rng_tag),
            horizon=max(4, 2 * len(spec.queries)),
            faults_per_point=self.faults_per_point,
            points=("codegen.compile", "reorg.online"),
        )
        injector = FaultInjector(schedule)
        epoch = 0
        with injector:
            for index, query in enumerate(spec.parsed()):
                report = engine.execute(query)
                if not results_identical(report.result, expected[index]):
                    raise OracleFailure(
                        _describe_divergence(
                            index,
                            spec.queries[index],
                            report.result,
                            expected[index],
                            mode,
                        )
                    )
                epoch = check_engine_invariants(engine, epoch, mode)
        fired = injector.fired_by_point()
        if engine.executor.codegen_fallbacks != fired.get(
            "codegen.compile", 0
        ):
            raise OracleFailure(
                f"[{mode}] {fired.get('codegen.compile', 0)} compile "
                f"fault(s) fired but the executor recorded "
                f"{engine.executor.codegen_fallbacks} interpreted "
                f"fallback(s) — a fault was swallowed silently"
            )
        if engine.reorg_aborts != fired.get("reorg.online", 0):
            raise OracleFailure(
                f"[{mode}] {fired.get('reorg.online', 0)} online-stitch "
                f"abort(s) fired but the engine recorded "
                f"{engine.reorg_aborts} — a fault was swallowed silently"
            )
        return fired

    def _run_faulted_service(
        self,
        spec: CaseSpec,
        expected: Sequence[QueryResult],
        rng_tag: str = "service",
    ) -> Dict[str, int]:
        """Service under compile, offline-stitch, worker-death and
        transient-execute faults — every one *absorbed*.

        The self-healing ladder (docs/resilience.md) means none of
        these may reach a waiter: a worker death requeues the ticket
        (the watchdog heals the pool), a transient execute failure is
        retried under the attempt budget, a compile failure falls back
        interpreted, an offline stitch abort is counted and the
        candidate quarantined.  Every query must therefore be answered
        **bit-identically** — a surfaced exception is an oracle
        failure — and every absorbed fault must show up in the evidence
        counters with *exact* equality, so a silently swallowed fault
        fails the run just as loudly as a crash.

        ``max_query_attempts`` is set above the worst case a schedule
        can stack on one ticket (``faults_per_point`` worker deaths +
        ``faults_per_point`` transient failures), so absorption is a
        guarantee, not luck.
        """
        mode = f"faults-{rng_tag}"
        service = H2OService(
            config=self._adaptive_config(adaptation_mode="background"),
            num_workers=self.workers,
            max_pending=4 * max(1, len(spec.queries)),
            max_query_attempts=2 * self.faults_per_point + 2,
            name="oracle-fault-service",
        )
        schedule = random_schedule(
            derive_rng(spec.seed, "faults", rng_tag),
            horizon=max(4, len(spec.queries)),
            faults_per_point=self.faults_per_point,
            points=(
                "codegen.compile",
                "reorg.offline",
                "service.worker",
                "service.execute",
            ),
        )
        injector = FaultInjector(schedule)
        try:
            with injector:
                service.register(spec.build_table())
                engine = service.system.engine_for(spec.table_name)
                epoch = 0
                # Serial submission keeps occurrence indices (and thus
                # which query each fault hits) deterministic.
                for index, sql in enumerate(spec.queries):
                    try:
                        report = service.execute(sql, timeout=120.0)
                    except Exception as exc:  # noqa: BLE001
                        raise OracleFailure(
                            f"[{mode}] query #{index} surfaced an "
                            f"exception the degradation ladder should "
                            f"have absorbed: {exc!r}\n  sql: {sql}"
                        )
                    if not results_identical(report.result, expected[index]):
                        raise OracleFailure(
                            _describe_divergence(
                                index,
                                sql,
                                report.result,
                                expected[index],
                                mode,
                            )
                        )
                    epoch = check_engine_invariants(engine, epoch, mode)
                # Let the background scheduler drain its candidates (and
                # hit any scheduled offline-stitch faults) before the
                # evidence audit; bounded wait, no fixed sleeps.
                deadline = time.monotonic() + 10.0
                while (
                    engine.background_candidates()
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                check_engine_invariants(engine, epoch, mode)
                # The watchdog must have healed the pool back to full
                # strength (bounded wait — respawns are budgeted).
                heal_deadline = time.monotonic() + 10.0
                while (
                    service.alive_workers() < self.workers
                    and time.monotonic() < heal_deadline
                ):
                    time.sleep(0.01)
                alive = service.alive_workers()
                if alive < self.workers:
                    raise OracleFailure(
                        f"[{mode}] watchdog failed to heal the pool: "
                        f"{alive}/{self.workers} workers alive after "
                        f"{service.stats.snapshot()['worker_deaths']:.0f} "
                        f"death(s)"
                    )
        finally:
            service.close()
        fired = injector.fired_by_point()
        stats = service.stats.snapshot()
        scheduler_stats = (
            service.scheduler.stats() if service.scheduler else {}
        )
        audits: List[Tuple[str, int, int]] = [
            (
                "codegen.compile → executor.codegen_fallbacks",
                fired.get("codegen.compile", 0),
                engine.executor.codegen_fallbacks,
            ),
            (
                "reorg.offline → scheduler.stitch_failures",
                fired.get("reorg.offline", 0),
                int(scheduler_stats.get("stitch_failures", 0)),
            ),
            (
                "service.worker → stats.worker_deaths",
                fired.get("service.worker", 0),
                int(stats["worker_deaths"]),
            ),
            (
                "service.worker → stats.requeued_deaths",
                fired.get("service.worker", 0),
                int(stats["requeued_deaths"]),
            ),
            (
                "service.execute → stats.retried_failures",
                fired.get("service.execute", 0),
                int(stats["retried_failures"]),
            ),
            ("no waiter saw a failure", 0, int(stats["failed"])),
            ("no waiter saw a timeout", 0, int(stats["timeouts"])),
        ]
        for description, injected, observed in audits:
            if injected != observed:
                raise OracleFailure(
                    f"[{mode}] fault evidence mismatch ({description}): "
                    f"expected {injected} but observed {observed} — a "
                    f"fault was swallowed silently or surfaced wrongly"
                )
        return fired

    # Chaos mode ------------------------------------------------------------

    def chaos_case(self, spec: CaseSpec) -> SequenceResult:
        """One chaos sequence: faults at *every* registered point.

        Two sub-passes cover the five fault points end to end (online
        stitches only happen on the inline path by design — background
        mode routes materialization through the scheduler):

        1. **inline** — ``codegen.compile`` + ``reorg.online`` against
           the inline engine;
        2. **service** — ``codegen.compile``, ``reorg.offline``,
           ``service.worker``, ``service.execute`` against the full
           background service.

        Acceptance is strict: zero crashes, zero wrong answers, the
        worker pool healed, and every fired fault accounted for in the
        degradation evidence with exact equality.
        """
        started = time.perf_counter()
        expected = self.reference_results(spec)
        outcome = SequenceResult(
            spec=spec, modes=("chaos-inline", "chaos-service")
        )
        fired_inline = self._run_faulted_inline(
            spec, expected, rng_tag="chaos-inline"
        )
        fired_service = self._run_faulted_service(
            spec, expected, rng_tag="chaos-service"
        )
        for point in set(fired_inline) | set(fired_service):
            outcome.fired_faults[point] = fired_inline.get(
                point, 0
            ) + fired_service.get(point, 0)
        outcome.queries_checked = 2 * len(expected)
        outcome.seconds = time.perf_counter() - started
        return outcome


def run_sequence(
    seed: int,
    *,
    workers: int = 3,
    with_faults: bool = True,
    spec: Optional[CaseSpec] = None,
) -> SequenceResult:
    """Convenience wrapper: generate (or accept) a spec and run it."""
    from .generate import random_case

    oracle = DifferentialOracle(workers=workers, with_faults=with_faults)
    return oracle.run_case(spec if spec is not None else random_case(seed))


def run_chaos_sequence(
    seed: int,
    *,
    workers: int = 3,
    faults_per_point: int = 2,
    spec: Optional[CaseSpec] = None,
) -> SequenceResult:
    """One chaos sequence (see :meth:`DifferentialOracle.chaos_case`)."""
    from .generate import random_case

    oracle = DifferentialOracle(
        workers=workers, faults_per_point=faults_per_point
    )
    return oracle.chaos_case(
        spec if spec is not None else random_case(seed)
    )


# Scenario replay oracle ------------------------------------------------------
#
# The adversarial scenario pack (repro/workloads/scenarios.py) replayed
# under BOTH switching policies against the row reference: the policies
# may reorganize differently, but every answer must stay bit-identical,
# every engine invariant must hold after every query, and the guarded
# policy's regret ledger must balance at the end of the stream.

#: Every scenario replays under each of these policies.
SCENARIO_POLICIES = ("greedy-paper", "guarded")


@dataclass
class ScenarioOutcome:
    """What one scenario replay executed and observed."""

    name: str
    seed: int
    queries_checked: int = 0
    appends_replayed: int = 0
    #: policy → layouts the manager built during the replay.
    reorgs: Dict[str, int] = field(default_factory=dict)
    #: policy → materializations the policy deferred.
    deferrals: Dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0

    def describe(self) -> str:
        reorgs = " ".join(
            f"{policy}={count}" for policy, count in self.reorgs.items()
        )
        return (
            f"{self.name} (seed {self.seed}) — {self.queries_checked} "
            f"answers checked, {self.appends_replayed} appends, "
            f"reorgs: {reorgs}, {self.seconds:.2f}s"
        )


def _scenario_reference(scenario: "Scenario") -> List[QueryResult]:
    """Ground truth for a scenario stream: the interpreted row baseline,
    with the scenario's appends applied at the same stream positions."""
    engine = RowStoreEngine(
        scenario.make_table(), EngineConfig(use_codegen=False)
    )
    expected: List[QueryResult] = []
    for op in scenario.ops:
        if op[0] == "query":
            expected.append(engine.execute(parse_query(op[1])).result)
        else:
            engine.table.append_rows(
                scenario.append_batch(op[1], op[2])
            )
    return expected


def _replay_scenario(
    scenario: "Scenario",
    expected: Sequence[QueryResult],
    policy: str,
    hedging_factor: float,
) -> H2OEngine:
    """Replay one scenario under one policy, checking every answer."""
    label = f"scenario:{scenario.name}:{policy}"
    engine = H2OEngine(
        scenario.make_table(),
        EngineConfig(
            adaptation_policy=policy,
            hedging_factor=hedging_factor,
            **ORACLE_CONFIG,
        ),
    )
    epoch = 0
    index = 0
    for op in scenario.ops:
        if op[0] == "query":
            report = engine.execute(parse_query(op[1]))
            if not results_identical(report.result, expected[index]):
                raise OracleFailure(
                    _describe_divergence(
                        index, op[1], report.result, expected[index], label
                    )
                )
            epoch = check_engine_invariants(engine, epoch, label)
            index += 1
        else:
            engine.table.append_rows(
                scenario.append_batch(op[1], op[2])
            )
    check_policy_invariants(engine, label)
    return engine


def scenario_case(
    name: str,
    seed: int = 0,
    *,
    hedging_factor: float = 2.0,
    **kwargs: object,
) -> ScenarioOutcome:
    """Replay one named scenario under both policies against the row
    reference; raises :class:`OracleFailure` on any divergence."""
    from ..workloads.scenarios import build_scenario

    started = time.perf_counter()
    scenario = build_scenario(name, seed, **kwargs)
    expected = _scenario_reference(scenario)
    outcome = ScenarioOutcome(name=scenario.name, seed=seed)
    for policy in SCENARIO_POLICIES:
        engine = _replay_scenario(
            scenario, expected, policy, hedging_factor
        )
        outcome.reorgs[policy] = len(engine.manager.creation_log)
        outcome.deferrals[policy] = engine.policy.deferrals
    guarded = outcome.reorgs.get("guarded", 0)
    greedy = outcome.reorgs.get("greedy-paper", 0)
    if guarded > greedy:
        raise OracleFailure(
            f"[scenario:{scenario.name}] guarded built {guarded} "
            f"layout(s), more than greedy's {greedy} — hedging must "
            f"never reorganize more than the policy it hedges"
        )
    outcome.queries_checked = len(expected) * len(SCENARIO_POLICIES)
    outcome.appends_replayed = (
        scenario.append_count * len(SCENARIO_POLICIES)
    )
    outcome.seconds = time.perf_counter() - started
    return outcome


def run_all_scenarios(
    seed: int = 0,
    *,
    hedging_factor: float = 2.0,
    **kwargs: object,
) -> List[ScenarioOutcome]:
    """Replay the whole registered pack (canonical order)."""
    from ..workloads.scenarios import SCENARIOS

    return [
        scenario_case(
            name, seed, hedging_factor=hedging_factor, **kwargs
        )
        for name in SCENARIOS
    ]
