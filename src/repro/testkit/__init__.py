"""The H2O testkit: differential oracle + deterministic fault injection.

H2O's value proposition is that continuous physical change — lazy
materialization fused with execution, background stitching, JiT
operator swaps, plan caching — is *invisible* in query answers.  This
package is the standing correctness gate for that property:

- :mod:`~repro.testkit.generate` — a seeded random workload generator:
  schemas, integer data distributions, and query ASTs (SELECT / WHERE /
  aggregates built through :mod:`repro.sql.builder`), fully determined
  by one seed;
- :mod:`~repro.testkit.oracle` — the differential oracle: every
  generated sequence runs through the adaptive engine in all adaptation
  modes (inline, interpreted, background via the service with N
  workers) *and* through the row baseline, the column baseline, and the
  interpreted Volcano evaluator, asserting bit-identical results and
  engine invariants (epoch monotonicity, snapshot row-count
  consistency, schema coverage, operator-cache key/source agreement)
  after every step;
- :mod:`~repro.testkit.faults` — the deterministic fault-injection
  driver: a seeded schedule of compile failures, mid-stitch aborts,
  worker deaths and forced timeouts, installed into the production
  fault points of :mod:`repro.util.faultpoints`, with the oracle
  asserting that every injected fault surfaces as the documented
  :mod:`repro.errors` exception or a counted clean fallback — never a
  wrong answer or a torn snapshot;
- :mod:`~repro.testkit.shrink` — shrinking of failing cases to a
  minimal schema + query repro (printed in ≤10 lines with the seed);
- the **scenario replay oracle** (also in
  :mod:`~repro.testkit.oracle`) — the adversarial scenario pack of
  :mod:`repro.workloads.scenarios` replayed under both layout-switching
  policies (greedy-paper and regret-bounded guarded) against the row
  reference: bit-identical answers, engine invariants after every
  query, and the guarded policy's regret ledger balanced at the end;
- :mod:`~repro.testkit.runner` — the CLI:
  ``python -m repro.testkit run --seqs 50 --seed 0`` /
  ``python -m repro.testkit scenarios``.

See ``docs/testing.md`` for the architecture, how to reproduce a
failure from a printed seed, and how to add a new injection point.
"""

from .generate import CaseSpec, random_case, random_query
from .faults import FaultInjector, FiredFault, random_schedule
from .oracle import (
    DifferentialOracle,
    OracleFailure,
    ScenarioOutcome,
    SequenceResult,
    run_all_scenarios,
    run_chaos_sequence,
    run_sequence,
    scenario_case,
)
from .shrink import format_repro, shrink_case

__all__ = [
    "CaseSpec",
    "DifferentialOracle",
    "FaultInjector",
    "FiredFault",
    "OracleFailure",
    "ScenarioOutcome",
    "SequenceResult",
    "format_repro",
    "random_case",
    "random_query",
    "random_schedule",
    "run_all_scenarios",
    "run_chaos_sequence",
    "run_sequence",
    "scenario_case",
    "shrink_case",
]
