"""Shrinking failing oracle cases to a minimal repro.

Given a :class:`~repro.testkit.generate.CaseSpec` and a ``fails(spec)``
predicate (re-running the oracle and answering "does this spec still
fail?"), :func:`shrink_case` applies three reductions to a fixpoint:

1. **query removal** — ddmin-style: drop halves, then quarters, ...,
   then single queries, keeping any reduction that still fails;
2. **schema trim** — shrink ``num_attrs`` down to the highest attribute
   any surviving query actually references (unused columns change the
   generated data stream, so this re-checks the predicate too);
3. **row halving** — repeatedly halve ``num_rows`` (floor 1) while the
   case still fails.

The result is typically one or two queries over a handful of columns —
small enough that :func:`format_repro` prints the whole thing in ≤10
lines, including the one-liner that reproduces it:

    python -m repro.testkit repro --seed S --attrs A --rows R 'SQL...'

Shrinking is bounded (``max_checks``) so a flaky predicate cannot spin
forever; every candidate evaluation is one full oracle run, so the
budget is the dominant cost knob.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Sequence, Tuple

from .generate import CaseSpec, max_referenced_attr

Predicate = Callable[[CaseSpec], bool]


class _Budget:
    """A simple evaluation counter shared across shrink passes."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    def spent(self) -> bool:
        return self.used >= self.limit

    def check(self, fails: Predicate, spec: CaseSpec) -> bool:
        if self.spent():
            return False
        self.used += 1
        try:
            return bool(fails(spec))
        except Exception:
            # A predicate that *errors* (rather than returning True)
            # still counts as a failure for shrinking purposes: the
            # case clearly does not pass.
            return True


def _shrink_queries(
    spec: CaseSpec, fails: Predicate, budget: _Budget
) -> CaseSpec:
    """ddmin over the query tuple: drop chunks, keep failing variants."""
    queries: List[str] = list(spec.queries)
    chunk = max(1, len(queries) // 2)
    while chunk >= 1 and len(queries) > 1 and not budget.spent():
        reduced = False
        start = 0
        while start < len(queries) and not budget.spent():
            candidate = queries[:start] + queries[start + chunk:]
            if not candidate:
                start += chunk
                continue
            trial = spec.with_queries(tuple(candidate))
            if budget.check(fails, trial):
                queries = candidate
                spec = trial
                reduced = True
                # Do not advance: the element now at ``start`` is new.
            else:
                start += chunk
        if not reduced:
            chunk //= 2
    return spec.with_queries(tuple(queries))


def _shrink_attrs(
    spec: CaseSpec, fails: Predicate, budget: _Budget
) -> CaseSpec:
    """Trim the schema to the highest attribute actually referenced."""
    highest = max_referenced_attr(spec)
    floor = max(1, highest if highest is not None else 1)
    while spec.num_attrs > floor and not budget.spent():
        trial = replace(spec, num_attrs=spec.num_attrs - 1)
        if budget.check(fails, trial):
            spec = trial
        else:
            break
    return spec


def _shrink_rows(
    spec: CaseSpec, fails: Predicate, budget: _Budget
) -> CaseSpec:
    """Repeatedly halve the row count while the case still fails."""
    while spec.num_rows > 1 and not budget.spent():
        trial = replace(spec, num_rows=max(1, spec.num_rows // 2))
        if trial.num_rows == spec.num_rows:
            break
        if budget.check(fails, trial):
            spec = trial
        else:
            break
    return spec


def shrink_case(
    spec: CaseSpec,
    fails: Predicate,
    *,
    max_checks: int = 200,
) -> CaseSpec:
    """The smallest still-failing variant of ``spec`` found within budget.

    ``fails`` must return True (or raise) for ``spec`` itself; if it
    does not, the original spec is returned unchanged (nothing to
    shrink — the failure was not reproducible, which the caller should
    report rather than hide).
    """
    budget = _Budget(max_checks)
    if not budget.check(fails, spec):
        return spec
    previous: Tuple[int, int, int] = (-1, -1, -1)
    while not budget.spent():
        spec = _shrink_queries(spec, fails, budget)
        spec = _shrink_attrs(spec, fails, budget)
        spec = _shrink_rows(spec, fails, budget)
        signature = (len(spec.queries), spec.num_attrs, spec.num_rows)
        if signature == previous:
            break
        previous = signature
    return spec


def format_repro(spec: CaseSpec, *, max_lines: int = 10) -> str:
    """A ≤``max_lines``-line human-pasteable repro for ``spec``.

    Line 1 is the one-liner that re-runs exactly this case; the rest
    are the SQL statements (elided if the case somehow stayed large).
    """
    lines: List[str] = [
        "# repro: python -m repro.testkit repro "
        f"--seed {spec.seed} --attrs {spec.num_attrs} --rows {spec.num_rows}",
        f"# {spec.describe()}",
    ]
    remaining = max_lines - len(lines)
    shown: Sequence[str] = spec.queries
    if len(shown) > remaining:
        shown = list(spec.queries[: remaining - 1])
        shown.append(f"# ... and {len(spec.queries) - len(shown)} more queries")
    lines.extend(shown)
    return "\n".join(lines[:max_lines])
