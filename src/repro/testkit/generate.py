"""Seeded random workload generation for the differential oracle.

A :class:`CaseSpec` is the *compact, reconstructible* description of one
oracle sequence: a seed, a schema width, a row count, and the SQL text
of every query.  Everything heavy — the table data, the parsed ASTs —
is re-derived deterministically from the spec, which is what makes
shrinking and one-line repros possible: a failing case is fully
described by ``CaseSpec(seed=…, num_attrs=…, num_rows=…, queries=…)``.

Value ranges are deliberately small (``|v| ≤ VALUE_BOUND``) so that
every aggregate over every generated sequence stays far below 2**53:
float64 represents each sum/product *exactly*, making "bit-identical
across engines" a sound oracle rather than an approximate one (the same
discipline as the service stress suite).

Queries are built through :mod:`repro.sql.builder` and the expression
AST, then round-tripped through ``to_sql()`` — the oracle feeds the SQL
text to every engine, so the parser is exercised on every generated
shape as a side effect.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from ..sql.builder import QueryBuilder
from ..sql.expressions import (
    BoolConnective,
    BooleanOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    Literal,
    Not,
)
from ..sql.parser import parse_query
from ..sql.query import Query
from ..storage.generator import generate_table
from ..storage.relation import Table
from ..util.rng import RngLike, ensure_rng

#: Generated attribute values are drawn from [-VALUE_BOUND, VALUE_BOUND).
#: Small enough that sums of pairwise products over MAX_ROWS rows stay
#: below 2**53 (exact in float64), large enough for varied selectivities.
VALUE_BOUND = 1000

#: Hard caps keeping one oracle sequence cheap (< ~1s per engine mode).
MAX_ATTRS = 12
MAX_ROWS = 2048
MAX_QUERIES = 24

_COMPARISONS = (
    ComparisonOp.LT,
    ComparisonOp.LE,
    ComparisonOp.GT,
    ComparisonOp.GE,
    ComparisonOp.EQ,
    ComparisonOp.NE,
)


@dataclass(frozen=True)
class CaseSpec:
    """One oracle sequence, reconstructible from this record alone."""

    seed: int
    num_attrs: int
    num_rows: int
    queries: Tuple[str, ...]
    table_name: str = "t"

    def build_table(self) -> Table:
        """A fresh table with this spec's (deterministic) data.

        Every engine mode gets its *own* table built from the same
        spec: identical bytes, independent physical evolution.
        """
        return generate_table(
            self.table_name,
            num_attrs=self.num_attrs,
            num_rows=self.num_rows,
            rng=np.random.default_rng(self.seed),
            initial_layout="column",
            low=-VALUE_BOUND,
            high=VALUE_BOUND,
        )

    def parsed(self) -> List[Query]:
        """The query ASTs (parsed back from the canonical SQL text)."""
        return [parse_query(sql) for sql in self.queries]

    def with_queries(self, queries: Tuple[str, ...]) -> "CaseSpec":
        return replace(self, queries=tuple(queries))

    def describe(self) -> str:
        return (
            f"CaseSpec(seed={self.seed}, attrs={self.num_attrs}, "
            f"rows={self.num_rows}, queries={len(self.queries)})"
        )


# Query generation -----------------------------------------------------------


def _random_column(rng: np.random.Generator, attrs: Tuple[str, ...]) -> str:
    return attrs[int(rng.integers(0, len(attrs)))]


def _random_value_expr(
    rng: np.random.Generator, attrs: Tuple[str, ...]
) -> Expr:
    """A column, or a binary arithmetic over two columns / a literal.

    Depth is capped at one binary operator so products stay ≤
    ``VALUE_BOUND**2`` and sums over ``MAX_ROWS`` rows remain exactly
    representable in float64.
    """
    kind = int(rng.integers(0, 4))
    left = ColumnRef(_random_column(rng, attrs))
    if kind == 0:
        return left
    if kind == 1:
        return left + ColumnRef(_random_column(rng, attrs))
    if kind == 2:
        return left - ColumnRef(_random_column(rng, attrs))
    if int(rng.integers(0, 2)):
        return left * ColumnRef(_random_column(rng, attrs))
    return left + Literal(int(rng.integers(-VALUE_BOUND, VALUE_BOUND)))


def _random_comparison(
    rng: np.random.Generator, attrs: Tuple[str, ...]
) -> Expr:
    column = ColumnRef(_random_column(rng, attrs))
    op = _COMPARISONS[int(rng.integers(0, len(_COMPARISONS)))]
    # Bias literals toward the value range's interior so predicates have
    # varied selectivity (including empty and full results at the tails).
    literal = Literal(int(rng.integers(-VALUE_BOUND - 200, VALUE_BOUND + 200)))
    return Comparison(op, column, literal)


def _random_conjunct(
    rng: np.random.Generator, attrs: Tuple[str, ...]
) -> Expr:
    kind = int(rng.integers(0, 5))
    if kind <= 2:
        return _random_comparison(rng, attrs)
    if kind == 3:
        return Not(_random_comparison(rng, attrs))
    return BooleanOp(
        BoolConnective.OR,
        _random_comparison(rng, attrs),
        _random_comparison(rng, attrs),
    )


def random_query(rng: RngLike, attrs: Tuple[str, ...], table: str = "t") -> Query:
    """One random SELECT/WHERE/aggregate query over ``attrs``.

    ~70% aggregations (the paper's workload shape), ~30% projections;
    zero to three AND-ed conjuncts mixing plain comparisons, ``NOT``,
    and ``OR`` pairs.  Hot shapes recur naturally across a sequence
    because the attribute pool is small — which is what drives the
    advisor, the reorganizer and the plan cache during oracle runs.
    """
    rng = ensure_rng(rng)
    builder = QueryBuilder(table)
    if rng.random() < 0.7:
        num_outputs = int(rng.integers(1, 4))
        for _ in range(num_outputs):
            agg = int(rng.integers(0, 5))
            if agg == 0:
                builder.select_sum(_random_value_expr(rng, attrs))
            elif agg == 1:
                builder.select_min(_random_value_expr(rng, attrs))
            elif agg == 2:
                builder.select_max(_random_value_expr(rng, attrs))
            elif agg == 3:
                builder.select_count()
            else:
                builder.select_avg(_random_value_expr(rng, attrs))
    else:
        num_outputs = int(rng.integers(1, 4))
        for _ in range(num_outputs):
            if rng.random() < 0.6:
                builder.select(_random_column(rng, attrs))
            else:
                builder.select(_random_value_expr(rng, attrs))
    for _ in range(int(rng.integers(0, 4))):
        builder.where(_random_conjunct(rng, attrs))
    return builder.build()


def random_case(
    seed: int,
    *,
    max_attrs: int = MAX_ATTRS,
    max_rows: int = MAX_ROWS,
    max_queries: int = MAX_QUERIES,
    table_name: str = "t",
) -> CaseSpec:
    """A complete random sequence spec, fully determined by ``seed``."""
    rng = np.random.default_rng(seed)
    num_attrs = int(rng.integers(4, max_attrs + 1))
    num_rows = int(rng.integers(128, max_rows + 1))
    num_queries = int(rng.integers(6, max_queries + 1))
    attrs = tuple(f"a{i}" for i in range(1, num_attrs + 1))
    queries = tuple(
        random_query(rng, attrs, table=table_name).to_sql()
        for _ in range(num_queries)
    )
    return CaseSpec(
        seed=seed,
        num_attrs=num_attrs,
        num_rows=num_rows,
        queries=queries,
        table_name=table_name,
    )


def max_referenced_attr(spec: CaseSpec) -> Optional[int]:
    """Highest ``aN`` index any query references (None if none do)."""
    highest = None
    for query in spec.parsed():
        for name in query.attributes:
            if name.startswith("a"):
                try:
                    index = int(name[1:])
                except ValueError:
                    continue
                if highest is None or index > highest:
                    highest = index
    return highest
