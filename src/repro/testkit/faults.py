"""The deterministic fault-injection driver (the testkit-side half).

The production code exposes named injectable sites through
:func:`repro.util.faultpoints.fault_point`; this module installs a
seeded *schedule* into them.  A schedule maps each point to a set of
occurrence indices: the injector counts every time a point is reached
(process-wide, under a lock) and raises the point's documented failure
exactly at the scheduled occurrences.  Same seed → same schedule → same
faults at the same places, every run.

Fault kinds and the contract the oracle asserts for each:

====================  =======================  ============================
kind / point          injected exception       documented surface
====================  =======================  ============================
``codegen.compile``   CodegenError             interpreted fallback answers
                                               the query identically;
                                               ``Executor.codegen_fallbacks``
                                               counts it
``reorg.online``      ReorganizationError      partial group discarded,
                                               query answered via planning;
                                               ``H2OEngine.reorg_aborts``
``reorg.offline``     ReorganizationError      background stitch retried;
                                               ``scheduler.stitch_failures``
``service.worker``    RuntimeError (escapes)   waiter gets ServiceError,
                                               worker replaced;
                                               ``stats.worker_deaths``
``service.execute``   QueryTimeoutError        waiter gets the timeout;
                                               ``stats.failed`` counts it
====================  =======================  ============================

A fired fault with *no* matching surface (exception or counter bump) is
an oracle failure — that is the mutation check: edit any handler to
swallow its fault silently and the oracle goes red (docs/testing.md).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Tuple

import numpy as np

from ..errors import CodegenError, QueryTimeoutError, ReorganizationError
from ..util import faultpoints
from ..util.rng import RngLike, ensure_rng

#: point name → (exception factory, message).  ``service.worker`` raises
#: a plain RuntimeError on purpose: a real worker death is an *arbitrary*
#: exception escaping the ticket scope, and the service must translate it
#: into the documented ServiceError for the waiter.
FAULT_KINDS: Dict[str, type] = {
    "codegen.compile": CodegenError,
    "reorg.online": ReorganizationError,
    "reorg.offline": ReorganizationError,
    "service.worker": RuntimeError,
    "service.execute": QueryTimeoutError,
}

ALL_POINTS: Tuple[str, ...] = tuple(FAULT_KINDS)


@dataclass(frozen=True)
class FiredFault:
    """One fault the injector actually raised."""

    point: str
    occurrence: int


class FaultInjector:
    """Context manager installing a seeded fault schedule.

    >>> from repro.testkit.faults import FaultInjector
    >>> inj = FaultInjector({"codegen.compile": {0}})
    >>> with inj:
    ...     pass  # run workload; occurrence 0 of every compile raises
    >>> inj.fired
    []

    Thread-safe: occurrence counting and the fired log are guarded by
    one lock (points are hit from query workers, the adaptation
    scheduler thread, and the caller's thread simultaneously).
    """

    def __init__(self, schedule: Mapping[str, FrozenSet[int]]) -> None:
        self.schedule: Dict[str, FrozenSet[int]] = {
            point: frozenset(occurrences)
            for point, occurrences in schedule.items()
        }
        unknown = set(self.schedule) - set(FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown fault points: {sorted(unknown)}")
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        self.fired: List[FiredFault] = []

    # Introspection --------------------------------------------------------

    def occurrences(self, point: str) -> int:
        """How many times ``point`` was reached (fired or not)."""
        with self._lock:
            return self._counts.get(point, 0)

    def fired_count(self, point: str) -> int:
        with self._lock:
            return sum(1 for f in self.fired if f.point == point)

    def fired_by_point(self) -> Dict[str, int]:
        with self._lock:
            counts: Dict[str, int] = {}
            for fault in self.fired:
                counts[fault.point] = counts.get(fault.point, 0) + 1
            return counts

    # The handler ----------------------------------------------------------

    def _handle(self, name: str, context: Dict[str, object]) -> None:
        with self._lock:
            occurrence = self._counts.get(name, 0)
            self._counts[name] = occurrence + 1
            planned = self.schedule.get(name)
            if planned is None or occurrence not in planned:
                return
            self.fired.append(FiredFault(point=name, occurrence=occurrence))
        raise FAULT_KINDS[name](
            f"injected fault at {name} (occurrence {occurrence})"
        )

    # Context manager ------------------------------------------------------

    def __enter__(self) -> "FaultInjector":
        faultpoints.install(self._handle)
        return self

    def __exit__(self, *exc_info: object) -> None:
        faultpoints.uninstall(self._handle)


def random_schedule(
    rng: RngLike,
    *,
    horizon: int = 24,
    faults_per_point: int = 2,
    points: Tuple[str, ...] = ALL_POINTS,
) -> Dict[str, FrozenSet[int]]:
    """A seeded schedule: up to ``faults_per_point`` occurrences of each
    point within the first ``horizon`` occurrences.

    Occurrence indices beyond what the workload actually reaches simply
    never fire — the oracle only demands evidence for *fired* faults, so
    a schedule can be generous without being brittle.
    """
    rng = ensure_rng(rng)
    schedule: Dict[str, FrozenSet[int]] = {}
    for point in points:
        count = int(rng.integers(1, faults_per_point + 1))
        upper = max(2, horizon)
        picks = rng.choice(upper, size=min(count, upper), replace=False)
        schedule[point] = frozenset(int(p) for p in np.atleast_1d(picks))
    return schedule
