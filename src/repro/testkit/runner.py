"""The testkit CLI.

Green path::

    PYTHONPATH=src python -m repro.testkit run --seqs 50 --seed 0

runs 50 seeded oracle sequences (seeds ``seed .. seed+seqs-1``), each
through every engine mode plus the two fault passes, and prints a
one-line summary.  Red path: the first failing sequence is shrunk to a
minimal spec and printed as a ≤10-line repro (seed + schema + SQL), and
the process exits 1.

Chaos mode::

    PYTHONPATH=src python -m repro.testkit chaos --seqs 20 --seed 0

runs seeded *chaos* sequences: faults scheduled at every registered
injection point (compile, online + offline stitch, worker death,
transient execute failure), asserting zero crashes, bit-identical
answers, a healed worker pool and an exact degradation-evidence audit
(see :meth:`repro.testkit.oracle.DifferentialOracle.chaos_case`).  It
also reports cumulative fault-point coverage and fails if any point
never fired across the run.

Scenario replay::

    PYTHONPATH=src python -m repro.testkit scenarios

replays the adversarial scenario pack (repro/workloads/scenarios.py)
under both switching policies (greedy-paper and guarded) against the
row reference: every answer bit-identical, every engine invariant held,
the guarded regret ledger balanced, and guarded never reorganizing more
than greedy.  Name scenarios to replay a subset; ``--seed`` reseeds the
pack.

Reproducing a printed case::

    PYTHONPATH=src python -m repro.testkit repro --seed S --attrs A \
        --rows R 'SELECT ...' 'SELECT ...'

re-runs exactly that spec (same bytes, same faults) once, verbosely.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .generate import CaseSpec, random_case
from .oracle import DifferentialOracle, OracleFailure
from .shrink import format_repro, shrink_case


def _build_oracle(args: argparse.Namespace) -> DifferentialOracle:
    return DifferentialOracle(
        workers=args.workers,
        with_faults=not args.no_faults,
        faults_per_point=args.faults_per_point,
    )


def _fails_predicate(oracle: DifferentialOracle):
    def fails(spec: CaseSpec) -> bool:
        try:
            oracle.run_case(spec)
        except OracleFailure:
            return True
        return False

    return fails


def _cmd_run(args: argparse.Namespace) -> int:
    oracle = _build_oracle(args)
    started = time.perf_counter()
    total_queries = 0
    for index in range(args.seqs):
        seed = args.seed + index
        spec = random_case(seed)
        total_queries += len(spec.queries)
        try:
            result = oracle.run_case(spec)
        except OracleFailure as failure:
            print(f"FAIL seq {index} ({spec.describe()}):", file=sys.stderr)
            print(f"  {failure}", file=sys.stderr)
            print("shrinking...", file=sys.stderr)
            small = shrink_case(
                spec, _fails_predicate(oracle), max_checks=args.shrink_budget
            )
            print("minimal repro:", file=sys.stderr)
            print(format_repro(small), file=sys.stderr)
            return 1
        if args.verbose:
            print(f"ok   seq {index}: {result.describe()}")
    elapsed = time.perf_counter() - started
    print(
        f"oracle: {args.seqs} sequences, {total_queries} queries, "
        f"all modes identical ({elapsed:.1f}s)"
    )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import ALL_POINTS

    oracle = DifferentialOracle(
        workers=args.workers, faults_per_point=args.faults_per_point
    )
    started = time.perf_counter()
    total_queries = 0
    coverage: dict = {point: 0 for point in ALL_POINTS}
    for index in range(args.seqs):
        seed = args.seed + index
        spec = random_case(seed)
        total_queries += len(spec.queries)
        try:
            result = oracle.chaos_case(spec)
        except OracleFailure as failure:
            print(
                f"CHAOS FAIL seq {index} ({spec.describe()}):",
                file=sys.stderr,
            )
            print(f"  {failure}", file=sys.stderr)
            print(format_repro(spec), file=sys.stderr)
            return 1
        for point, count in result.fired_faults.items():
            coverage[point] = coverage.get(point, 0) + count
        if args.verbose:
            print(f"ok   seq {index}: {result.describe()}")
    elapsed = time.perf_counter() - started
    rendered = ", ".join(
        f"{point}={coverage[point]}" for point in sorted(coverage)
    )
    print(
        f"chaos: {args.seqs} sequences, {total_queries} queries, zero "
        f"crashes/divergence ({elapsed:.1f}s)\n  faults fired: {rendered}"
    )
    uncovered = [point for point, count in sorted(coverage.items()) if not count]
    if uncovered:
        print(
            f"chaos: fault point(s) never fired: {', '.join(uncovered)} — "
            f"increase --seqs or --faults-per-point",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_restart(args: argparse.Namespace) -> int:
    from .restart import RestartOracleFailure, restart_case

    started = time.perf_counter()
    compared = 0
    torn = 0
    for index in range(args.seqs):
        seed = args.seed + index
        try:
            evidence = restart_case(seed)
        except RestartOracleFailure as failure:
            print(f"RESTART FAIL seq {index} (seed {seed}):", file=sys.stderr)
            print(f"  {failure}", file=sys.stderr)
            return 1
        compared += evidence.queries_compared
        torn += int(evidence.torn_tail_injected)
        if args.verbose:
            print(f"ok   seq {index}: {evidence.describe()}")
    elapsed = time.perf_counter() - started
    print(
        f"restart: {args.seqs} kill/recover sequences, {compared} "
        f"post-recovery answers bit-identical, {torn} torn tails "
        f"discarded, adaptation state preserved ({elapsed:.1f}s)"
    )
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from ..workloads.scenarios import SCENARIOS
    from .oracle import scenario_case

    names = args.names or list(SCENARIOS)
    started = time.perf_counter()
    answers = 0
    for name in names:
        try:
            outcome = scenario_case(
                name, args.seed, hedging_factor=args.hedging_factor
            )
        except OracleFailure as failure:
            print(
                f"SCENARIO FAIL {name} (seed {args.seed}):",
                file=sys.stderr,
            )
            print(f"  {failure}", file=sys.stderr)
            return 1
        answers += outcome.queries_checked
        if args.verbose:
            print(f"ok   {outcome.describe()}")
    elapsed = time.perf_counter() - started
    print(
        f"scenarios: {len(names)} scenario(s) x both policies, {answers} "
        f"answers bit-identical, regret ledger balanced ({elapsed:.1f}s)"
    )
    return 0


def _cmd_repro(args: argparse.Namespace) -> int:
    spec = CaseSpec(
        seed=args.seed,
        num_attrs=args.attrs,
        num_rows=args.rows,
        queries=tuple(args.queries),
    )
    oracle = _build_oracle(args)
    try:
        result = oracle.run_case(spec)
    except OracleFailure as failure:
        print(f"FAIL: {failure}", file=sys.stderr)
        print(format_repro(spec), file=sys.stderr)
        return 1
    print(f"ok: {result.describe()}")
    return 0


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=3,
        help="service worker threads in the concurrent mode (default 3)",
    )
    parser.add_argument(
        "--no-faults",
        action="store_true",
        help="skip the fault-injection passes (differential modes only)",
    )
    parser.add_argument(
        "--faults-per-point",
        type=int,
        default=2,
        help="max scheduled faults per injection point (default 2)",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testkit",
        description="H2O differential oracle + fault-injection harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run N seeded oracle sequences")
    run.add_argument("--seqs", type=int, default=50)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--shrink-budget", type=int, default=60)
    run.add_argument("-v", "--verbose", action="store_true")
    _add_common(run)
    run.set_defaults(func=_cmd_run)

    chaos = sub.add_parser(
        "chaos",
        help="run N chaos sequences (faults at every injection point)",
    )
    chaos.add_argument("--seqs", type=int, default=20)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("-v", "--verbose", action="store_true")
    _add_common(chaos)
    chaos.set_defaults(func=_cmd_chaos)

    restart = sub.add_parser(
        "restart",
        help="run N kill/recover sequences against the durable store",
    )
    restart.add_argument("--seqs", type=int, default=10)
    restart.add_argument("--seed", type=int, default=0)
    restart.add_argument("-v", "--verbose", action="store_true")
    restart.set_defaults(func=_cmd_restart)

    scenarios = sub.add_parser(
        "scenarios",
        help="replay the adversarial scenario pack under both policies",
    )
    scenarios.add_argument(
        "names",
        nargs="*",
        help="scenario names to replay (default: the whole pack)",
    )
    scenarios.add_argument("--seed", type=int, default=0)
    scenarios.add_argument(
        "--hedging-factor",
        type=float,
        default=2.0,
        help="hedging factor for the guarded replay (default 2.0)",
    )
    scenarios.add_argument("-v", "--verbose", action="store_true")
    scenarios.set_defaults(func=_cmd_scenarios)

    repro = sub.add_parser("repro", help="re-run one explicit case spec")
    repro.add_argument("--seed", type=int, required=True)
    repro.add_argument("--attrs", type=int, required=True)
    repro.add_argument("--rows", type=int, required=True)
    repro.add_argument("queries", nargs="+", help="SQL text, one per query")
    _add_common(repro)
    repro.set_defaults(func=_cmd_repro)

    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    sys.exit(main())
