"""The layout advisor: candidate generation + selection (paper Eq. 1).

Determining the optimal layout is vertical partitioning (NP-hard), so
H2O prunes aggressively (paper section 3.2, "Alternative Data Layouts"):

1. The initial configuration contains the *narrowest* useful groups —
   the distinct SELECT-clause and WHERE-clause attribute sets observed
   in the monitoring window ("attributes accessed together within a
   query").
2. The solution is improved iteratively by *merging* narrow groups with
   groups generated in previous iterations, reducing the group-joining
   overhead for queries that span groups.
3. Every configuration is scored with
   ``cost(W, C) = Σ_j q_j(C) + T(C_prev, C)`` — the windowed workload
   cost under the configuration plus the transformation cost of the new
   layouts — so a layout is proposed only when its creation can be
   amortized.

The advisor does not materialize anything: it emits a ranked pool of
:class:`CandidateLayout` proposals; the engine materializes a candidate
lazily, the first time a query both matches it and can amortize it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..config import EngineConfig
from ..sql.analyzer import QueryInfo, analyze_query
from ..storage.layout import LayoutKind
from ..storage.relation import Table
from .cost_model import CostModel, GroupSpec
from .monitor import Monitor


@dataclass(frozen=True)
class CandidateLayout:
    """One proposed physical change awaiting lazy materialization.

    Three kinds share the candidate pool and the switching-policy
    ledger: ``"group"`` (a new column group — the paper's vertical
    axis), ``"cluster"`` (reorder every layout's rows on one hot WHERE
    attribute so zone maps prune), and ``"encode"`` (an added
    dictionary/bit-packed replica of one hot WHERE attribute so scans
    read fewer bytes).  The engine dispatches on :attr:`kind`; the
    policy hedges all three uniformly through :attr:`ledger_key`.
    """

    attrs: Tuple[str, ...]
    #: Windowed queries whose full access set the group covers.
    frequency: int
    #: Mean cost saving per covered query (model units/seconds).
    benefit_per_use: float
    #: Estimated transformation cost to build the group (Eq. 1's T).
    build_cost: float
    origin: str  # "select" | "where" | "merge"
    kind: str = "group"  # "group" | "cluster" | "encode"

    @property
    def attr_set(self) -> FrozenSet[str]:
        return frozenset(self.attrs)

    @property
    def ledger_key(self):
        """Pool/ledger/quarantine identity.

        Groups keep their historical frozenset key; the physical-design
        kinds tag theirs so a cluster proposal and an encode proposal
        over the same attribute never collide or alias a group.
        """
        if self.kind == "group":
            return self.attr_set
        return (self.kind,) + self.attrs

    @property
    def expected_gain(self) -> float:
        """Net windowed gain: amortized benefit minus build cost."""
        return self.benefit_per_use * self.frequency - self.build_cost

    def covers(self, attrs: FrozenSet[str]) -> bool:
        """Whether a query touching ``attrs`` can be served entirely
        from this group."""
        return bool(attrs) and attrs <= self.attr_set

    def serves(
        self, select_attrs: FrozenSet[str], where_attrs: FrozenSet[str]
    ) -> bool:
        """Whether a query benefits from this candidate.

        Groups: the group covers the whole access set, or one full
        clause (a select group feeds the projection/aggregation, a
        where group drives the selection vector — Fig. 6).  Clustering
        and encoding help exactly the queries whose predicate touches
        their attribute."""
        if self.kind != "group":
            return self.attrs[0] in where_attrs
        all_attrs = select_attrs | where_attrs
        if not all_attrs:
            return False
        if all_attrs <= self.attr_set:
            return True
        if select_attrs and select_attrs <= self.attr_set:
            return True
        return bool(where_attrs) and where_attrs <= self.attr_set


class LayoutAdvisor:
    """Generates and ranks candidate column groups for one table."""

    def __init__(
        self,
        table: Table,
        cost_model: CostModel,
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.table = table
        self.cost_model = cost_model
        self.config = config or EngineConfig()

    # Abstract costing ---------------------------------------------------------
    #
    # Costing treats single-column layouts implicitly (as a set of
    # available attribute names) so the greedy covers only iterate over
    # the handful of multi-attribute groups — the advisor runs inside
    # query processing and must stay cheap.

    def _group_universe(
        self, extra: Sequence[FrozenSet[str]]
    ) -> Tuple[List[FrozenSet[str]], FrozenSet[str]]:
        """(multi-attribute groups, attributes available as singles)."""
        multi: List[FrozenSet[str]] = []
        singles: set = set()
        for layout in self.table.layouts:
            if layout.width == 1:
                singles.add(layout.attrs[0])
            else:
                multi.append(layout.attr_set)
        for group in extra:
            if not group:
                continue
            if len(group) == 1:
                singles |= group
            else:
                multi.append(group)
        return multi, frozenset(singles)

    @staticmethod
    def _cover(
        needed: FrozenSet[str],
        multi: Sequence[FrozenSet[str]],
        singles: FrozenSet[str],
    ) -> Optional[List[FrozenSet[str]]]:
        """Greedy fewest-layouts cover; leftovers fall back to singles."""
        remaining = set(needed)
        chosen: List[FrozenSet[str]] = []
        while remaining:
            best = None
            best_key = (0, 0)
            for group in multi:
                covered = len(remaining & group)
                if covered == 0:
                    continue
                key = (covered, -len(group))
                if key > best_key:
                    best_key = key
                    best = group
            if best is None:
                break
            chosen.append(best)
            remaining -= best
        if remaining:
            if not remaining <= singles:
                return None
            chosen.extend(frozenset({attr}) for attr in sorted(remaining))
        return chosen

    def _specs(
        self,
        cover: Sequence[FrozenSet[str]],
        needed: FrozenSet[str],
        num_rows: int,
    ) -> Tuple[GroupSpec, ...]:
        return tuple(
            GroupSpec.of(len(group), len(needed & group), num_rows)
            for group in cover
            if needed & group
        )

    @staticmethod
    def _narrowest_cover(
        needed: FrozenSet[str],
        multi: Sequence[FrozenSet[str]],
        singles: FrozenSet[str],
    ) -> Optional[List[FrozenSet[str]]]:
        """Per-attribute narrowest provider (column-store-ish cover)."""
        chosen: List[FrozenSet[str]] = []
        seen: set = set()
        for attr in needed:
            if attr in singles:
                provider: FrozenSet[str] = frozenset({attr})
            else:
                candidates = [g for g in multi if attr in g]
                if not candidates:
                    return None
                provider = min(candidates, key=len)
            if provider not in seen:
                seen.add(provider)
                chosen.append(provider)
        return chosen

    def _query_cost_split(
        self,
        info: QueryInfo,
        multi: Sequence[FrozenSet[str]],
        singles: FrozenSet[str],
    ) -> float:
        """Minimum estimated cost over cover variants × legal strategies."""
        from ..execution.strategies import MAX_FUSED_STREAMS

        num_rows = self.table.num_rows
        all_attrs = frozenset(info.all_attrs)
        select_attrs = frozenset(info.select_attrs)
        where_attrs = frozenset(info.where_attrs)

        covers = []
        greedy = self._cover(all_attrs, multi, singles)
        if greedy is not None:
            covers.append(greedy)
        narrow = self._narrowest_cover(all_attrs, multi, singles)
        if narrow is not None and narrow not in covers:
            covers.append(narrow)

        from ..execution.strategies import MAX_FUSED_SINGLES

        costs: List[float] = []
        for cover in covers:
            # Mirror the planner's fused_allowed rule: anchored by a
            # tuple-bearing group, few singleton streams, few streams.
            singles = sum(1 for group in cover if len(group) == 1)
            if (
                len(cover) <= MAX_FUSED_STREAMS
                and singles <= MAX_FUSED_SINGLES
                and singles < len(cover)
            ):
                specs = self._specs(cover, all_attrs, num_rows)
                costs.append(self.cost_model.fused_cost(info, specs))
            costs.append(
                self.cost_model.late_cost(
                    info,
                    self._specs(cover, select_attrs, num_rows),
                    self._specs(cover, where_attrs, num_rows),
                )
            )
        if not costs:
            raise ValueError(
                f"no group cover for attributes {sorted(all_attrs)}"
            )
        return min(costs)

    def query_cost(
        self, info: QueryInfo, extra_groups: Sequence[FrozenSet[str]] = ()
    ) -> float:
        """Best estimated cost of one query under existing layouts plus
        hypothetical ``extra_groups`` (the q_j(C_i) term of Eq. 1).

        Because layouts replicate, adding a group never increases a
        query's estimated cost (the minimum includes the old covers).
        """
        multi, singles = self._group_universe(extra_groups)
        return self._query_cost_split(info, multi, singles)

    def _workload_cost(
        self,
        infos: Sequence[QueryInfo],
        extra_groups: Sequence[FrozenSet[str]],
    ) -> float:
        return sum(self.query_cost(info, extra_groups) for info in infos)

    def _build_cost(self, group: FrozenSet[str]) -> float:
        """Transformation cost estimate for stitching ``group`` from the
        narrowest existing providers."""
        source_width = 0
        counted = set()
        for attr in group:
            providers = self.table.layouts_containing(attr)
            provider = providers[0]
            if id(provider) not in counted:
                counted.add(id(provider))
                source_width += provider.width
        return self.cost_model.build_cost_estimate(
            self.table.num_rows, len(group), source_width
        )

    # Proposal ---------------------------------------------------------------------

    def propose(self, monitor: Monitor) -> List[CandidateLayout]:
        """Run one adaptation phase over the monitoring window.

        Returns the ranked candidate pool (best expected gain first),
        already filtered to groups that actually improve on the current
        configuration net of their transformation cost.

        The search is the paper's pruned enumeration — clause-level
        seeds, iterative pairwise merging, Eq. 1 scoring — implemented
        incrementally: adding a group only re-costs the windowed
        patterns it intersects, so an adaptation phase stays a small
        fraction of query processing time.
        """
        window = monitor.window
        if not window:
            return []

        # Deduplicate the window into weighted patterns: repeated
        # queries cost the same, so analyze/cost each shape once.
        weighted: Dict[tuple, list] = {}
        for query in window:
            sig = query.signature()
            key = (sig.select_attrs, sig.where_attrs, sig.structure)
            entry = weighted.get(key)
            if entry is None:
                weighted[key] = [query, 1]
            else:
                entry[1] += 1
        infos: List[QueryInfo] = []
        weights: List[int] = []
        for query, count in weighted.values():
            infos.append(analyze_query(query, self.table.schema))
            weights.append(count)
        attr_sets = [frozenset(info.all_attrs) for info in infos]

        multi_existing, singles = self._group_universe(())
        existing = {layout.attr_set for layout in self.table.layouts}

        # Step 1: narrowest candidate groups from clause-level patterns.
        seeds: Dict[FrozenSet[str], str] = {}
        for pattern in monitor.patterns():
            if len(pattern.attrs) >= 2:
                seeds.setdefault(pattern.attrs, pattern.clause)
        # Whole-query access sets are natural fused-scan groups too.
        for attrs, _count in monitor.distinct_access_sets():
            if len(attrs) >= 2:
                seeds.setdefault(attrs, "merge")
        # Affinity clusters (paper: "attributes accessed together and
        # have similar frequencies should be grouped together") seed
        # cross-query groups no single query proposes by itself.
        affinity_floor = max(2.0, len(window) / 8.0)
        for matrix, clause in (
            (monitor.select_affinity, "select"),
            (monitor.where_affinity, "where"),
        ):
            for cluster in matrix.clusters(min_affinity=affinity_floor):
                if 2 <= len(cluster) <= 48:
                    seeds.setdefault(cluster, clause)
        pool = {g: o for g, o in seeds.items() if g not in existing}
        # Bound the search: keep the most promising seeds (frequent and
        # wide patterns first) — the paper prunes the same way ("the
        # size of the initial solution is in the worst case quadratic to
        # the number of narrow partitions").
        if len(pool) > 24:
            freq = {p.attrs: p.count for p in monitor.patterns()}
            ranked = sorted(
                pool, key=lambda g: (-freq.get(g, 1), -len(g), sorted(g))
            )
            pool = {g: pool[g] for g in ranked[:24]}

        build_cost_memo: Dict[FrozenSet[str], float] = {}

        def build_cost(group: FrozenSet[str]) -> float:
            cached = build_cost_memo.get(group)
            if cached is None:
                cached = self._build_cost(group)
                build_cost_memo[group] = cached
            return cached

        # Per-pattern cost under the current configuration + chosen set.
        cost_q = [
            self._query_cost_split(info, multi_existing, singles)
            for info in infos
        ]

        # Step 2+3: greedy selection with iterative pairwise merging,
        # evaluated incrementally per intersecting pattern.
        chosen: List[FrozenSet[str]] = []
        chosen_origin: Dict[FrozenSet[str], str] = {}
        first_net = 0.0
        while len(chosen) < self.config.max_candidates:
            candidates = dict(pool)
            # Merging helps only when some query spans both parts (it
            # removes that query's group-joining overhead, section 3.2);
            # merges of unrelated groups are pruned without evaluation.
            for first in chosen:
                for second in list(pool) + chosen:
                    merged = first | second
                    if (
                        merged == first
                        or merged == second
                        or merged in existing
                        or merged in candidates
                    ):
                        continue
                    if not any(
                        attrs & first and attrs & second
                        for attrs in attr_sets
                    ):
                        continue
                    candidates[merged] = "merge"
            if len(candidates) > 40:
                ranked = sorted(
                    candidates,
                    key=lambda g: (-len(g), sorted(g)),
                )
                candidates = {g: candidates[g] for g in ranked[:40]}
            best_group = None
            best_net = 0.0
            best_origin = ""
            horizon = self.config.future_use_multiplier
            for group, origin in candidates.items():
                gain = 0.0
                multi_try = multi_existing + chosen + [group]
                for i, attrs in enumerate(attr_sets):
                    if not attrs & group:
                        continue
                    new_cost = self._query_cost_split(
                        infos[i], multi_try, singles
                    )
                    gain += (cost_q[i] - new_cost) * weights[i]
                net = gain * horizon - build_cost(group)
                if net > best_net + 1e-15:
                    best_net = net
                    best_group = group
                    best_origin = origin
            if best_group is None:
                break
            if first_net == 0.0:
                first_net = best_net
            elif best_net < 0.01 * first_net:
                break  # diminishing returns; stop searching
            chosen.append(best_group)
            chosen_origin[best_group] = best_origin
            multi_now = multi_existing + chosen
            for i, attrs in enumerate(attr_sets):
                if attrs & best_group:
                    cost_q[i] = self._query_cost_split(
                        infos[i], multi_now, singles
                    )
            pool.pop(best_group, None)
            # Drop seeds the chosen group already subsumes.
            pool = {g: o for g, o in pool.items() if not g <= best_group}

        # Wrap the chosen groups as lazy candidates with per-use benefit.
        candidates_out: List[CandidateLayout] = []
        order = {n: i for i, n in enumerate(self.table.schema.names)}
        for group in chosen:
            frequency = 0
            saving = 0.0
            for i, info in enumerate(infos):
                attrs = attr_sets[i]
                serves = attrs and (
                    attrs <= group
                    or (
                        info.select_attrs
                        and frozenset(info.select_attrs) <= group
                    )
                    or (
                        info.where_attrs
                        and frozenset(info.where_attrs) <= group
                    )
                )
                if not serves:
                    continue
                base = self._query_cost_split(
                    infos[i], multi_existing, singles
                )
                with_group = self._query_cost_split(
                    infos[i], multi_existing + [group], singles
                )
                if with_group < base:
                    frequency += weights[i]
                    saving += (base - with_group) * weights[i]
            if frequency == 0:
                continue
            candidates_out.append(
                CandidateLayout(
                    attrs=tuple(sorted(group, key=order.__getitem__)),
                    # Expected future uses, not just the windowed count.
                    frequency=max(
                        frequency,
                        int(frequency * self.config.future_use_multiplier),
                    ),
                    benefit_per_use=saving / frequency,
                    build_cost=build_cost(group),
                    origin=chosen_origin.get(group, "merge"),
                )
            )
        candidates_out.sort(key=lambda c: -c.expected_gain)
        return candidates_out

    # Physical-design proposals (clustering + encoding) --------------------------

    #: A clustered table prunes most morsels for a selective predicate
    #: on the cluster key; the residual fraction a scan still touches.
    CLUSTER_RESIDUAL_SCAN = 0.2

    #: Cardinality probe sample size for float columns (a full
    #: ``np.unique`` would cost nearly as much as the encoding itself).
    ENCODE_PROBE_ROWS = 65536

    def propose_physical(self, monitor: Monitor) -> List[CandidateLayout]:
        """Clustering/encoding candidates from the hottest WHERE attrs.

        The same Eq. 1 discipline as :meth:`propose`, applied to the two
        physical-design axes the knobs enable:

        - **cluster** (``config.adaptive_clustering``): reorder rows on
          the single most predicate-hot attribute.  Benefit per covered
          query is the scan cost Eq. 2 says zone-map pruning would then
          skip (``1 - CLUSTER_RESIDUAL_SCAN`` of a sequential pass over
          the query's providers); the build cost is a full-table rewrite
          (every layout is permuted).
        - **encode** (``config.encoded_layouts``): add a compressed
          replica of each sufficiently hot predicate attribute whose
          stats probe suggests a codec exists.  Benefit is the byte
          shrink on the attribute's scan; the build cost is a one-column
          rewrite.

        Both are hedged by the switching policy exactly like vertical
        switches — a proposal here materializes only after its ledger
        entry covers ``hedging_factor`` build costs.
        """
        config = self.config
        if not (config.adaptive_clustering or config.encoded_layouts):
            return []
        num_rows = self.table.num_rows
        if num_rows == 0:
            return []
        heat: Dict[str, int] = {}
        for pattern in monitor.patterns():
            if pattern.clause != "where":
                continue
            for attr in pattern.attrs:
                heat[attr] = heat.get(attr, 0) + pattern.count
        if not heat:
            return []
        ranked = sorted(heat, key=lambda a: (-heat[a], a))
        scan_unit = self.cost_model.sequential_access(
            GroupSpec.of(1, 1, num_rows)
        )
        horizon = config.future_use_multiplier
        out: List[CandidateLayout] = []

        if config.adaptive_clustering and num_rows >= config.cluster_rows_min:
            attr = ranked[0]
            already = (
                self.table.cluster_key == attr
                and self.table.clustered_fraction >= 0.95
            )
            if not already:
                frequency = heat[attr]
                out.append(
                    CandidateLayout(
                        attrs=(attr,),
                        frequency=max(
                            frequency, int(frequency * horizon)
                        ),
                        benefit_per_use=scan_unit
                        * (1.0 - self.CLUSTER_RESIDUAL_SCAN),
                        build_cost=self.cost_model.build_cost_estimate(
                            num_rows,
                            self.table.schema.width,
                            self.table.schema.width,
                        ),
                        origin="where",
                        kind="cluster",
                    )
                )

        if config.encoded_layouts and num_rows >= config.encoding_min_rows:
            encoded_attrs = {
                layout.attrs[0]
                for layout in self.table.layouts
                if layout.kind is LayoutKind.ENCODED
            }
            for attr in ranked[:2]:
                if attr in encoded_attrs:
                    continue
                shrink = self._encode_shrink(attr, num_rows)
                if shrink <= 0.0:
                    continue
                frequency = heat[attr]
                out.append(
                    CandidateLayout(
                        attrs=(attr,),
                        frequency=max(
                            frequency, int(frequency * horizon)
                        ),
                        benefit_per_use=scan_unit * shrink,
                        build_cost=self.cost_model.build_cost_estimate(
                            num_rows, 1, 1
                        ),
                        origin="where",
                        kind="encode",
                    )
                )
        return out

    def _encode_shrink(self, attr: str, num_rows: int) -> float:
        """Estimated fractional byte saving of encoding ``attr``, or 0.

        A cheap stats probe, not a trial encode: integer columns cost
        one min/max pass (the bit-packing decision is exact); float
        columns sample ``ENCODE_PROBE_ROWS`` values for a cardinality
        estimate — the actual :func:`encode_column` run at
        materialization time is the authoritative decision and may
        still decline, which simply drops the candidate.
        """
        values = self.table.column(attr)
        word = float(values.dtype.itemsize)
        if values.dtype.kind == "i":
            span = int(values.max()) - int(values.min())
            for nbytes in (1, 2, 4):
                if span < 1 << (8 * nbytes):
                    return 1.0 - nbytes / word
            return 0.0
        sample = values[: self.ENCODE_PROBE_ROWS]
        cardinality = np.unique(sample).shape[0]
        if cardinality > self.config.dict_max_cardinality:
            return 0.0
        code_bytes = 1 if cardinality <= 256 else 2
        return 1.0 - code_bytes / word
