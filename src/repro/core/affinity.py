"""Attribute affinity matrices (paper section 3.2, citing Navathe [38]).

Affinity between two attributes is how often they are accessed together
within one clause.  H2O keeps two matrices — one for SELECT-clause
co-access, one for WHERE-clause co-access — so that, e.g., predicates
that are evaluated together can get their own column group driving a
selection vector, independently of the projection groups.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

import numpy as np

from ..storage.schema import Schema


class AffinityMatrix:
    """Symmetric co-access counts over a schema's attributes."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._index = {name: i for i, name in enumerate(schema.names)}
        self._matrix = np.zeros((schema.width, schema.width), dtype=np.float64)
        #: Per-pattern fancy-index cache: a recurring workload updates
        #: the matrix with the same handful of attribute sets on every
        #: query, so the ``np.ix_`` grids are memoized per frozenset.
        self._ix_cache: Dict[FrozenSet[str], tuple] = {}
        #: Whether a removal may have driven cells below zero (float
        #: drift).  Clamping is deferred to the next *read* — the write
        #: path runs once per query, the read paths run at adaptation
        #: time only.
        self._dirty = False

    def _clamped(self) -> np.ndarray:
        if self._dirty:
            np.maximum(self._matrix, 0.0, out=self._matrix)
            self._dirty = False
        return self._matrix

    @property
    def matrix(self) -> np.ndarray:
        """The raw (width × width) count matrix (diagonal = frequency)."""
        return self._clamped()

    def add(self, attrs: Iterable[str], weight: float = 1.0) -> None:
        """Record one access touching ``attrs`` together."""
        grid = None
        if isinstance(attrs, frozenset):
            grid = self._ix_cache.get(attrs)
        if grid is None:
            positions = [
                self._index[name] for name in attrs if name in self._index
            ]
            if not positions:
                return
            idx = np.array(positions, dtype=np.intp)
            grid = np.ix_(idx, idx)
            if isinstance(attrs, frozenset):
                self._ix_cache[attrs] = grid
        self._matrix[grid] += weight

    def remove(self, attrs: Iterable[str], weight: float = 1.0) -> None:
        """Forget one previously recorded access (window eviction)."""
        self.add(attrs, -weight)
        self._dirty = True

    def affinity(self, first: str, second: str) -> float:
        """Co-access count of two attributes."""
        return float(
            self._clamped()[self._index[first], self._index[second]]
        )

    def frequency(self, attr: str) -> float:
        """How often ``attr`` was accessed at all."""
        position = self._index[attr]
        return float(self._clamped()[position, position])

    def hot_attributes(self, limit: int = 0) -> List[Tuple[str, float]]:
        """Attributes by access frequency, hottest first."""
        matrix = self._clamped()
        pairs = [
            (name, float(matrix[i, i]))
            for name, i in self._index.items()
            if matrix[i, i] > 0
        ]
        pairs.sort(key=lambda pair: (-pair[1], pair[0]))
        return pairs[:limit] if limit else pairs

    def clusters(self, min_affinity: float = 1.0) -> List[FrozenSet[str]]:
        """Connected components of the affinity graph above a threshold.

        A cheap clustering used for reporting and as a sanity input to
        the advisor: attributes whose pairwise affinity clears the
        threshold land in the same cluster.
        """
        names = self.schema.names
        matrix = self._clamped()
        adjacency: Dict[str, set] = {name: set() for name in names}
        for i, first in enumerate(names):
            for j in range(i + 1, len(names)):
                if matrix[i, j] >= min_affinity:
                    second = names[j]
                    adjacency[first].add(second)
                    adjacency[second].add(first)
        seen: set = set()
        components: List[FrozenSet[str]] = []
        for name in names:
            if name in seen or self._matrix[self._index[name], self._index[name]] <= 0:
                continue
            stack = [name]
            component = set()
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                stack.extend(adjacency[node] - component)
            seen |= component
            components.append(frozenset(component))
        return components

    def reset(self) -> None:
        self._matrix[:] = 0.0
        self._dirty = False
