"""Layout-switching policies: when may a candidate actually be built?

The paper's H2O is *greedy*: the moment a candidate layout covers the
incoming query, clears the amortization floor and shows positive
expected gain, it is materialized — the reorganization is paid up front
on the bet that the workload stays put.  Adversarial workloads (a
ping-pong between query classes, a periodic shift) break that bet:
every phase change buys a layout the next phase abandons, and the
engine thrashes.

The *guarded* policy treats each reorganization as an investment hedged
against observed benefit, following the ski-rental discipline of
"Dynamic Data Layout Optimization with Worst-case Guarantees" (arXiv
2405.04984).  Per candidate layout it keeps a ledger entry accruing the
Eq. 2 benefit the candidate *would have delivered* on every windowed
query it covers (``CandidateLayout.benefit_per_use``, the advisor's
per-use cost-model delta).  The switch is allowed only once

    accrued_benefit >= hedging_factor * projected_build_cost

so by construction, at every switch the benefit already foregone covers
the hedged build cost:

    hedging_factor * (total reorganization cost)  <=  total accrued
                                                      benefit at switch

— the **regret invariant** the property tests in
tests/test_adaptation_policy.py assert on arbitrary workload streams.
A workload that never re-uses a layout long enough to accrue its hedged
cost never pays for it; a stable workload pays a one-off delay of
``hedging_factor`` build-costs' worth of benefit and then switches
exactly as greedy would.  With ``hedging_factor == 0`` the gate is
always open and the policy is decision-identical to greedy.

Both policies expose the same interface, so the engine carries exactly
one conditional (which class to construct).  All methods are called
under ``engine.lock``; the policy itself is not thread-safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..config import EngineConfig
from .advisor import CandidateLayout

#: Ledger entries kept per policy; beyond this the lowest-accrual entry
#: is evicted (an adversary spraying one-off shapes must not grow the
#: ledger without bound).
MAX_LEDGER_ENTRIES = 128

#: Switch records retained for export/inspection (totals are exact
#: regardless; only the per-switch evidence list is bounded).
MAX_SWITCH_RECORDS = 256


@dataclass
class LedgerEntry:
    """Running debt/benefit account for one candidate layout."""

    attrs: Tuple[str, ...]
    #: Candidate kind ("group" | "cluster" | "encode") — part of the
    #: ledger identity so a cluster proposal and a group over the same
    #: attributes keep separate accounts.
    kind: str = "group"
    #: Cumulative estimated benefit (Eq. 2 delta per covered query).
    accrued: float = 0.0
    #: Latest projected build cost (advisor estimate, refreshed on
    #: every observation).
    projected_cost: float = 0.0
    #: Covered queries that contributed to ``accrued``.
    observations: int = 0
    #: Times the guard refused an otherwise-eligible materialization.
    deferrals: int = 0
    #: Query index of the most recent contributing observation.
    last_observed: int = -1

    def as_dict(self) -> Dict[str, object]:
        return {
            "attrs": list(self.attrs),
            "kind": self.kind,
            "accrued": self.accrued,
            "projected_cost": self.projected_cost,
            "observations": self.observations,
            "deferrals": self.deferrals,
            "last_observed": self.last_observed,
        }


@dataclass(frozen=True)
class SwitchRecord:
    """Evidence captured at the moment a materialization was allowed."""

    attrs: Tuple[str, ...]
    #: Benefit accrued by the ledger entry when the switch was granted.
    accrued: float
    #: The candidate's build-cost estimate at switch time.
    build_cost: float
    #: The hedging factor in force (0 under greedy).
    hedging_factor: float
    query_index: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "attrs": list(self.attrs),
            "accrued": self.accrued,
            "build_cost": self.build_cost,
            "hedging_factor": self.hedging_factor,
            "query_index": self.query_index,
        }


class AdaptationPolicy:
    """The greedy (paper-faithful) policy: every gate is open.

    Also the shared base class.  It still keeps the switch ledger so
    ``engine.stats()`` / ``health()`` report reorganization spend
    uniformly across policies.
    """

    name = "greedy-paper"

    def __init__(self, config: EngineConfig) -> None:
        self.config = config
        self.hedging_factor = 0.0
        self.ledger: Dict[FrozenSet[str], LedgerEntry] = {}
        self.switches: List[SwitchRecord] = []
        #: Totals are exact even when ``switches`` is truncated.
        self.switch_count = 0
        self.invested_cost = 0.0
        self.accrued_at_switch = 0.0
        self.deferrals = 0

    # Decision interface ---------------------------------------------------

    def observe(
        self,
        select_attrs: FrozenSet[str],
        where_attrs: FrozenSet[str],
        candidates: Iterable[CandidateLayout],
        query_index: int,
    ) -> bool:
        """Account one query against the candidate ledger.

        Returns True when the engine should *skip the plan-cache fast
        lane* for this query: a previously deferred candidate now
        clears its hedged threshold, and only the cold path can trigger
        its materialization.  Greedy never defers, hence never asks for
        the bypass — fast-lane behaviour is untouched.
        """
        return False

    def allow_materialization(
        self, candidate: CandidateLayout, query_index: int
    ) -> bool:
        """May this candidate be built right now?  Greedy: always."""
        return True

    def would_allow(self, candidate: CandidateLayout) -> bool:
        """Side-effect-free preview of :meth:`allow_materialization`.

        Used by the background scheduler's polling loop, which must not
        inflate the deferral counters on every cycle.
        """
        return True

    def note_materialized(
        self, candidate: CandidateLayout, query_index: int
    ) -> None:
        """Record that ``candidate`` was actually built."""
        entry = self.ledger.pop(candidate.ledger_key, None)
        accrued = entry.accrued if entry is not None else 0.0
        self._record_switch(
            SwitchRecord(
                attrs=tuple(candidate.attrs),
                accrued=accrued,
                build_cost=candidate.build_cost,
                hedging_factor=self.hedging_factor,
                query_index=query_index,
            )
        )

    def _record_switch(self, record: SwitchRecord) -> None:
        self.switch_count += 1
        self.invested_cost += record.build_cost
        self.accrued_at_switch += record.accrued
        self.switches.append(record)
        if len(self.switches) > MAX_SWITCH_RECORDS:
            del self.switches[0]

    # The regret invariant -------------------------------------------------

    def regret_bound_satisfied(self, tolerance: float = 1e-9) -> bool:
        """``hedging_factor * invested_cost <= accrued_at_switch``.

        The guarded policy maintains this by construction (every switch
        is granted only once its entry's accrual covers the hedged
        cost); for greedy the factor is 0 and the bound is vacuous.
        """
        bound = self.hedging_factor * self.invested_cost
        return bound <= self.accrued_at_switch + tolerance

    # Introspection / persistence -----------------------------------------

    def snapshot(self, ledger_limit: int = 8) -> Dict[str, object]:
        """Bounded summary for ``engine.stats()`` and service health."""
        hottest = sorted(
            self.ledger.values(), key=lambda e: -e.accrued
        )[:ledger_limit]
        return {
            "policy": self.name,
            "hedging_factor": self.hedging_factor,
            "switches": self.switch_count,
            "invested_cost": self.invested_cost,
            "accrued_at_switch": self.accrued_at_switch,
            "deferrals": self.deferrals,
            "ledger_entries": len(self.ledger),
            "ledger": {
                ",".join(entry.attrs): {
                    "accrued": entry.accrued,
                    "projected_cost": entry.projected_cost,
                    "observations": entry.observations,
                    "deferrals": entry.deferrals,
                }
                for entry in hottest
            },
        }

    def export(self) -> Dict[str, object]:
        """JSON-serializable full state (see ``adaptation_state()``)."""
        return {
            "policy": self.name,
            "hedging_factor": self.hedging_factor,
            "switch_count": self.switch_count,
            "invested_cost": self.invested_cost,
            "accrued_at_switch": self.accrued_at_switch,
            "deferrals": self.deferrals,
            "entries": [
                entry.as_dict() for entry in self.ledger.values()
            ],
            "switches": [record.as_dict() for record in self.switches],
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Replace this policy's state with an exported one.

        Tolerant of malformed or cross-policy snapshots: every field
        falls back to a clean default, so a corrupt checkpoint yields a
        fresh ledger rather than a crash.  The configured
        ``hedging_factor`` is *not* overwritten — the knob belongs to
        the running config, the ledger to the recovered history.
        """
        if not isinstance(state, dict):
            return
        self.switch_count = _as_int(state.get("switch_count"))
        self.invested_cost = _as_float(state.get("invested_cost"))
        self.accrued_at_switch = _as_float(state.get("accrued_at_switch"))
        self.deferrals = _as_int(state.get("deferrals"))
        self.ledger = {}
        entries = state.get("entries", [])
        if isinstance(entries, list):
            for raw in entries[:MAX_LEDGER_ENTRIES]:
                if not isinstance(raw, dict):
                    continue
                attrs = raw.get("attrs")
                if not isinstance(attrs, (list, tuple)) or not attrs:
                    continue
                attrs = tuple(str(a) for a in attrs)
                kind = str(raw.get("kind", "group"))
                key = (
                    frozenset(attrs)
                    if kind == "group"
                    else (kind,) + attrs
                )
                self.ledger[key] = LedgerEntry(
                    attrs=attrs,
                    kind=kind,
                    accrued=_as_float(raw.get("accrued")),
                    projected_cost=_as_float(raw.get("projected_cost")),
                    observations=_as_int(raw.get("observations")),
                    deferrals=_as_int(raw.get("deferrals")),
                    last_observed=_as_int(raw.get("last_observed"), -1),
                )
        self.switches = []
        switches = state.get("switches", [])
        if isinstance(switches, list):
            for raw in switches[-MAX_SWITCH_RECORDS:]:
                if not isinstance(raw, dict):
                    continue
                attrs = raw.get("attrs")
                if not isinstance(attrs, (list, tuple)):
                    continue
                self.switches.append(
                    SwitchRecord(
                        attrs=tuple(str(a) for a in attrs),
                        accrued=_as_float(raw.get("accrued")),
                        build_cost=_as_float(raw.get("build_cost")),
                        hedging_factor=_as_float(
                            raw.get("hedging_factor")
                        ),
                        query_index=_as_int(raw.get("query_index")),
                    )
                )


class GuardedPolicy(AdaptationPolicy):
    """Regret-bounded switching: accrue first, build once hedged."""

    name = "guarded"

    def __init__(self, config: EngineConfig) -> None:
        super().__init__(config)
        self.hedging_factor = config.hedging_factor

    def _entry(self, candidate: CandidateLayout) -> LedgerEntry:
        entry = self.ledger.get(candidate.ledger_key)
        if entry is None:
            if len(self.ledger) >= MAX_LEDGER_ENTRIES:
                coldest = min(
                    self.ledger, key=lambda k: self.ledger[k].accrued
                )
                del self.ledger[coldest]
            entry = LedgerEntry(
                attrs=tuple(candidate.attrs), kind=candidate.kind
            )
            self.ledger[candidate.ledger_key] = entry
        return entry

    def _gate_open(
        self, entry: LedgerEntry, build_cost: float
    ) -> bool:
        return entry.accrued >= self.hedging_factor * build_cost

    def observe(
        self,
        select_attrs: FrozenSet[str],
        where_attrs: FrozenSet[str],
        candidates: Iterable[CandidateLayout],
        query_index: int,
    ) -> bool:
        ripe = False
        for candidate in candidates:
            if not candidate.serves(select_attrs, where_attrs):
                continue
            entry = self._entry(candidate)
            entry.accrued += max(candidate.benefit_per_use, 0.0)
            entry.projected_cost = candidate.build_cost
            entry.observations += 1
            entry.last_observed = query_index
            # Ask for the fast-lane bypass only when the guard has
            # actually deferred this candidate before (so greedy would
            # already have built it and the shape's plan is cached) and
            # the accrual now covers the hedged cost — the cold path
            # must get one shot at triggering the build.
            if entry.deferrals > 0 and self._gate_open(
                entry, candidate.build_cost
            ):
                ripe = True
        return ripe

    def allow_materialization(
        self, candidate: CandidateLayout, query_index: int
    ) -> bool:
        entry = self._entry(candidate)
        if self._gate_open(entry, candidate.build_cost):
            return True
        entry.deferrals += 1
        self.deferrals += 1
        return False

    def would_allow(self, candidate: CandidateLayout) -> bool:
        entry = self.ledger.get(candidate.ledger_key)
        accrued = entry.accrued if entry is not None else 0.0
        return accrued >= self.hedging_factor * candidate.build_cost


def make_policy(config: EngineConfig) -> AdaptationPolicy:
    """The policy instance for ``config.adaptation_policy``."""
    if config.adaptation_policy == "guarded":
        return GuardedPolicy(config)
    return AdaptationPolicy(config)


def _as_float(value: object, default: float = 0.0) -> float:
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return default


def _as_int(value: object, default: int = 0) -> int:
    try:
        return int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return default
