"""The steady-state plan cache (the engine's fast lane).

H2O's adaptation overhead is designed to be paid once and amortized
over a recurring query stream (paper section 3.4 caches generated
operators for exactly this reason).  The cold path still re-derives the
*decision* for every query: analyze the parse tree, enumerate (layout
cover × strategy) plans, cost each with Eq. 2, and rebuild the operator
cache key.  In the fully-adapted steady state — the tail of Fig. 7 —
none of that can change between two structurally identical queries
unless the physical layouts, the candidate pool, or the learned
selectivities changed.

This module caches the whole decision: a
:class:`~repro.sql.signature.QueryShapeSignature` maps to the chosen
:class:`AccessPlan`, the resolved (already compiled) kernel, the
analyzer facts needed to interpret results, and a prebound
parameter-extraction function.  A repeat query becomes
``signature → cached plan → kernel call with fresh literals``.

Invalidation is layered:

- **layout epoch** — every entry is tagged with the table's
  ``layout_epoch`` at caching time; any layout creation, retirement or
  row append bumps the epoch and a later lookup drops the stale entry;
- **candidate pool** — the engine calls :meth:`PlanCache.invalidate_all`
  whenever the advisor refreshes candidates, because a cached plan must
  not shortcut past a query that should trigger online materialization;
- **selectivity drift** — the engine drops an entry when the learned
  selectivity of its predicate drifts beyond the configured band from
  the estimate the plan was costed with (Rong et al. frame this as
  bounding the regret of stale layout/plan decisions).

The cache is a bounded LRU over signatures, so a drifting workload
cannot grow it without bound.

**Thread safety.**  The cache is shared by every worker of the
concurrent query service, so all operations (including the LRU
bookkeeping a lookup performs) run under an internal lock, and
:meth:`stats` returns a defensive deep copy — callers can never observe
or mutate live internal state.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..execution.strategies import AccessPlan
from ..sql.query import Query
from ..sql.signature import QueryShapeSignature
from ..sql.types import DataType


@dataclass
class CachedPlan:
    """Everything needed to answer a repeat query without re-planning."""

    signature: QueryShapeSignature
    #: Table layout epoch this entry was created under.
    epoch: int
    plan: AccessPlan
    #: Human-readable plan string (as ``ExecStats.plan`` reports it).
    plan_desc: str
    #: Analyzer facts, valid for every query of this shape.
    select_attrs: Tuple[str, ...]
    where_attrs: Tuple[str, ...]
    all_attrs: Tuple[str, ...]
    output_types: Tuple[DataType, ...]
    is_aggregation: bool
    has_predicate: bool
    #: Compiled kernel (``None`` when the engine runs interpreted; the
    #: fast lane then reuses the cached plan but executes generically).
    kernel: Optional[Callable] = None
    #: Prebound literal extractor: query -> canonical parameter tuple.
    extract_params: Optional[Callable[[Query], Tuple[object, ...]]] = None
    #: Eq. 2 estimate the plan was chosen with.
    cost_estimate: float = 0.0
    #: Masked predicate key for the selectivity estimator ("" if none).
    predicate_key: str = ""
    #: Selectivity estimate at caching time (drift reference).
    selectivity: float = 1.0
    hits: int = 0


@dataclass
class PlanCache:
    """Signature-keyed LRU of :class:`CachedPlan` entries (thread-safe)."""

    capacity: int = 256
    _entries: "OrderedDict[QueryShapeSignature, CachedPlan]" = field(
        default_factory=OrderedDict
    )
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Entries dropped because they went stale (epoch mismatch,
    #: candidate refresh, selectivity drift), keyed by reason.
    invalidations: Dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def lookup(
        self, signature: QueryShapeSignature, epoch: int
    ) -> Optional[CachedPlan]:
        """The live entry for ``signature`` under ``epoch``, or None.

        An entry cached under an older layout epoch is dropped on sight
        (counted as an ``epoch`` invalidation) and reported as a miss —
        the cold path will re-plan against the current layouts and
        re-cache.
        """
        with self._lock:
            entry = self._entries.get(signature)
            if entry is None:
                self.misses += 1
                return None
            if entry.epoch != epoch:
                del self._entries[signature]
                self._count_invalidation("epoch")
                self.misses += 1
                return None
            self._entries.move_to_end(signature)
            self.hits += 1
            entry.hits += 1
            return entry

    def store(self, entry: CachedPlan) -> None:
        with self._lock:
            self._entries[entry.signature] = entry
            self._entries.move_to_end(entry.signature)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(
        self, signature: QueryShapeSignature, reason: str
    ) -> bool:
        """Drop one entry (e.g. on selectivity drift)."""
        with self._lock:
            if signature in self._entries:
                del self._entries[signature]
                self._count_invalidation(reason)
                return True
            return False

    def invalidate_all(self, reason: str) -> int:
        """Drop every entry (e.g. after a candidate-pool refresh)."""
        with self._lock:
            dropped = len(self._entries)
            if dropped:
                self._entries.clear()
                self._count_invalidation(reason, dropped)
            return dropped

    def _count_invalidation(self, reason: str, count: int = 1) -> None:
        # Caller holds ``_lock``.
        self.invalidations[reason] = (
            self.invalidations.get(reason, 0) + count
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, object]:
        """Counters for ``engine.describe()`` and the bench reports.

        Returns a consistent defensive copy taken under the lock: the
        ``invalidations`` dict is a fresh copy, never the live internal
        mapping, so callers cannot observe later mutations (or corrupt
        the cache by editing the returned value).
        """
        with self._lock:
            return {
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": dict(self.invalidations),
            }
