"""Data reorganization, offline and online (paper section 3.2, Fig. 13).

*Offline* reorganization stitches the new layout in a dedicated pass and
only then executes the query — two scans of the data.

*Online* reorganization is H2O's approach: a single physical operator
both builds the new layout and computes the query result block by block.
Each stitched block is written into the new group's backing array and,
while it is still cache-hot, the query's predicate and output
expressions are evaluated on it.  The relation is scanned once for both
tasks ("the early materialization strategy allows H2O to generate the
data layout and compute the query result without scanning the relation
twice").

Both passes accept either a live :class:`~repro.storage.relation.Table`
or a pinned :class:`~repro.storage.relation.LayoutSnapshot` — they only
read (schema, covering layouts, row count) and never mutate.  The
background adaptation scheduler exploits this: it stitches from a
snapshot *without holding any engine lock*, then publishes the finished
group atomically; a stitch raced by an append simply yields a group
whose row count no longer matches and is discarded at publication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from ..config import EngineConfig
from ..errors import ExecutionError
from ..execution.evaluator import (
    AggregateAccumulator,
    collect_aggregates,
    evaluate_predicate,
    evaluate_value,
    finalize_output,
)
from ..execution.result import QueryResult
from ..execution.volcano import projection_dtype
from ..sql.analyzer import QueryInfo
from ..storage.column_group import ColumnGroup
from ..storage.relation import LayoutSnapshot, Table
from ..storage.stitcher import stitch_group
from ..storage.zonemap import (
    ZoneMapBuilder,
    attach_zone_maps,
    build_zone_maps,
)
from ..extensions.cracking import CrackedColumn
from ..util.faultpoints import fault_point
from ..util.timing import Timer

#: Anything the reorganizer can read layouts from: a live table or an
#: immutable snapshot pinned by the caller.
LayoutSource = Union[Table, LayoutSnapshot]


@dataclass
class ReorgOutcome:
    """Result of one reorganization, with its timing split."""

    group: ColumnGroup
    result: Optional[QueryResult]
    seconds: float
    mode: str  # "online" | "offline"


@dataclass
class ClusterOutcome:
    """Result of one clustering pass over a table."""

    attr: str
    clustered_rows: int
    seconds: float
    mode: str  # "cluster-sort" | "cluster-refine"


class Reorganizer:
    """Builds new column groups, optionally fused with a query."""

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config or EngineConfig()

    def _zone_morsel_rows(self) -> int:
        """Morsel granularity for fused zone-map builds (0 = disabled)."""
        return self.config.morsel_rows if self.config.zone_maps else 0

    # Offline --------------------------------------------------------------------

    def offline(
        self, table: LayoutSource, attrs: Iterable[str]
    ) -> ReorgOutcome:
        """Stitch the group in a dedicated pass (no query involved).

        Read-only over ``table`` — pass a pinned snapshot to stitch
        off-lock while queries keep running.
        """
        ordered = table.schema.ordered(attrs)
        sources = table.covering_layouts(ordered)
        full_width = len(ordered) == table.schema.width
        # Injectable failure site: a background stitch dying before the
        # group is built.  Raises ReorganizationError; the caller (the
        # adaptation scheduler) counts a stitch failure and retries the
        # candidate on a later cycle from a fresh snapshot.
        fault_point("reorg.offline", attrs=ordered)
        with Timer() as timer:
            group, _stats = stitch_group(
                sources,
                ordered,
                table.schema,
                full_width=full_width,
                morsel_rows=self._zone_morsel_rows(),
            )
        return ReorgOutcome(
            group=group, result=None, seconds=timer.elapsed, mode="offline"
        )

    # Clustering -----------------------------------------------------------------

    #: Upper bound on cracking pivots per incremental refinement pass.
    MAX_REFINE_PIVOTS = 64

    def cluster(self, table: Table, attr: str) -> Optional[ClusterOutcome]:
        """Reorder the table's rows so ``attr`` is (mostly) sorted.

        The adaptive-clustering axis: one permutation is applied to
        *every* layout atomically (row alignment and the logical tuple
        multiset are preserved — see :meth:`Table.reorder_rows`), then
        zone maps are rebuilt eagerly so the very next selective query
        on ``attr`` prunes almost every morsel.

        Two modes, picked automatically:

        - **cluster-sort**: a full stable argsort (NaNs last).  Used on
          first clustering, on a key change, or when the unclustered
          tail has outgrown the sorted prefix.
        - **cluster-refine**: when the table is already clustered on
          ``attr`` and only an appended tail is out of order, the tail
          is partitioned with :class:`CrackedColumn` cracks at the
          sorted prefix's morsel-boundary quantiles — each tail morsel
          then covers a bounded value range, so zone maps prune it
          nearly as well, at a fraction of a full sort's cost.  The
          clustered prefix length is *not* extended (the tail is
          range-partitioned, not sorted) — telemetry stays honest.

        Returns ``None`` when there is nothing to do, and raises
        :class:`~repro.errors.LayoutError` when an append raced the
        permutation (callers retry on a later trigger).
        """
        snapshot = table.snapshot()
        num_rows = snapshot.num_rows
        if num_rows == 0:
            return None
        values = snapshot.column(attr)
        prev_rows = (
            snapshot.clustered_rows if snapshot.cluster_key == attr else 0
        )
        tail = num_rows - prev_rows
        fault_point("reorg.cluster", attr=attr, rows=num_rows)
        with Timer() as timer:
            if prev_rows > 0 and 0 < tail <= num_rows // 2:
                mode = "cluster-refine"
                perm = self._refine_perm(values, prev_rows)
                clustered_rows = prev_rows
            elif tail == 0:
                return None  # fully clustered already
            else:
                mode = "cluster-sort"
                perm = np.argsort(values, kind="stable")
                clustered_rows = num_rows
            table.reorder_rows(perm, attr, clustered_rows)
            if self.config.zone_maps:
                self._rebuild_zone_maps(table)
        return ClusterOutcome(
            attr=attr,
            clustered_rows=clustered_rows,
            seconds=timer.elapsed,
            mode=mode,
        )

    def _refine_perm(
        self, values: np.ndarray, prev_rows: int
    ) -> np.ndarray:
        """Permutation that range-partitions the tail by prefix quantiles."""
        prefix = values[:prev_rows]
        cracked = CrackedColumn(values[prev_rows:])
        boundaries = range(
            self.config.morsel_rows, prev_rows, self.config.morsel_rows
        )
        pivots = sorted(
            {
                float(prefix[position])
                for position in list(boundaries)[: self.MAX_REFINE_PIVOTS]
            }
        )
        for pivot in pivots:
            if pivot == pivot:  # skip NaN quantiles (sorted last)
                cracked.crack(pivot)
        return np.concatenate(
            [
                np.arange(prev_rows, dtype=np.intp),
                prev_rows + cracked.row_ids,
            ]
        )

    def _rebuild_zone_maps(self, table: Table) -> None:
        """Eager zone-map rebuild after a reorder dropped them all."""
        for layout in table.layouts:
            attach_zone_maps(
                layout, build_zone_maps(layout, self.config.morsel_rows)
            )

    # Online ---------------------------------------------------------------------

    def online(
        self, table: LayoutSource, attrs: Iterable[str], info: QueryInfo
    ) -> ReorgOutcome:
        """One pass: build the group *and* answer ``info`` from it.

        The query need not be fully contained in the new group: a
        select-clause group can be built while the predicate reads
        attributes from the existing layouts (and vice versa for a
        where-clause group) — the online operator resolves such
        attributes from their current providers.
        """
        ordered = table.schema.ordered(attrs)
        with Timer() as timer:
            group, result = self._online_pass(table, ordered, info)
        return ReorgOutcome(
            group=group, result=result, seconds=timer.elapsed, mode="online"
        )

    def _online_pass(
        self, table: LayoutSource, ordered: Tuple[str, ...], info: QueryInfo
    ) -> Tuple[ColumnGroup, QueryResult]:
        schema = table.schema
        num_rows = table.num_rows
        dtype = schema.common_dtype(ordered).numpy_dtype
        position = {attr: i for i, attr in enumerate(ordered)}
        # Pick, per attribute, the narrowest source column (a view).
        # Query attributes outside the new group are read from their
        # providers too (a select-clause group may be built while the
        # predicate still reads existing layouts, and vice versa).
        sources = {}
        for attr in set(ordered) | set(info.all_attrs):
            provider = table.layouts_containing(attr)[0]
            sources[attr] = provider.column(attr)

        data = np.empty((num_rows, len(ordered)), dtype=dtype)
        block_rows = self.config.vector_size
        # Zone maps ride the same fused pass: each stitched block is
        # reduced while cache-hot, then blocks collapse into per-morsel
        # stats at the end (alignment holds because EngineConfig enforces
        # morsel_rows % vector_size == 0).
        zone_morsel_rows = self._zone_morsel_rows()
        zone_builder = (
            ZoneMapBuilder(ordered, zone_morsel_rows)
            if zone_morsel_rows > 0
            else None
        )

        aggregates = (
            collect_aggregates(info.query.select)
            if info.is_aggregation
            else ()
        )
        accumulators = {
            agg: AggregateAccumulator(agg.func) for agg in aggregates
        }
        out_blocks: List[np.ndarray] = []
        out_dtype = None if info.is_aggregation else projection_dtype(info)

        for start in range(0, num_rows, block_rows):
            stop = min(start + block_rows, num_rows)
            # Injectable failure site: the online stitch aborting *mid*-
            # reorganization — ``data`` already holds partially stitched
            # blocks at this point.  Raises ReorganizationError; the
            # engine discards the partial group (it was never published)
            # and answers the query through ordinary planning instead.
            fault_point("reorg.online", attrs=ordered, offset=start)
            block = data[start:stop]
            # The stitch: copy source slices into the new layout's block.
            for attr in ordered:
                block[:, position[attr]] = sources[attr][start:stop]
            if zone_builder is not None:
                zone_builder.add_block(start, block)

            # The query: evaluate on the cache-hot stitched block.
            def resolve(
                name: str, _block=block, _start=start, _stop=stop
            ) -> np.ndarray:
                index = position.get(name)
                if index is None:  # attribute outside the new group
                    return sources[name][_start:_stop]
                return _block[:, index]

            if info.has_predicate:
                mask = evaluate_predicate(info.query.where, resolve)
                kept = int(mask.sum())
                if kept == 0:
                    continue

                def resolve_q(name: str, _resolve=resolve, _mask=mask):
                    return _resolve(name)[_mask]

                row_resolver = resolve_q
                row_count = kept
            else:
                row_resolver = resolve
                row_count = stop - start

            if info.is_aggregation:
                for agg, state in accumulators.items():
                    if agg.arg is None:
                        state.update(None, row_count)
                    else:
                        state.update(
                            evaluate_value(agg.arg, row_resolver), row_count
                        )
            else:
                out = np.empty(
                    (row_count, len(info.query.select)), dtype=out_dtype
                )
                for j, out_col in enumerate(info.query.select):
                    out[:, j] = evaluate_value(out_col.expr, row_resolver)
                out_blocks.append(out)

        full_width = len(ordered) == schema.width
        group = ColumnGroup(ordered, data, full_width=full_width)
        if zone_builder is not None:
            attach_zone_maps(group, zone_builder.finish())
        names = [out.name for out in info.query.select]
        if info.is_aggregation:
            agg_values = {
                agg: state.finalize() for agg, state in accumulators.items()
            }
            values = [
                finalize_output(out.expr, agg_values)
                for out in info.query.select
            ]
            result = QueryResult.scalar_row(names, values)
        else:
            result = QueryResult.from_blocks(names, out_blocks, out_dtype)
        return group, result
