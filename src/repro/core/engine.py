"""The H2O engine: adaptive query processing end to end.

Per query (paper Fig. 3 and sections 3.2–3.5):

1. the Monitor records the query's access pattern (affinity matrices,
   pattern frequencies) and the ShiftDetector checks for novelty —
   shifts shrink the dynamic adaptation window;
2. when the adaptation window elapses, the LayoutAdvisor evaluates the
   windowed workload (Eq. 1) and refreshes the *candidate pool* of
   proposed column groups — nothing is materialized yet;
3. if the incoming query matches a candidate that can amortize its
   creation, the Reorganizer materializes it **online**, answering the
   query in the same pass, and the layout joins the table;
4. otherwise the Query Processor enumerates (layout cover × strategy)
   access plans, costs them (Eq. 2), and executes the cheapest with an
   on-the-fly generated operator (cached when seen before);
5. observed selectivities feed back into the cost model.

All adaptation overheads — advisor runs, code generation, layout
creation — are charged to the triggering query's response time, exactly
as the paper reports them (``adaptation_mode="inline"``, the default).

**The steady-state fast lane.**  Once the store has adapted (the tail
of Fig. 7), a recurring workload repeats the same query *shapes* with
fresh literals.  Steps 3–4 then re-derive a decision that cannot have
changed: analysis, plan enumeration, Eq. 2 costing and operator-cache
key construction are all functions of (query shape, layouts, candidate
pool, learned selectivities).  The engine therefore keeps a
:class:`~repro.core.plan_cache.PlanCache` keyed by the query's masked
shape signature: a repeat query goes ``signature → cached plan →
compiled kernel with freshly extracted literals``.  Entries are
invalidated by the table's layout epoch (any create/retire/append), by
candidate-pool refreshes (a cached plan must not shortcut past a query
that should trigger online materialization), and by learned-selectivity
drift beyond ``config.selectivity_drift_band``.  Monitoring and shift
detection still run for every query — adaptivity is never bypassed,
only re-derivation of unchanged decisions.

**Concurrency model.**  The engine serves many threads (the
:mod:`repro.service` worker pool).  Every query runs in three stages:

1. *prepare* (under ``engine.lock``): monitoring, shift detection,
   adaptation, snapshot pinning, plan-cache lookup or cold-path
   analysis + Eq. 2 costing.  These touch the engine's shared mutable
   state (monitor, window, candidate pool, plan cache, selectivity
   estimator) and are short;
2. *run* (lock **released**): the actual scan — compiled-kernel or
   interpreted execution against the layout buffers pinned by the
   query's :class:`~repro.storage.relation.LayoutSnapshot`.  NumPy
   kernels release the GIL on large blocks, so scans from different
   workers genuinely overlap; layout buffers are immutable, so no lock
   is needed;
3. *finish* (under ``engine.lock``): selectivity feedback, plan-cache
   store, usage accounting, report append.

Layout mutations (online reorganization, background publication,
budget retirement) happen under the engine lock and publish atomically
through the table's snapshot mechanism — a running scan keeps reading
its pinned snapshot and can never observe a partially-materialized
layout.  With ``adaptation_mode="background"`` the adaptation phase is
exported to a scheduler thread (see
:class:`repro.service.AdaptationScheduler`): queries merely *signal*
due-ness, the scheduler runs the advisor and stitches new layouts from
a pinned snapshot off the query path, then publishes them via a single
epoch bump.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..config import EngineConfig
from ..errors import (
    ExecutionError,
    H2OError,
    LayoutError,
    QueryTimeoutError,
    ReorganizationError,
)
from ..execution.executor import ExecStats, Executor
from ..execution.morsel import (
    DeadlineCheck,
    keep_mask_for,
    plan_morsels,
    run_generated_morsels,
)
from ..resilience.breaker import CircuitBreaker
from ..resilience.quarantine import QuarantineList
from ..execution.result import QueryResult
from ..execution.strategies import AccessPlan, enumerate_plans
from ..sql.analyzer import QueryInfo, analyze_query
from ..sql.parser import parse_query
from ..sql.query import Query
from ..sql.signature import literal_extractor
from ..storage.encoded_layout import encode_column
from ..storage.layout import LayoutKind, flatten_kernel_buffers
from ..storage.relation import LayoutSnapshot, Table
from ..storage.zonemap import attach_zone_maps, build_zone_maps
from .adaptation_policy import AdaptationPolicy, make_policy
from .advisor import CandidateLayout, LayoutAdvisor
from .cost_model import CostModel, SelectivityEstimator
from .history import ShiftDetector
from .layout_manager import LayoutManager
from .monitor import Monitor
from .plan_cache import CachedPlan, PlanCache
from .reorganizer import Reorganizer
from .window import DynamicWindow


@dataclass
class QueryReport:
    """Everything that happened while answering one query."""

    index: int
    query: Query
    result: QueryResult
    #: End-to-end response time (includes adaptation/codegen/reorg).
    seconds: float
    #: Time attribution: "adapt", "plan", "codegen", "reorg", "execute".
    phases: Dict[str, float] = field(default_factory=dict)
    plan: str = ""
    strategy: str = ""
    used_codegen: bool = False
    codegen_cache_hit: bool = False
    #: True when the query was answered through the steady-state fast
    #: lane (cached plan + kernel, no re-analysis/planning/costing).
    plan_cache_hit: bool = False
    layout_created: Optional[Tuple[str, ...]] = None
    adaptation_ran: bool = False
    shift_detected: bool = False
    window_size: int = 0
    cost_estimate: float = 0.0
    #: Layout epoch of the snapshot this query executed against.
    snapshot_epoch: int = 0
    #: Degradation-ladder evidence (docs/resilience.md): the query was
    #: answered correctly but through a fallback rung.
    #: A compile failed and the interpreted path answered instead.
    codegen_fallback: bool = False
    #: The codegen circuit breaker was open for this shape, so no
    #: compile was even attempted (interpreted path, by decision).
    breaker_short_circuit: bool = False
    #: An online reorganization triggered by this query aborted; the
    #: candidate was quarantined and the query answered via planning.
    reorg_aborted: bool = False
    #: The adaptation policy deferred an otherwise-eligible online
    #: reorganization this query would have triggered (guarded policy:
    #: the candidate's accrued benefit has not yet covered its hedged
    #: build cost — see docs/adaptation.md).
    reorg_deferred: bool = False
    #: Morsel-driven scan telemetry (zero/serial when the query ran as
    #: one monolithic scan): how many aligned morsels the table divides
    #: into, how many zone maps proved empty and skipped, how many scan
    #: threads actually participated, and whether the scan genuinely ran
    #: on more than one thread.
    morsels_total: int = 0
    morsels_pruned: int = 0
    scan_threads_used: int = 1
    parallel_scan: bool = False
    #: Shard processes that served this query (0 = not sharded).  Set
    #: only by :class:`repro.sharding.coordinator.ShardedSystem`; the
    #: per-shard telemetry above is then summed/or-ed across shards.
    shards_used: int = 0

    @property
    def degraded(self) -> bool:
        """True when any degradation rung absorbed a fault here."""
        return (
            self.codegen_fallback
            or self.breaker_short_circuit
            or self.reorg_aborted
        )

    @property
    def reorg_seconds(self) -> float:
        return self.phases.get("reorg", 0.0)


@dataclass
class _Prepared:
    """The locked *prepare* stage's decision, carried to run/finish."""

    index: int
    snapshot: LayoutSnapshot
    shift: bool
    adaptation_ran: bool
    window_size: int
    #: Fast lane: the validated cache entry (mutually exclusive with
    #: ``plan`` and ``result``).
    entry: Optional[CachedPlan] = None
    #: Cold path: analyzer facts + the chosen plan and its Eq. 2 cost.
    info: Optional[QueryInfo] = None
    plan: Optional[AccessPlan] = None
    cost: float = 0.0
    #: Already answered under the lock (online reorganization).
    result: Optional[QueryResult] = None
    stats: Optional[ExecStats] = None
    #: An online stitch triggered by this query aborted (quarantined).
    reorg_aborted: bool = False
    #: The policy deferred an otherwise-eligible materialization.
    reorg_deferred: bool = False


class H2OEngine:
    """Adaptive hybrid engine over a single table.

    >>> from repro.storage import generate_table
    >>> engine = H2OEngine(generate_table("r", 10, 1000, rng=0))
    >>> report = engine.execute("SELECT sum(a1 + a2) FROM r WHERE a3 > 0")
    >>> report.result.num_rows
    1
    """

    def __init__(
        self,
        table: Table,
        config: Optional[EngineConfig] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.table = table
        self.config = config or EngineConfig()
        #: Injectable time source consumed by the codegen circuit
        #: breaker (tests drive it with a fake clock; production uses
        #: ``time.monotonic``).  The quarantine list deliberately does
        #: *not* use it — its clock is the engine's query counter, so
        #: backoff spans are measured in queries, not seconds.
        self.clock: Callable[[], float] = clock or time.monotonic
        #: Guards every piece of shared mutable decision state: monitor,
        #: window, shift detector, candidate pool, selectivity
        #: estimator, plan-cache *policy* (the cache itself has its own
        #: lock), layout manager bookkeeping, and the reports list.
        #: Query *execution* never holds it (see the module docstring).
        self.lock = threading.RLock()
        self.selectivity = SelectivityEstimator()
        self.cost_model = CostModel(self.config.machine, self.selectivity)
        self.monitor = Monitor(table.schema, self.config.window_size)
        self.window = DynamicWindow(self.config)
        self.shift_detector = ShiftDetector(self.config)
        self.advisor = LayoutAdvisor(table, self.cost_model, self.config)
        self.manager = LayoutManager(table, self.config)
        self.reorganizer = Reorganizer(self.config)
        self.executor = Executor(self.config)
        self.plan_cache = PlanCache(capacity=self.config.plan_cache_size)
        #: The layout-switching policy (docs/adaptation.md): greedy
        #: (paper-faithful, every gate open) or guarded (regret-bounded
        #: benefit ledger).  Mutated only under the engine lock.
        self.policy: AdaptationPolicy = make_policy(self.config)
        self.candidates: List[CandidateLayout] = []
        self.reports: List[QueryReport] = []
        #: Online reorganizations that aborted mid-stitch (the partial
        #: group was discarded, the query answered via plain planning).
        #: The testkit oracle matches this against its injected faults.
        self.reorg_aborts = 0
        #: Queries aborted at a stage boundary because their deadline
        #: had already passed (see :meth:`execute`'s ``deadline``).
        self.deadline_aborts = 0
        #: Per-signature codegen circuit breaker (docs/resilience.md):
        #: after ``breaker_threshold`` consecutive compile failures for
        #: one query shape the engine serves that shape interpreted
        #: without touching the compiler, half-open-probing once per
        #: ``breaker_cooldown`` seconds on :attr:`clock`.
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
            clock=self.clock,
        )
        #: Exponential-backoff quarantine for candidate layouts whose
        #: stitches keep aborting.  Its clock is the query counter, so
        #: spans are "skip for the next N queries".
        self.quarantine = QuarantineList(
            base=self.config.quarantine_base,
            cap=self.config.quarantine_cap,
            clock=lambda: float(self._query_counter),
        )
        self._query_counter = 0
        #: Cumulative morsel telemetry across every query (zone-map
        #: pruning effectiveness; exported via :meth:`stats` and the
        #: gateway's ``GET /metrics``).
        self.morsels_total = 0
        self.morsels_pruned = 0
        self._shift_since_adaptation = False
        self._last_adaptation_snapshot: Optional[tuple] = None
        #: Distinct access sets as of the last adaptation phase.
        self._reference_patterns: List = []
        #: Non-blocking callback invoked (outside the lock) when the
        #: adaptation window elapses in background mode; the service's
        #: scheduler attaches one to wake its thread.
        self._adaptation_signal: Optional[Callable[["H2OEngine"], None]] = (
            None
        )

    # Public API ---------------------------------------------------------------

    def execute(
        self,
        query: Union[Query, str],
        deadline: Optional[float] = None,
    ) -> QueryReport:
        """Answer one query, adapting storage and strategy on the way.

        Thread-safe: any number of threads may call this concurrently.
        Decision state is updated under the engine lock; the scan itself
        runs lock-free against the query's pinned layout snapshot.

        ``deadline`` is an absolute ``time.monotonic()`` instant.  The
        engine checks it at each stage boundary (before *prepare*,
        before *run*, before *finish*) and raises
        :class:`~repro.errors.QueryTimeoutError` rather than start a
        stage it cannot finish in time — cooperative cancellation, not
        preemption: a stage already underway runs to completion.
        """
        started = time.perf_counter()
        phases: Dict[str, float] = {}
        if isinstance(query, str):
            query = parse_query(query)
        if query.table != self.table.name:
            raise ExecutionError(
                f"engine serves table {self.table.name!r}, query targets "
                f"{query.table!r}"
            )

        self._check_deadline(deadline, "prepare")
        with self.lock:
            prep = self._prepare(query, phases)

        if prep.result is None and self.config.adaptation_mode == (
            "background"
        ):
            # Wake the scheduler outside the lock (the callback must be
            # non-blocking; it typically just sets an Event).
            signal = self._adaptation_signal
            if signal is not None and self.window.due():
                signal(self)

        if prep.result is not None:
            result, stats = prep.result, prep.stats
        elif prep.entry is not None:
            self._check_deadline(deadline, "run")
            result, stats = self._execute_fast(
                prep.entry, query, phases, self._morsel_deadline(deadline)
            )
        else:
            self._check_deadline(deadline, "run")
            result, stats = self._run_plan(
                prep, phases, self._morsel_deadline(deadline)
            )

        seconds = time.perf_counter() - started
        self._check_deadline(deadline, "finish")
        with self.lock:
            report = self._finish(
                query, prep, result, stats, phases, seconds
            )
        return report

    def _check_deadline(
        self, deadline: Optional[float], stage: str
    ) -> None:
        """Abort (with an accounted :class:`QueryTimeoutError`) when the
        query's deadline passed before ``stage`` could begin."""
        if deadline is None:
            return
        if time.monotonic() < deadline:
            return
        with self.lock:
            self.deadline_aborts += 1
        raise QueryTimeoutError(
            f"deadline passed before the {stage!r} stage could start"
        )

    def _morsel_deadline(
        self, deadline: Optional[float]
    ) -> DeadlineCheck:
        """A per-morsel cancellation hook for ``deadline``.

        Morsel-driven scans invoke it before every morsel, turning the
        stage-boundary deadline into a finer-grained one: an over-budget
        scan aborts at the next morsel boundary instead of running to
        completion.  The abort is accounted exactly once (multiple scan
        threads may observe the expiry concurrently) and feeds the same
        ``deadline_aborts`` rung of the degradation ladder as the
        stage-boundary checks.  Monolithic serial scans never see it —
        their only checks remain the stage boundaries.
        """
        if deadline is None:
            return None
        once = threading.Lock()

        def check() -> None:
            if time.monotonic() < deadline:
                return
            if once.acquire(blocking=False):
                with self.lock:
                    self.deadline_aborts += 1
            raise QueryTimeoutError(
                "deadline passed mid-scan (aborted at a morsel boundary)"
            )

        return check

    def run_sequence(self, queries) -> List[QueryReport]:
        """Execute a sequence of queries, returning all reports."""
        return [self.execute(q) for q in queries]

    # Stage 1: prepare (engine lock held) ----------------------------------------

    def _prepare(self, query: Query, phases: Dict[str, float]) -> _Prepared:
        index = self._query_counter
        self._query_counter += 1

        # 1. Monitoring + shift detection.  Novelty is judged against the
        # patterns known as of the *previous adaptation* ("H2O detects
        # workload shifts by comparing new queries with queries observed
        # in the previous query window") — a rolling reference would make
        # a shifted workload familiar to itself within a few queries.
        if not self._reference_patterns and len(self.monitor) >= (
            self.shift_detector.warmup
        ):
            self._reference_patterns = [
                attrs for attrs, _ in self.monitor.distinct_access_sets()
            ]
        known = self._reference_patterns or [
            attrs for attrs, _ in self.monitor.distinct_access_sets()
        ]
        self.monitor.observe(query)
        self.window.note_query()
        shift = self.shift_detector.assess(query.attributes, known)
        if shift:
            self._shift_since_adaptation = True
            self.window.note_shift()
            self.monitor.resize(self.window.size)

        # 2. Periodic adaptation: refresh the candidate pool.  Inline
        # mode runs it here (cost charged to this query); background
        # mode leaves it to the scheduler, which this query signals
        # after releasing the lock.
        adaptation_ran = False
        if self.window.due() and (
            self.config.adaptation_mode == "inline"
            or self._adaptation_signal is None
        ):
            self._adapt(index, phases)
            adaptation_ran = True

        # Feed the switching policy's benefit ledger: every candidate
        # that could have served this query accrues its Eq. 2 per-use
        # delta.  ``ripe`` asks for a fast-lane bypass — a previously
        # deferred candidate now clears its hedged threshold, and only
        # the cold path below can trigger its materialization (the
        # shape's cached plan would otherwise shortcut past it forever).
        ripe = self.policy.observe(
            query.select_attributes,
            query.where_attributes,
            self.candidates,
            index,
        )

        # Pin the physical state this query will plan and scan against.
        snapshot = self.table.snapshot()
        prep = _Prepared(
            index=index,
            snapshot=snapshot,
            shift=shift,
            adaptation_ran=adaptation_ran,
            window_size=self.window.size,
        )

        # 3. The steady-state fast lane: a repeat query shape under
        # unchanged layouts skips analysis, planning, costing and
        # codegen-key construction entirely.
        if self.config.plan_cache and not ripe:
            prep.entry = self.plan_cache.lookup(
                query.shape_signature(), snapshot.epoch
            )
            if prep.entry is not None:
                return prep

        # Cold path: full analysis, lazy materialization check, plan
        # enumeration + Eq. 2 costing.  Online reorganization mutates
        # the layouts, so it runs entirely under the lock and publishes
        # atomically; plain planning just records the decision and
        # executes after the lock is released.
        info = analyze_query(query, self.table.schema)
        prep.info = info
        candidate, deferred = self._triggered_candidate(info, index)
        prep.reorg_deferred = deferred
        if candidate is not None and candidate.kind != "group":
            # Physical-design switch (cluster reorder / encoded
            # replica): applied inline under the lock, then the query
            # falls through to ordinary planning against the *new*
            # physical state — the reorganization cost is charged to
            # this query's response time like any online reorg.
            self._apply_physical(prep, candidate, index, phases)
        elif candidate is not None:
            try:
                prep.result, prep.stats = self._materialize_and_execute(
                    info, candidate, index, phases
                )
                return prep
            except ReorganizationError:
                # The stitch aborted mid-build.  Nothing was published
                # (the partial group only ever lived in a local buffer),
                # the candidate stays in the pool so a later query can
                # retry the stitch, and *this* query is answered through
                # ordinary cost-based planning — degraded, never wrong.
                # The candidate is quarantined under exponential backoff
                # (docs/resilience.md) so the engine does not re-stitch
                # a poisoned group on every matching query.
                self.reorg_aborts += 1
                self.quarantine.note_failure(candidate.ledger_key)
                prep.reorg_aborted = True
        prep.plan, prep.cost = self._choose_plan(prep.snapshot, info, phases)
        return prep

    # Stage 3: finish (engine lock held) -----------------------------------------

    def _finish(
        self,
        query: Query,
        prep: _Prepared,
        result: QueryResult,
        stats: ExecStats,
        phases: Dict[str, float],
        seconds: float,
    ) -> QueryReport:
        if prep.entry is not None:
            self.manager.record_use(prep.entry.plan.layouts)
            self._fast_feedback(prep.entry, query, stats, prep.snapshot)
        elif prep.result is None:
            # Cold planned path (online reorg already did its own
            # accounting inside ``_materialize_and_execute``).
            stats.extras["cost_estimate"] = prep.cost
            self.manager.record_use(prep.plan.layouts)
            self._feedback(prep.info, stats, prep.snapshot)
            self._maybe_cache_plan(query, prep, stats)
        else:
            self._feedback(prep.info, stats, prep.snapshot)

        report = QueryReport(
            index=prep.index,
            query=query,
            result=result,
            seconds=seconds,
            phases=phases,
            plan=stats.plan,
            strategy=stats.strategy.value,
            used_codegen=stats.used_codegen,
            codegen_cache_hit=stats.codegen_cache_hit,
            plan_cache_hit=prep.entry is not None,
            layout_created=(
                tuple(stats.layout_created.split(","))
                if stats.layout_created
                else None
            ),
            adaptation_ran=prep.adaptation_ran,
            shift_detected=prep.shift,
            window_size=prep.window_size,
            cost_estimate=stats.extras.get("cost_estimate", 0.0),
            snapshot_epoch=prep.snapshot.epoch,
            codegen_fallback=bool(stats.extras.get("codegen_fallback")),
            breaker_short_circuit=bool(
                stats.extras.get("breaker_short_circuit")
            ),
            reorg_aborted=prep.reorg_aborted,
            reorg_deferred=prep.reorg_deferred,
            morsels_total=int(stats.extras.get("morsels_total", 0)),
            morsels_pruned=int(stats.extras.get("morsels_pruned", 0)),
            scan_threads_used=int(
                stats.extras.get("scan_threads_used", 1)
            ),
            parallel_scan=bool(stats.extras.get("parallel", False)),
        )
        self.morsels_total += report.morsels_total
        self.morsels_pruned += report.morsels_pruned
        self.reports.append(report)
        return report

    # Decision steps -------------------------------------------------------------

    def _adapt(self, index: int, phases: Dict[str, float]) -> None:
        """Refresh the candidate pool (the periodic adaptation phase).

        Two cheap checks avoid re-running the full advisor when it could
        not change anything: (a) the window's pattern population and the
        layouts are exactly as last time; (b) most of the windowed
        demand is already served by existing column groups (the stable,
        fully-adapted state where the paper grows the window).  When the
        candidate pool does change, every cached plan is dropped — a
        fast-lane hit must never shortcut past a query that should now
        trigger online materialization.

        Callers must hold ``self.lock``.
        """
        t0 = time.perf_counter()
        population = frozenset(
            attrs for attrs, _ in self.monitor.distinct_access_sets()
        )
        layouts_key = tuple(
            layout.attrs for layout in self.table.layouts
        )
        snapshot = (population, layouts_key)
        # The served-demand skip only applies in the stable regime
        # (no recent shift, window back at its initial size or
        # larger): after drift, new patterns must reach the advisor
        # even if the hot ones are already served.
        stable = (
            not self._shift_since_adaptation
            and self.window.size >= self.config.window_size
        )
        if snapshot != self._last_adaptation_snapshot and not (
            stable and self._served_fraction() >= 0.8
        ):
            pool_before = {
                c.ledger_key: (c.frequency, c.expected_gain)
                for c in self.candidates
            }
            proposals = self.advisor.propose(self.monitor)
            # Accumulate: earlier proposals stay in the pool until a
            # query materializes them or fresher analysis supersedes
            # them — a candidate's pattern may recur only after the
            # window that proposed it has rolled on.  Physical-design
            # proposals (clustering/encoding, default off) join the
            # same pool under their tagged ledger keys.
            pool = {c.ledger_key: c for c in self.candidates}
            for candidate in proposals:
                pool[candidate.ledger_key] = candidate
            for candidate in self.advisor.propose_physical(self.monitor):
                pool[candidate.ledger_key] = candidate
            ranked = sorted(
                pool.values(), key=lambda c: -c.expected_gain
            )
            self.candidates = ranked[: 2 * self.config.max_candidates]
            self._last_adaptation_snapshot = snapshot
            if self.config.materialization == "eager":
                # The ablation discipline: build every proposal now,
                # offline, instead of fusing creation with a query.
                # Only vertical groups build eagerly — the physical
                # kinds are inherently lazy (a cluster reorder outside
                # a query would have no cost attribution).
                for candidate in self.candidates:
                    if candidate.kind != "group":
                        continue
                    if candidate.expected_gain > 0:
                        self.manager.build_group(
                            candidate.attrs, query_index=index
                        )
                self.candidates = []
            pool_after = {
                c.ledger_key: (c.frequency, c.expected_gain)
                for c in self.candidates
            }
            if pool_after != pool_before:
                self.plan_cache.invalidate_all("candidates")
        self.window.adapted()
        if not self._shift_since_adaptation:
            self.window.note_stable()
        self._shift_since_adaptation = False
        self.monitor.resize(self.window.size)
        self._reference_patterns = [
            attrs for attrs, _ in self.monitor.distinct_access_sets()
        ]
        phases["adapt"] = phases.get("adapt", 0.0) + (
            time.perf_counter() - t0
        )

    def _served_fraction(self) -> float:
        """Fraction of windowed queries already served by a group.

        A query counts as served when some existing multi-attribute
        layout contains its whole access set or its whole SELECT clause
        — exactly the situations where planning finds a fused-group (or
        Fig. 6 split) plan and the advisor would propose nothing new.
        """
        window = self.monitor.window
        if not window:
            return 1.0
        groups = [
            layout.attr_set
            for layout in self.table.layouts
            # Workload-specific groups only: the full-width (row-major)
            # layout contains everything without serving anything.
            if 2 <= layout.width < self.table.schema.width
        ]
        if not groups:
            return 0.0
        served = 0
        for query in window:
            attrs = query.attributes
            select_attrs = query.select_attributes
            for group in groups:
                if attrs <= group or (
                    select_attrs and select_attrs <= group
                ):
                    served += 1
                    break
        return served / len(window)

    def _triggered_candidate(
        self, info: QueryInfo, index: int
    ) -> Tuple[Optional[CandidateLayout], bool]:
        """The best candidate this query both matches and amortizes.

        Only the inline adaptation mode fuses materialization with the
        triggering query; in background mode the scheduler builds
        candidates off the query path instead.

        Returns ``(candidate, deferred)``: the winning candidate (or
        None), and whether the switching policy refused an otherwise
        eligible build (guarded policy, hedged threshold not yet met —
        the refusal is recorded in the policy's debt ledger).
        """
        if self.config.materialization != "lazy":
            return None, False
        if self.config.adaptation_mode != "inline" and (
            self._adaptation_signal is not None
        ):
            return None, False
        select_attrs = frozenset(info.select_attrs)
        where_attrs = frozenset(info.where_attrs)
        best: Optional[CandidateLayout] = None
        for candidate in self.candidates:
            if not candidate.serves(select_attrs, where_attrs):
                continue
            if self._candidate_satisfied(candidate):
                continue
            if self.quarantine.blocked(candidate.ledger_key):
                # A recent stitch of this group aborted; its backoff
                # span (in queries) has not elapsed yet.
                continue
            if candidate.frequency < self.config.amortization_threshold:
                continue
            if candidate.expected_gain <= 0:
                continue
            if best is None or candidate.expected_gain > best.expected_gain:
                best = candidate
        if best is not None and not self.policy.allow_materialization(
            best, index
        ):
            # The paper's amortization test passed but the switching
            # policy's hedged-benefit gate did not: the build is
            # deferred, the deferral ledgered, and this query answered
            # through ordinary planning.  The candidate stays in the
            # pool accruing benefit until the gate opens.
            return None, True
        return best, False

    def _candidate_satisfied(self, candidate: CandidateLayout) -> bool:
        """Whether the table already embodies this candidate."""
        if candidate.kind == "cluster":
            return (
                self.table.cluster_key == candidate.attrs[0]
                and self.table.clustered_fraction >= 0.95
            )
        if candidate.kind == "encode":
            return any(
                layout.kind is LayoutKind.ENCODED
                and layout.attrs == candidate.attrs
                for layout in self.table.layouts
            )
        return self.table.find_group(candidate.attrs) is not None

    def _materialize_and_execute(
        self,
        info: QueryInfo,
        candidate: CandidateLayout,
        index: int,
        phases: Dict[str, float],
    ) -> Tuple[QueryResult, ExecStats]:
        """Online reorganization: build the layout while answering.

        Runs under the engine lock (it mutates the layout set); the new
        group is published atomically through the table's snapshot
        mechanism, so concurrent readers keep their pinned state.
        """
        outcome = self.reorganizer.online(self.table, candidate.attrs, info)
        # The stitch completed: clear any earlier-failure backoff state
        # so a future re-proposal of the same group starts fresh.  The
        # switch is ledgered now — the reorganization cost was paid
        # even if a concurrent append discards the group below.
        self.quarantine.note_success(candidate.ledger_key)
        self.policy.note_materialized(candidate, index)
        registered = True
        try:
            self.manager.register_group(
                outcome.group,
                outcome.seconds,
                query_index=index,
                mode="online",
            )
        except LayoutError:
            # A concurrent append changed the row count while the group
            # was being stitched; the query result (computed from the
            # pinned pre-append state) is still correct — only the new
            # layout is discarded and will be re-proposed later.
            registered = False
        self.candidates = [
            c
            for c in self.candidates
            if c.ledger_key != candidate.ledger_key
        ]
        if registered and self.config.max_table_bytes:
            # Enforce the storage budget by retiring cold groups (never
            # the one just built — it has a use already recorded).
            self.manager.record_use([outcome.group])
            dropped = self.manager.retire_cold_groups(
                self.config.max_table_bytes
            )
            if dropped:
                self._last_adaptation_snapshot = None  # layouts changed
        phases["reorg"] = outcome.seconds
        from ..execution.strategies import ExecutionStrategy

        stats = ExecStats(
            strategy=ExecutionStrategy.FUSED,
            plan=f"online-reorg(group[{','.join(candidate.attrs)}])",
            rows_out=outcome.result.num_rows,
            reorg_seconds=outcome.seconds,
            layout_created=",".join(candidate.attrs) if registered else None,
        )
        return outcome.result, stats

    def _apply_physical(
        self,
        prep: _Prepared,
        candidate: CandidateLayout,
        index: int,
        phases: Dict[str, float],
    ) -> bool:
        """Apply a cluster/encode candidate inline, under the lock.

        On success the candidate leaves the pool, the switch is
        ledgered (``policy.note_materialized`` paired with a
        ``manager.record_transform`` creation-log event — the oracle
        balances the two), and ``prep.snapshot`` is re-pinned so this
        query plans against the new physical state.  A mid-transform
        abort quarantines the candidate and leaves the old state
        untouched; an append racing the permutation just retries on a
        later trigger.  Returns True when the physical state changed.
        """
        attr = candidate.attrs[0]
        try:
            if candidate.kind == "cluster":
                outcome = self.reorganizer.cluster(self.table, attr)
                if outcome is None:  # already fully clustered
                    self._drop_candidate(candidate)
                    return False
                seconds = outcome.seconds
                mode = outcome.mode
                bytes_written = self.table.nbytes
            else:
                t0 = time.perf_counter()
                encoded = encode_column(
                    attr,
                    self.table.column(attr),
                    dict_max_cardinality=(
                        self.config.dict_max_cardinality
                    ),
                )
                if encoded is None:
                    # The stats probe was optimistic; no codec shrinks
                    # this column.  Drop the candidate for good.
                    self._drop_candidate(candidate)
                    return False
                if self.config.zone_maps:
                    attach_zone_maps(
                        encoded,
                        build_zone_maps(
                            encoded, self.config.morsel_rows
                        ),
                    )
                self.table.add_layout(encoded)
                seconds = time.perf_counter() - t0
                mode = "encode"
                bytes_written = encoded.nbytes
        except ReorganizationError:
            self.reorg_aborts += 1
            self.quarantine.note_failure(candidate.ledger_key)
            prep.reorg_aborted = True
            return False
        except LayoutError:
            # An append raced the reorder/encode; the candidate stays
            # in the pool and a later query retries from fresh state.
            return False
        self.quarantine.note_success(candidate.ledger_key)
        self.policy.note_materialized(candidate, index)
        self.manager.record_transform(
            candidate.attrs,
            seconds,
            mode=mode,
            query_index=index,
            bytes_written=bytes_written,
        )
        self._drop_candidate(candidate)
        phases["reorg"] = phases.get("reorg", 0.0) + seconds
        # The epoch bump invalidated every cached plan; re-pin so this
        # query's planning and scan see the clustered/encoded layouts.
        prep.snapshot = self.table.snapshot()
        return True

    def _drop_candidate(self, candidate: CandidateLayout) -> None:
        self.candidates = [
            c
            for c in self.candidates
            if c.ledger_key != candidate.ledger_key
        ]

    def _choose_plan(
        self,
        snapshot: LayoutSnapshot,
        info: QueryInfo,
        phases: Dict[str, float],
    ) -> Tuple[AccessPlan, float]:
        """Cost-based choice among (layout cover × strategy) plans.

        Planning runs against the pinned snapshot, so a concurrent
        layout publication cannot change the candidate covers mid-
        enumeration.

        When zone maps are on, Eq. 2's scan terms are discounted by the
        fraction of morsels the query's predicate would actually touch
        — the pruning-aware scan term.  The fraction is computed once
        per planning (zone-map stats are row-aligned, hence identical
        across every candidate plan's layouts) and folded into every
        plan's cost, so a selective query's amortization and plan
        choice reflect the scan it will really pay for.
        """
        t0 = time.perf_counter()
        plans = enumerate_plans(snapshot, info)
        scan_fraction = 1.0
        if self.config.zone_maps and info.has_predicate:
            keep = keep_mask_for(
                info,
                snapshot.layouts,
                snapshot.num_rows,
                self.config.morsel_rows,
            )
            if keep is not None and keep.size:
                scan_fraction = float(keep.sum()) / keep.size
        costed = [
            (
                self.cost_model.plan_cost(info, plan, scan_fraction),
                i,
                plan,
            )
            for i, plan in enumerate(plans)
        ]
        cost, _, plan = min(costed)
        phases["plan"] = time.perf_counter() - t0
        return plan, cost

    # Stage 2: run (lock released) ----------------------------------------------

    def _run_plan(
        self,
        prep: _Prepared,
        phases: Dict[str, float],
        deadline_check: DeadlineCheck = None,
    ) -> Tuple[QueryResult, ExecStats]:
        """Execute the chosen cold-path plan (no engine lock held).

        The plan's layouts belong to the pinned snapshot and are
        immutable; codegen goes through the (internally locked)
        operator cache.

        The per-signature circuit breaker gates the codegen path here:
        an open breaker short-circuits straight to the interpreted
        operators (no compile attempted), and every compile outcome is
        reported back so the breaker's state machine advances.
        """
        t1 = time.perf_counter()
        allow_codegen = True
        signature = None
        if (
            self.config.use_codegen
            and self.config.codegen_breaker
            and prep.info.all_attrs
        ):
            signature = prep.info.query.shape_signature()
            allow_codegen = self.breaker.allow(signature)
        result, stats = self.executor.run_plan(
            prep.info,
            prep.plan,
            allow_codegen=allow_codegen,
            deadline_check=deadline_check,
        )
        if signature is not None:
            if not allow_codegen:
                stats.extras["breaker_short_circuit"] = True
            elif stats.extras.get("codegen_fallback"):
                self.breaker.record_failure(signature)
            elif stats.used_codegen:
                self.breaker.record_success(signature)
        elapsed = time.perf_counter() - t1
        phases["codegen"] = phases.get("codegen", 0.0) + stats.codegen_seconds
        phases["execute"] = phases.get("execute", 0.0) + (
            elapsed - stats.codegen_seconds
        )
        return result, stats

    # The steady-state fast lane ------------------------------------------------

    def _execute_fast(
        self,
        entry: CachedPlan,
        query: Query,
        phases: Dict[str, float],
        deadline_check: DeadlineCheck = None,
    ) -> Tuple[QueryResult, ExecStats]:
        """Answer a repeat query shape from its cached decision.

        With a compiled kernel the whole query becomes: extract the
        fresh literals, bind the (epoch-validated) layout buffers, call
        the kernel.  Large tables go through the morsel-driven path —
        the cached kernel takes ``lo``/``hi`` slice parameters, so the
        *same* compiled operator serves the serial and the parallel
        lane, and the fresh literals still enable zone-map pruning per
        repeat.  Without a kernel (interpreted configurations) the
        cached plan still skips analysis, enumeration and costing, and
        the executor runs it generically.  Runs without the engine lock
        — everything it reads (the entry's plan, kernel, and layout
        buffers) is immutable.
        """
        t0 = time.perf_counter()
        if entry.kernel is not None and entry.extract_params is not None:
            params = entry.extract_params(query)
            names = [out.name for out in query.select]
            mp = None
            pool = None
            if self.config.parallel_scans or self.config.zone_maps:
                info = self._entry_info(entry, query)
                pool = self.executor._pool()
                mp = plan_morsels(
                    info,
                    entry.plan.layouts,
                    entry.plan.layouts[0].num_rows,
                    self.executor.morsel_settings,
                    pool,
                )
            if mp is not None:
                outcome = run_generated_morsels(
                    entry.kernel,
                    params,
                    info,
                    entry.plan.layouts,
                    mp,
                    pool,
                    deadline_check,
                )
                result = outcome.result
                stats = ExecStats(
                    strategy=entry.plan.strategy,
                    plan=entry.plan_desc,
                    used_codegen=True,
                    codegen_cache_hit=True,
                    rows_out=result.num_rows,
                    qualifying_rows=outcome.qualifying,
                )
                outcome.fill_extras(stats.extras)
            else:
                buffers = flatten_kernel_buffers(entry.plan.layouts)
                payload = entry.kernel(buffers, params)
                if entry.is_aggregation:
                    values, qualifying_raw = payload
                    result = QueryResult.scalar_row(names, values)
                    qualifying = int(qualifying_raw)
                else:
                    result = QueryResult(names, payload)
                    qualifying = result.num_rows
                stats = ExecStats(
                    strategy=entry.plan.strategy,
                    plan=entry.plan_desc,
                    used_codegen=True,
                    codegen_cache_hit=True,
                    rows_out=result.num_rows,
                    qualifying_rows=qualifying,
                )
        else:
            info = self._entry_info(entry, query)
            result, stats = self.executor.run_plan(
                info, entry.plan, deadline_check=deadline_check
            )
            stats.extras.pop("operator", None)
        stats.extras["cost_estimate"] = entry.cost_estimate
        phases["execute"] = (
            phases.get("execute", 0.0) + time.perf_counter() - t0
        )
        return result, stats

    @staticmethod
    def _entry_info(entry: CachedPlan, query: Query) -> QueryInfo:
        """Rebuild the analyzer facts for a cached plan (cheap: every
        field but the fresh query object is stored on the entry)."""
        return QueryInfo(
            query=query,
            select_attrs=entry.select_attrs,
            where_attrs=entry.where_attrs,
            all_attrs=entry.all_attrs,
            output_types=entry.output_types,
            is_aggregation=entry.is_aggregation,
            has_predicate=entry.has_predicate,
        )

    def _maybe_cache_plan(
        self, query: Query, prep: _Prepared, stats: ExecStats
    ) -> None:
        """Cache the cold path's decision for future repeats.

        Only plans chosen by cost-based planning are cached (online
        reorganization changes the layouts, so its epoch is stale by
        construction; attribute-free queries have nothing to reuse).
        The entry is tagged with the epoch of the snapshot the plan was
        *derived against* — if a background publication raced this
        query, the entry is stale immediately and the next lookup drops
        it, never serving a plan across an epoch boundary.
        """
        info = prep.info
        if not self.config.plan_cache or not info.all_attrs:
            return
        if stats.extras.get("codegen_fallback") or stats.extras.get(
            "breaker_short_circuit"
        ):
            # Never cache a degraded execution: the fast lane would pin
            # this shape to the interpreted plan (or replay a decision
            # made while its breaker was open) and bypass the breaker's
            # half-open probe on every future repeat.  Cold-path repeats
            # keep probing until the shape compiles again.
            return
        plan = stats.extras.pop("access_plan", prep.plan)
        if plan is None:
            return
        operator = stats.extras.pop("operator", None)
        predicate_key = CostModel._predicate_key(info)
        self.plan_cache.store(
            CachedPlan(
                signature=query.shape_signature(),
                epoch=prep.snapshot.epoch,
                plan=plan,
                plan_desc=stats.plan,
                select_attrs=info.select_attrs,
                where_attrs=info.where_attrs,
                all_attrs=info.all_attrs,
                output_types=info.output_types,
                is_aggregation=info.is_aggregation,
                has_predicate=info.has_predicate,
                kernel=operator.kernel if operator is not None else None,
                extract_params=(
                    literal_extractor(query)
                    if operator is not None
                    else None
                ),
                cost_estimate=stats.extras.get("cost_estimate", 0.0),
                predicate_key=predicate_key,
                selectivity=self.selectivity.estimate(
                    query.where, predicate_key
                ),
            )
        )

    # Selectivity feedback -------------------------------------------------------

    def _feedback(
        self,
        info: QueryInfo,
        stats: ExecStats,
        snapshot: LayoutSnapshot,
    ) -> None:
        """Report observed selectivity back to the estimator.

        Aggregation queries are included through the qualifying-row
        count the executor now plumbs out of every path (generated
        kernels report the shared ``cnt`` accumulator); paths that
        cannot tell (online reorganization) leave it ``None`` and only
        contribute when the result itself is the qualifying row set.
        The denominator is the row count of the snapshot the query
        actually scanned, not the table's possibly newer state.

        Zone-map pruning does not skew this feedback: a pruned morsel
        provably holds zero qualifying rows, so the sum of per-morsel
        qualifying counts the morsel path reports equals the full-scan
        count, and the denominator deliberately stays the snapshot's
        *total* row count (not the rows actually scanned) — selectivity
        remains "qualifying fraction of the table", the quantity Eq. 2
        estimates with.
        """
        if not info.has_predicate or snapshot.num_rows == 0:
            return
        qualifying = stats.qualifying_rows
        if qualifying is None:
            if info.is_aggregation:
                return
            qualifying = stats.rows_out
        key = CostModel._predicate_key(info)
        self.selectivity.observe(key, qualifying / snapshot.num_rows)

    def _fast_feedback(
        self,
        entry: CachedPlan,
        query: Query,
        stats: ExecStats,
        snapshot: LayoutSnapshot,
    ) -> None:
        """Feedback + drift eviction for fast-lane hits.

        The learned selectivity keeps updating on the fast lane too;
        when it drifts beyond ``config.selectivity_drift_band`` from the
        estimate the cached plan was stored with, the entry is evicted
        so the next repeat re-plans (and re-caches) on the cold path —
        bounding the regret of a stale plan decision.
        """
        if (
            not entry.has_predicate
            or stats.qualifying_rows is None
            or snapshot.num_rows == 0
        ):
            return
        self.selectivity.observe(
            entry.predicate_key,
            stats.qualifying_rows / snapshot.num_rows,
        )
        learned = self.selectivity.estimate(
            query.where, entry.predicate_key
        )
        if abs(learned - entry.selectivity) > (
            self.config.selectivity_drift_band
        ):
            self.plan_cache.invalidate(entry.signature, "drift")

    # Background adaptation hooks ------------------------------------------------

    def attach_adaptation_signal(
        self, callback: Optional[Callable[["H2OEngine"], None]]
    ) -> None:
        """Register (or clear, with ``None``) the due-ness callback.

        Used by :class:`repro.service.AdaptationScheduler`.  The
        callback must be non-blocking (it typically sets an Event); it
        is invoked from query threads *outside* the engine lock.
        """
        with self.lock:
            self._adaptation_signal = callback

    def adaptation_due(self) -> bool:
        """Whether the adaptation window has elapsed (thread-safe)."""
        with self.lock:
            return self.window.due()

    def run_adaptation_cycle(self) -> List[CandidateLayout]:
        """One background adaptation phase: advisor + candidate refresh.

        Runs :meth:`_adapt` under the engine lock (blocking other
        queries' *decision* stages briefly — their scans continue) and
        returns the candidates eligible for background materialization.
        The caller (the scheduler) stitches them off-lock from a pinned
        snapshot and publishes via :meth:`publish_group`.
        """
        with self.lock:
            if self.window.due():
                self._adapt(self._query_counter, {})
            return self.background_candidates()

    def background_candidates(self) -> List[CandidateLayout]:
        """Candidates worth materializing off the query path.

        Empty unless lazy materialization is enabled — the eager/off
        modes never stitch new groups, inline or background.
        """
        if self.config.materialization != "lazy":
            return []
        with self.lock:
            return [
                c
                for c in self.candidates
                # Only vertical groups stitch off-path; the physical
                # kinds mutate shared row order / add replicas and are
                # applied inline by the query that triggers them.
                if c.kind == "group"
                and c.expected_gain > 0
                and c.frequency >= self.config.amortization_threshold
                and self.table.find_group(c.attrs) is None
                and not self.quarantine.blocked(c.ledger_key)
                # Side-effect-free policy preview: the scheduler polls
                # every cycle and must not inflate deferral counters.
                and self.policy.would_allow(c)
            ]

    def note_stitch_failure(self, candidate: CandidateLayout) -> None:
        """Quarantine a candidate whose *background* stitch aborted.

        Called by :class:`repro.service.AdaptationScheduler` when a
        cycle's off-path stitch raises
        :class:`~repro.errors.ReorganizationError` — the same backoff
        policy as an online abort, so a poisoned group is not re-stitched
        on every cycle.
        """
        with self.lock:
            self.quarantine.note_failure(candidate.ledger_key)

    def publish_group(self, group, seconds: float) -> bool:
        """Atomically adopt a background-built column group.

        Returns ``False`` (discarding the group) when a concurrent
        append invalidated it — the stitch can be retried against a
        fresh snapshot on the next cycle.  On success the epoch bump
        implicitly invalidates every cached plan derived from the old
        layout set.
        """
        with self.lock:
            try:
                self.manager.register_group(
                    group, seconds, query_index=None, mode="background"
                )
            except LayoutError:
                return False
            self.quarantine.note_success(group.attr_set)
            for candidate in self.candidates:
                if (
                    candidate.kind == "group"
                    and candidate.attr_set == group.attr_set
                ):
                    self.policy.note_materialized(
                        candidate, self._query_counter
                    )
                    break
            self.candidates = [
                c
                for c in self.candidates
                if not (
                    c.kind == "group" and c.attr_set == group.attr_set
                )
            ]
            if self.config.max_table_bytes:
                self.manager.record_use([group])
                dropped = self.manager.retire_cold_groups(
                    self.config.max_table_bytes
                )
                if dropped:
                    self._last_adaptation_snapshot = None
            return True

    # Learned-state persistence ---------------------------------------------

    def adaptation_state(self, warmup_limit: int = 64) -> Dict[str, object]:
        """A JSON-serializable snapshot of everything this engine learned.

        Captured under the engine lock, so it is consistent with one
        instant of query processing.  The affinity matrices are *not*
        serialized directly: they are an exact function of the windowed
        queries (integer co-access counts, maintained add/remove
        symmetric), so persisting the window's SQL and replaying it
        through a fresh :class:`Monitor` reproduces them bit-for-bit.
        ``warmup_sql`` carries one representative query per recently
        executed shape so recovery can re-populate the plan and operator
        caches (cache entries hold compiled kernels and epoch tags and
        cannot be serialized; re-executing the shape rebuilds them).
        """
        with self.lock:
            warmup: Dict[object, str] = {}
            for report in reversed(self.reports):
                shape = report.query.shape_signature()
                if shape not in warmup:
                    warmup[shape] = report.query.to_sql()
                if len(warmup) >= warmup_limit:
                    break
            return {
                "window_sql": [q.to_sql() for q in self.monitor.window],
                "window_size": self.window.size,
                "since_adaptation": self.window.since_adaptation,
                "shrink_events": self.window.shrink_events,
                "grow_events": self.window.grow_events,
                "queries_seen": self.monitor.queries_seen,
                "query_counter": self._query_counter,
                # Clustering telemetry: snapshots persist the columns
                # *post-permutation*, so only the key and sorted-prefix
                # length need carrying — recovery re-seeds them so the
                # cost model keeps discounting the clustered scan.
                "cluster_key": self.table.cluster_key,
                "clustered_rows": self.table.clustered_rows,
                "selectivities": self.selectivity.export(),
                # The switching policy's debt ledger: recovery must not
                # silently reset accrued benefit/deferral history, or a
                # restarted guarded store would re-thrash from scratch.
                "policy": self.policy.export(),
                # Oldest-shape-last iteration above; reverse so warmup
                # replays in roughly original execution order.
                "warmup_sql": list(reversed(list(warmup.values()))),
            }

    def seed_adaptation_state(self, state: Dict[str, object]) -> None:
        """Restore a state captured by :meth:`adaptation_state`.

        Meant for a freshly constructed engine whose table already holds
        the recovered layouts (see repro/gateway/persist.py).  Warmup
        queries are executed through the ordinary path to re-populate
        the plan/operator caches, then the monitor/window/counters are
        reset to the persisted values so the warmup itself leaves no
        trace in the learned statistics.

        Crash-safe: the window is pinned open only for the duration of
        the warmup and is restored in a ``finally`` block, so neither a
        non-H2O exception escaping a warmup query nor a malformed
        persisted state (e.g. a missing ``window_size``) can leave the
        engine permanently unable to adapt.
        """

        def _intval(key: str, default: int = 0) -> int:
            try:
                return int(state.get(key, default))
            except (TypeError, ValueError):
                return default

        with self.lock:
            self.selectivity.restore(state.get("selectivities", {}))
            cluster_key = state.get("cluster_key")
            if isinstance(cluster_key, str) and cluster_key:
                # Rows were persisted post-permutation; this restores
                # only the telemetry (clamped, unknown keys ignored).
                self.table.seed_cluster_state(
                    cluster_key, _intval("clustered_rows")
                )
            # Malformed state keeps the current window size rather than
            # poisoning it.
            window_size = _intval("window_size", self.window.size)
            # Hold adaptation (and window bookkeeping) while warming up:
            # an adaptation phase mid-warmup would propose candidates
            # from warmup-polluted statistics and invalidate the very
            # plan-cache entries the warmup is building.
            self.window.size = 1 << 30
        try:
            for sql in state.get("warmup_sql", []):
                try:
                    self.execute(parse_query(sql))
                except H2OError:
                    # Warmup is best-effort: a shape that no longer
                    # parses or analyzes (schema drifted) stays cold.
                    pass
        finally:
            with self.lock:
                self.window.size = window_size
                monitor = Monitor(self.table.schema, window_size)
                for sql in state.get("window_sql", []):
                    try:
                        monitor.observe(parse_query(sql))
                    except H2OError:
                        # A window shape that no longer parses stays
                        # out of the recovered window.
                        pass
                monitor.queries_seen = _intval("queries_seen")
                self.monitor = monitor
                self.window.since_adaptation = _intval("since_adaptation")
                self.window.shrink_events = _intval("shrink_events")
                self.window.grow_events = _intval("grow_events")
                self._query_counter = max(
                    self._query_counter, _intval("query_counter")
                )
                self._reference_patterns = [
                    attrs for attrs, _ in monitor.distinct_access_sets()
                ]
                self.reports.clear()
                self.candidates = []
                self._last_adaptation_snapshot = None
                self._shift_since_adaptation = False
                # Restore the switching policy's ledger *after* warmup:
                # warmup executions must not pollute the persisted
                # accrual/deferral history (any switch the warmup itself
                # performed re-built a layout that already existed in
                # the recovered table, so it is not re-ledgered either).
                policy_state = state.get("policy")
                if isinstance(policy_state, dict):
                    self.policy.restore(policy_state)

    # Reporting -----------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """One-call telemetry summary (thread-safe, JSON-serializable).

        ``policy`` is the switching policy's bounded snapshot: the debt
        ledger's hottest entries, switch/deferral totals, and invested
        reorganization cost — the observability surface the guarded
        policy's thrash resistance is judged by (docs/adaptation.md).
        """
        with self.lock:
            return {
                "table": self.table.name,
                "queries": self._query_counter,
                "policy": self.policy.snapshot(),
                "layouts_created": len(self.manager.creation_log),
                "layout_creation_seconds": (
                    self.manager.creation_seconds()
                ),
                "reorg_aborts": self.reorg_aborts,
                "deadline_aborts": self.deadline_aborts,
                "candidates_pending": len(self.candidates),
                "window_size": self.window.size,
                "plan_cache": self.plan_cache.stats(),
                "morsels_total": self.morsels_total,
                "morsels_pruned": self.morsels_pruned,
                "pruned_fraction": (
                    self.morsels_pruned / self.morsels_total
                    if self.morsels_total
                    else 0.0
                ),
                "cluster_key": self.table.cluster_key,
                "clustered_fraction": self.table.clustered_fraction,
            }

    def cumulative_seconds(self) -> float:
        with self.lock:
            return sum(report.seconds for report in self.reports)

    def phase_totals(self) -> Dict[str, float]:
        with self.lock:
            totals: Dict[str, float] = {}
            for report in self.reports:
                for phase, seconds in report.phases.items():
                    totals[phase] = totals.get(phase, 0.0) + seconds
            return totals

    def layout_creation_seconds(self) -> float:
        with self.lock:
            return self.manager.creation_seconds()

    def describe(self) -> str:
        """Multi-line status summary for logs and examples."""
        with self.lock:
            lines = [
                f"H2O engine over {self.table!r}",
                f"  window size: {self.window.size} "
                f"(shrinks={self.window.shrink_events}, "
                f"grows={self.window.grow_events})",
                f"  candidates pending: {len(self.candidates)} "
                f"(reorg aborts: {self.reorg_aborts}, "
                f"quarantined: {len(self.quarantine.blocked_keys())})",
                "  policy: {} switches={} deferrals={} "
                "invested={:.4f}s-cost".format(
                    self.policy.name,
                    self.policy.switch_count,
                    self.policy.deferrals,
                    self.policy.invested_cost,
                ),
                "  codegen breaker: open={} short_circuits={} "
                "fallbacks={}".format(
                    len(self.breaker.open_keys()),
                    self.breaker.short_circuits,
                    self.executor.codegen_fallbacks,
                ),
                f"  layouts created: {len(self.manager.creation_log)} "
                f"({self.manager.creation_seconds():.3f}s)",
                "  operator cache: size={} hits={} misses={} "
                "evictions={}".format(
                    *self.executor.operator_cache.stats()
                ),
                f"  plan cache: {self.plan_cache.stats()}",
            ]
            lines.append(self.table.layout_summary())
            return "\n".join(lines)
