"""The H2O engine: adaptive query processing end to end.

Per query (paper Fig. 3 and sections 3.2–3.5):

1. the Monitor records the query's access pattern (affinity matrices,
   pattern frequencies) and the ShiftDetector checks for novelty —
   shifts shrink the dynamic adaptation window;
2. when the adaptation window elapses, the LayoutAdvisor evaluates the
   windowed workload (Eq. 1) and refreshes the *candidate pool* of
   proposed column groups — nothing is materialized yet;
3. if the incoming query matches a candidate that can amortize its
   creation, the Reorganizer materializes it **online**, answering the
   query in the same pass, and the layout joins the table;
4. otherwise the Query Processor enumerates (layout cover × strategy)
   access plans, costs them (Eq. 2), and executes the cheapest with an
   on-the-fly generated operator (cached when seen before);
5. observed selectivities feed back into the cost model.

All adaptation overheads — advisor runs, code generation, layout
creation — are charged to the triggering query's response time, exactly
as the paper reports them.

**The steady-state fast lane.**  Once the store has adapted (the tail
of Fig. 7), a recurring workload repeats the same query *shapes* with
fresh literals.  Steps 3–4 then re-derive a decision that cannot have
changed: analysis, plan enumeration, Eq. 2 costing and operator-cache
key construction are all functions of (query shape, layouts, candidate
pool, learned selectivities).  The engine therefore keeps a
:class:`~repro.core.plan_cache.PlanCache` keyed by the query's masked
shape signature: a repeat query goes ``signature → cached plan →
compiled kernel with freshly extracted literals``.  Entries are
invalidated by the table's layout epoch (any create/retire/append), by
candidate-pool refreshes (a cached plan must not shortcut past a query
that should trigger online materialization), and by learned-selectivity
drift beyond ``config.selectivity_drift_band``.  Monitoring and shift
detection still run for every query — adaptivity is never bypassed,
only re-derivation of unchanged decisions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..config import EngineConfig
from ..errors import ExecutionError
from ..execution.executor import ExecStats, Executor
from ..execution.result import QueryResult
from ..execution.strategies import AccessPlan, enumerate_plans
from ..sql.analyzer import QueryInfo, analyze_query
from ..sql.parser import parse_query
from ..sql.query import Query
from ..sql.signature import literal_extractor
from ..storage.relation import Table
from .advisor import CandidateLayout, LayoutAdvisor
from .cost_model import CostModel, SelectivityEstimator
from .history import ShiftDetector
from .layout_manager import LayoutManager
from .monitor import Monitor
from .plan_cache import CachedPlan, PlanCache
from .reorganizer import Reorganizer
from .window import DynamicWindow


@dataclass
class QueryReport:
    """Everything that happened while answering one query."""

    index: int
    query: Query
    result: QueryResult
    #: End-to-end response time (includes adaptation/codegen/reorg).
    seconds: float
    #: Time attribution: "adapt", "plan", "codegen", "reorg", "execute".
    phases: Dict[str, float] = field(default_factory=dict)
    plan: str = ""
    strategy: str = ""
    used_codegen: bool = False
    codegen_cache_hit: bool = False
    #: True when the query was answered through the steady-state fast
    #: lane (cached plan + kernel, no re-analysis/planning/costing).
    plan_cache_hit: bool = False
    layout_created: Optional[Tuple[str, ...]] = None
    adaptation_ran: bool = False
    shift_detected: bool = False
    window_size: int = 0
    cost_estimate: float = 0.0

    @property
    def reorg_seconds(self) -> float:
        return self.phases.get("reorg", 0.0)


class H2OEngine:
    """Adaptive hybrid engine over a single table.

    >>> from repro.storage import generate_table
    >>> engine = H2OEngine(generate_table("r", 10, 1000, rng=0))
    >>> report = engine.execute("SELECT sum(a1 + a2) FROM r WHERE a3 > 0")
    >>> report.result.num_rows
    1
    """

    def __init__(
        self, table: Table, config: Optional[EngineConfig] = None
    ) -> None:
        self.table = table
        self.config = config or EngineConfig()
        self.selectivity = SelectivityEstimator()
        self.cost_model = CostModel(self.config.machine, self.selectivity)
        self.monitor = Monitor(table.schema, self.config.window_size)
        self.window = DynamicWindow(self.config)
        self.shift_detector = ShiftDetector(self.config)
        self.advisor = LayoutAdvisor(table, self.cost_model, self.config)
        self.manager = LayoutManager(table, self.config)
        self.reorganizer = Reorganizer(self.config)
        self.executor = Executor(self.config)
        self.plan_cache = PlanCache(capacity=self.config.plan_cache_size)
        self.candidates: List[CandidateLayout] = []
        self.reports: List[QueryReport] = []
        self._shift_since_adaptation = False
        self._last_adaptation_snapshot: Optional[tuple] = None
        #: Distinct access sets as of the last adaptation phase.
        self._reference_patterns: List = []

    # Public API ---------------------------------------------------------------

    def execute(self, query: Union[Query, str]) -> QueryReport:
        """Answer one query, adapting storage and strategy on the way."""
        started = time.perf_counter()
        phases: Dict[str, float] = {}
        if isinstance(query, str):
            query = parse_query(query)
        if query.table != self.table.name:
            raise ExecutionError(
                f"engine serves table {self.table.name!r}, query targets "
                f"{query.table!r}"
            )
        index = len(self.reports)

        # 1. Monitoring + shift detection.  Novelty is judged against the
        # patterns known as of the *previous adaptation* ("H2O detects
        # workload shifts by comparing new queries with queries observed
        # in the previous query window") — a rolling reference would make
        # a shifted workload familiar to itself within a few queries.
        if not self._reference_patterns and len(self.monitor) >= (
            self.shift_detector.warmup
        ):
            self._reference_patterns = [
                attrs for attrs, _ in self.monitor.distinct_access_sets()
            ]
        known = self._reference_patterns or [
            attrs for attrs, _ in self.monitor.distinct_access_sets()
        ]
        self.monitor.observe(query)
        self.window.note_query()
        shift = self.shift_detector.assess(query.attributes, known)
        if shift:
            self._shift_since_adaptation = True
            self.window.note_shift()
            self.monitor.resize(self.window.size)

        # 2. Periodic adaptation: refresh the candidate pool.
        adaptation_ran = False
        if self.window.due():
            self._adapt(index, phases)
            adaptation_ran = True

        # 3. The steady-state fast lane: a repeat query shape under
        # unchanged layouts skips analysis, planning, costing and
        # codegen-key construction entirely.
        entry = None
        if self.config.plan_cache:
            entry = self.plan_cache.lookup(
                query.shape_signature(), self.table.layout_epoch
            )
        if entry is not None:
            result, stats = self._execute_fast(entry, query, phases)
            self._fast_feedback(entry, query, stats)
        else:
            # Cold path: full analysis, lazy materialization check,
            # plan enumeration + Eq. 2 costing, then cache the decision.
            info = analyze_query(query, self.table.schema)
            candidate = self._triggered_candidate(info)
            if candidate is not None:
                result, stats = self._materialize_and_execute(
                    info, candidate, index, phases
                )
            else:
                result, stats = self._plan_and_execute(info, phases)
            self._feedback(info, stats)
            self._maybe_cache_plan(query, info, stats)

        seconds = time.perf_counter() - started
        report = QueryReport(
            index=index,
            query=query,
            result=result,
            seconds=seconds,
            phases=phases,
            plan=stats.plan,
            strategy=stats.strategy.value,
            used_codegen=stats.used_codegen,
            codegen_cache_hit=stats.codegen_cache_hit,
            plan_cache_hit=entry is not None,
            layout_created=(
                tuple(stats.layout_created.split(","))
                if stats.layout_created
                else None
            ),
            adaptation_ran=adaptation_ran,
            shift_detected=shift,
            window_size=self.window.size,
            cost_estimate=stats.extras.get("cost_estimate", 0.0),
        )
        self.reports.append(report)
        return report

    def run_sequence(self, queries) -> List[QueryReport]:
        """Execute a sequence of queries, returning all reports."""
        return [self.execute(q) for q in queries]

    # Decision steps -------------------------------------------------------------

    def _adapt(self, index: int, phases: Dict[str, float]) -> None:
        """Refresh the candidate pool (the periodic adaptation phase).

        Two cheap checks avoid re-running the full advisor when it could
        not change anything: (a) the window's pattern population and the
        layouts are exactly as last time; (b) most of the windowed
        demand is already served by existing column groups (the stable,
        fully-adapted state where the paper grows the window).  When the
        candidate pool does change, every cached plan is dropped — a
        fast-lane hit must never shortcut past a query that should now
        trigger online materialization.
        """
        t0 = time.perf_counter()
        population = frozenset(
            attrs for attrs, _ in self.monitor.distinct_access_sets()
        )
        layouts_key = tuple(
            layout.attrs for layout in self.table.layouts
        )
        snapshot = (population, layouts_key)
        # The served-demand skip only applies in the stable regime
        # (no recent shift, window back at its initial size or
        # larger): after drift, new patterns must reach the advisor
        # even if the hot ones are already served.
        stable = (
            not self._shift_since_adaptation
            and self.window.size >= self.config.window_size
        )
        if snapshot != self._last_adaptation_snapshot and not (
            stable and self._served_fraction() >= 0.8
        ):
            pool_before = {
                c.attr_set: (c.frequency, c.expected_gain)
                for c in self.candidates
            }
            proposals = self.advisor.propose(self.monitor)
            # Accumulate: earlier proposals stay in the pool until a
            # query materializes them or fresher analysis supersedes
            # them — a candidate's pattern may recur only after the
            # window that proposed it has rolled on.
            pool = {c.attr_set: c for c in self.candidates}
            for candidate in proposals:
                pool[candidate.attr_set] = candidate
            ranked = sorted(
                pool.values(), key=lambda c: -c.expected_gain
            )
            self.candidates = ranked[: 2 * self.config.max_candidates]
            self._last_adaptation_snapshot = snapshot
            if self.config.materialization == "eager":
                # The ablation discipline: build every proposal now,
                # offline, instead of fusing creation with a query.
                for candidate in self.candidates:
                    if candidate.expected_gain > 0:
                        self.manager.build_group(
                            candidate.attrs, query_index=index
                        )
                self.candidates = []
            pool_after = {
                c.attr_set: (c.frequency, c.expected_gain)
                for c in self.candidates
            }
            if pool_after != pool_before:
                self.plan_cache.invalidate_all("candidates")
        self.window.adapted()
        if not self._shift_since_adaptation:
            self.window.note_stable()
        self._shift_since_adaptation = False
        self.monitor.resize(self.window.size)
        self._reference_patterns = [
            attrs for attrs, _ in self.monitor.distinct_access_sets()
        ]
        phases["adapt"] = time.perf_counter() - t0

    def _served_fraction(self) -> float:
        """Fraction of windowed queries already served by a group.

        A query counts as served when some existing multi-attribute
        layout contains its whole access set or its whole SELECT clause
        — exactly the situations where planning finds a fused-group (or
        Fig. 6 split) plan and the advisor would propose nothing new.
        """
        window = self.monitor.window
        if not window:
            return 1.0
        groups = [
            layout.attr_set
            for layout in self.table.layouts
            # Workload-specific groups only: the full-width (row-major)
            # layout contains everything without serving anything.
            if 2 <= layout.width < self.table.schema.width
        ]
        if not groups:
            return 0.0
        served = 0
        for query in window:
            attrs = query.attributes
            select_attrs = query.select_attributes
            for group in groups:
                if attrs <= group or (
                    select_attrs and select_attrs <= group
                ):
                    served += 1
                    break
        return served / len(window)

    def _triggered_candidate(
        self, info: QueryInfo
    ) -> Optional[CandidateLayout]:
        """The best candidate this query both matches and amortizes."""
        if self.config.materialization != "lazy":
            return None
        select_attrs = frozenset(info.select_attrs)
        where_attrs = frozenset(info.where_attrs)
        best: Optional[CandidateLayout] = None
        for candidate in self.candidates:
            if not candidate.serves(select_attrs, where_attrs):
                continue
            if self.table.find_group(candidate.attrs) is not None:
                continue
            if candidate.frequency < self.config.amortization_threshold:
                continue
            if candidate.expected_gain <= 0:
                continue
            if best is None or candidate.expected_gain > best.expected_gain:
                best = candidate
        return best

    def _materialize_and_execute(
        self,
        info: QueryInfo,
        candidate: CandidateLayout,
        index: int,
        phases: Dict[str, float],
    ) -> Tuple[QueryResult, ExecStats]:
        """Online reorganization: build the layout while answering."""
        outcome = self.reorganizer.online(self.table, candidate.attrs, info)
        self.manager.register_group(
            outcome.group, outcome.seconds, query_index=index, mode="online"
        )
        self.candidates = [
            c for c in self.candidates if c.attr_set != candidate.attr_set
        ]
        if self.config.max_table_bytes:
            # Enforce the storage budget by retiring cold groups (never
            # the one just built — it has a use already recorded).
            self.manager.record_use([outcome.group])
            dropped = self.manager.retire_cold_groups(
                self.config.max_table_bytes
            )
            if dropped:
                self._last_adaptation_snapshot = None  # layouts changed
        phases["reorg"] = outcome.seconds
        from ..execution.strategies import ExecutionStrategy

        stats = ExecStats(
            strategy=ExecutionStrategy.FUSED,
            plan=f"online-reorg(group[{','.join(candidate.attrs)}])",
            rows_out=outcome.result.num_rows,
            reorg_seconds=outcome.seconds,
            layout_created=",".join(candidate.attrs),
        )
        return outcome.result, stats

    def _plan_and_execute(
        self, info: QueryInfo, phases: Dict[str, float]
    ) -> Tuple[QueryResult, ExecStats]:
        """Cost-based choice among (layout cover × strategy) plans."""
        t0 = time.perf_counter()
        plans = enumerate_plans(self.table, info)
        costed = [
            (self.cost_model.plan_cost(info, plan), i, plan)
            for i, plan in enumerate(plans)
        ]
        cost, _, plan = min(costed)
        phases["plan"] = time.perf_counter() - t0

        t1 = time.perf_counter()
        result, stats = self.executor.run_plan(info, plan)
        elapsed = time.perf_counter() - t1
        phases["codegen"] = phases.get("codegen", 0.0) + stats.codegen_seconds
        phases["execute"] = phases.get("execute", 0.0) + (
            elapsed - stats.codegen_seconds
        )
        stats.extras["cost_estimate"] = cost
        stats.extras["access_plan"] = plan
        self.manager.record_use(plan.layouts)
        return result, stats

    # The steady-state fast lane ------------------------------------------------

    def _execute_fast(
        self, entry: CachedPlan, query: Query, phases: Dict[str, float]
    ) -> Tuple[QueryResult, ExecStats]:
        """Answer a repeat query shape from its cached decision.

        With a compiled kernel the whole query becomes: extract the
        fresh literals, bind the (epoch-validated) layout buffers, call
        the kernel.  Without one (interpreted configurations) the cached
        plan still skips analysis, enumeration and costing, and the
        executor runs it generically.
        """
        t0 = time.perf_counter()
        if entry.kernel is not None and entry.extract_params is not None:
            params = entry.extract_params(query)
            buffers = tuple(
                layout.data for layout in entry.plan.layouts
            )
            payload = entry.kernel(buffers, params)
            names = [out.name for out in query.select]
            if entry.is_aggregation:
                values, qualifying_raw = payload
                result = QueryResult.scalar_row(names, values)
                qualifying = int(qualifying_raw)
            else:
                result = QueryResult(names, payload)
                qualifying = result.num_rows
            stats = ExecStats(
                strategy=entry.plan.strategy,
                plan=entry.plan_desc,
                used_codegen=True,
                codegen_cache_hit=True,
                rows_out=result.num_rows,
                qualifying_rows=qualifying,
            )
        else:
            info = QueryInfo(
                query=query,
                select_attrs=entry.select_attrs,
                where_attrs=entry.where_attrs,
                all_attrs=entry.all_attrs,
                output_types=entry.output_types,
                is_aggregation=entry.is_aggregation,
                has_predicate=entry.has_predicate,
            )
            result, stats = self.executor.run_plan(info, entry.plan)
            stats.extras.pop("operator", None)
        stats.extras["cost_estimate"] = entry.cost_estimate
        self.manager.record_use(entry.plan.layouts)
        phases["execute"] = (
            phases.get("execute", 0.0) + time.perf_counter() - t0
        )
        return result, stats

    def _maybe_cache_plan(
        self, query: Query, info: QueryInfo, stats: ExecStats
    ) -> None:
        """Cache the cold path's decision for future repeats.

        Only plans chosen by cost-based planning are cached (online
        reorganization changes the layouts, so its epoch is stale by
        construction; attribute-free queries have nothing to reuse).
        """
        if not self.config.plan_cache or not info.all_attrs:
            return
        plan = stats.extras.pop("access_plan", None)
        if plan is None:
            return
        operator = stats.extras.pop("operator", None)
        predicate_key = CostModel._predicate_key(info)
        self.plan_cache.store(
            CachedPlan(
                signature=query.shape_signature(),
                epoch=self.table.layout_epoch,
                plan=plan,
                plan_desc=stats.plan,
                select_attrs=info.select_attrs,
                where_attrs=info.where_attrs,
                all_attrs=info.all_attrs,
                output_types=info.output_types,
                is_aggregation=info.is_aggregation,
                has_predicate=info.has_predicate,
                kernel=operator.kernel if operator is not None else None,
                extract_params=(
                    literal_extractor(query)
                    if operator is not None
                    else None
                ),
                cost_estimate=stats.extras.get("cost_estimate", 0.0),
                predicate_key=predicate_key,
                selectivity=self.selectivity.estimate(
                    query.where, predicate_key
                ),
            )
        )

    # Selectivity feedback -------------------------------------------------------

    def _feedback(self, info: QueryInfo, stats: ExecStats) -> None:
        """Report observed selectivity back to the estimator.

        Aggregation queries are included through the qualifying-row
        count the executor now plumbs out of every path (generated
        kernels report the shared ``cnt`` accumulator); paths that
        cannot tell (online reorganization) leave it ``None`` and only
        contribute when the result itself is the qualifying row set.
        """
        if not info.has_predicate or self.table.num_rows == 0:
            return
        qualifying = stats.qualifying_rows
        if qualifying is None:
            if info.is_aggregation:
                return
            qualifying = stats.rows_out
        key = CostModel._predicate_key(info)
        self.selectivity.observe(key, qualifying / self.table.num_rows)

    def _fast_feedback(
        self, entry: CachedPlan, query: Query, stats: ExecStats
    ) -> None:
        """Feedback + drift eviction for fast-lane hits.

        The learned selectivity keeps updating on the fast lane too;
        when it drifts beyond ``config.selectivity_drift_band`` from the
        estimate the cached plan was stored with, the entry is evicted
        so the next repeat re-plans (and re-caches) on the cold path —
        bounding the regret of a stale plan decision.
        """
        if (
            not entry.has_predicate
            or stats.qualifying_rows is None
            or self.table.num_rows == 0
        ):
            return
        self.selectivity.observe(
            entry.predicate_key,
            stats.qualifying_rows / self.table.num_rows,
        )
        learned = self.selectivity.estimate(
            query.where, entry.predicate_key
        )
        if abs(learned - entry.selectivity) > (
            self.config.selectivity_drift_band
        ):
            self.plan_cache.invalidate(entry.signature, "drift")

    # Reporting -----------------------------------------------------------------

    def cumulative_seconds(self) -> float:
        return sum(report.seconds for report in self.reports)

    def phase_totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for report in self.reports:
            for phase, seconds in report.phases.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return totals

    def layout_creation_seconds(self) -> float:
        return self.manager.creation_seconds()

    def describe(self) -> str:
        """Multi-line status summary for logs and examples."""
        lines = [
            f"H2O engine over {self.table!r}",
            f"  window size: {self.window.size} "
            f"(shrinks={self.window.shrink_events}, "
            f"grows={self.window.grow_events})",
            f"  candidates pending: {len(self.candidates)}",
            f"  layouts created: {len(self.manager.creation_log)} "
            f"({self.layout_creation_seconds():.3f}s)",
            "  operator cache: size={} hits={} misses={} evictions={}".format(
                *self.executor.operator_cache.stats()
            ),
            f"  plan cache: {self.plan_cache.stats()}",
        ]
        lines.append(self.table.layout_summary())
        return "\n".join(lines)
