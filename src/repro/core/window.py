"""The dynamic adaptation window (paper sections 3.2 and 4.1, Fig. 9).

The window size controls how often the adaptation mechanism runs and how
much history it weighs.  H2O shrinks the window when the workload shifts
("progressively orchestrate a new adaptation phase") and grows it while
the workload is stable, bounding both directions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import EngineConfig


@dataclass
class DynamicWindow:
    """Adaptation-window policy: when to adapt, how large the window is."""

    config: EngineConfig
    size: int = field(init=False)
    #: Queries executed since the last adaptation phase.
    since_adaptation: int = field(default=0, init=False)
    #: Count of shrink / grow events (exposed for experiments).
    shrink_events: int = field(default=0, init=False)
    grow_events: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.size = self.config.window_size

    def note_query(self) -> None:
        """One more query has been executed."""
        self.since_adaptation += 1

    def due(self) -> bool:
        """Whether an adaptation phase should run now."""
        return self.since_adaptation >= self.size

    def adapted(self) -> None:
        """An adaptation phase just ran; restart the countdown."""
        self.since_adaptation = 0

    def note_shift(self) -> None:
        """Workload shift detected → shrink multiplicatively (if dynamic)."""
        if not self.config.dynamic_window:
            return
        new_size = max(
            self.config.min_window,
            int(self.size * self.config.window_shrink_factor),
        )
        if new_size != self.size:
            self.size = new_size
            self.shrink_events += 1

    def note_stable(self) -> None:
        """Workload looks stable → grow additively (if dynamic)."""
        if not self.config.dynamic_window:
            return
        new_size = min(
            self.config.max_window, self.size + self.config.window_grow_step
        )
        if new_size != self.size:
            self.size = new_size
            self.grow_events += 1
