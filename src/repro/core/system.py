"""Multi-table facade: one adaptive engine per registered table.

The paper's prototype (and :class:`~repro.core.engine.H2OEngine`) serve
one relation; a database holds many.  :class:`H2OSystem` wraps a
:class:`~repro.storage.catalog.Catalog` and lazily maintains one
independent H2O engine per table — each with its own monitor, window,
candidate pool and operator cache, since adaptation state is strictly
per-relation.  Queries are routed by their FROM table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..config import EngineConfig
from ..errors import CatalogError
from ..sql.parser import parse_query
from ..sql.query import Query
from ..storage.catalog import Catalog
from ..storage.relation import Table
from .engine import H2OEngine, QueryReport


class H2OSystem:
    """Adaptive query processing over a catalog of tables."""

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.catalog = catalog or Catalog()
        self.config = config or EngineConfig()
        self._engines: Dict[str, H2OEngine] = {}

    # Catalog management -----------------------------------------------------

    def register(self, table: Table, replace: bool = False) -> None:
        """Add a table; its engine is created on first query."""
        self.catalog.register(table, replace=replace)
        if replace:
            self._engines.pop(table.name, None)

    def drop(self, name: str) -> None:
        """Remove a table and its adaptation state."""
        self.catalog.drop(name)
        self._engines.pop(name, None)

    def engine_for(self, name: str) -> H2OEngine:
        """The (lazily created) engine serving table ``name``."""
        engine = self._engines.get(name)
        if engine is None:
            table = self.catalog.get(name)
            engine = H2OEngine(table, self.config)
            self._engines[name] = engine
        return engine

    # Querying ------------------------------------------------------------------

    def execute(self, query: Union[Query, str]) -> QueryReport:
        """Route a query to its table's engine and execute it."""
        if isinstance(query, str):
            query = parse_query(query)
        if query.table not in self.catalog:
            raise CatalogError(
                f"unknown table {query.table!r} (registered: "
                + (", ".join(sorted(self.catalog)) or "<none>")
                + ")"
            )
        return self.engine_for(query.table).execute(query)

    def run_sequence(self, queries) -> List[QueryReport]:
        return [self.execute(q) for q in queries]

    # Reporting -------------------------------------------------------------------

    def cumulative_seconds(self) -> float:
        return sum(
            engine.cumulative_seconds() for engine in self._engines.values()
        )

    def describe(self) -> str:
        """Status of every active engine."""
        if not self._engines:
            return (
                f"H2O system: {len(self.catalog)} table(s) registered, "
                "no queries yet"
            )
        parts = []
        for name in sorted(self._engines):
            parts.append(self._engines[name].describe())
        return "\n\n".join(parts)
