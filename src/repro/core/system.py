"""Multi-table facade: one adaptive engine per registered table.

The paper's prototype (and :class:`~repro.core.engine.H2OEngine`) serve
one relation; a database holds many.  :class:`H2OSystem` wraps a
:class:`~repro.storage.catalog.Catalog` and lazily maintains one
independent H2O engine per table — each with its own monitor, window,
candidate pool and operator cache, since adaptation state is strictly
per-relation.  Queries are routed by their FROM table.

The facade is thread-safe: engine creation and catalog changes are
serialized by an internal lock (double-checked so the steady-state
lookup is a single dict read), and each engine is itself safe for
concurrent :meth:`H2OEngine.execute` calls — the
:class:`repro.service.H2OService` worker pool routes straight through
here.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple, Union

from ..config import EngineConfig
from ..errors import CatalogError
from ..sql.parser import parse_query
from ..sql.query import Query
from ..storage.catalog import Catalog
from ..storage.relation import Table
from .engine import H2OEngine, QueryReport


class H2OSystem:
    """Adaptive query processing over a catalog of tables."""

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.catalog = catalog or Catalog()
        self.config = config or EngineConfig()
        self._engines: Dict[str, H2OEngine] = {}
        #: Serializes engine creation and catalog mutation; never held
        #: during query execution.
        self._lock = threading.Lock()

    # Catalog management -----------------------------------------------------

    def register(self, table: Table, replace: bool = False) -> None:
        """Add a table; its engine is created on first query."""
        with self._lock:
            self.catalog.register(table, replace=replace)
            if replace:
                self._engines.pop(table.name, None)

    def drop(self, name: str) -> None:
        """Remove a table and its adaptation state."""
        with self._lock:
            self.catalog.drop(name)
            self._engines.pop(name, None)

    def engine_for(self, name: str) -> H2OEngine:
        """The (lazily created) engine serving table ``name``."""
        engine = self._engines.get(name)
        if engine is None:
            with self._lock:
                engine = self._engines.get(name)
                if engine is None:
                    table = self.catalog.get(name)
                    engine = H2OEngine(table, self.config)
                    self._engines[name] = engine
        return engine

    def engines(self) -> Tuple[H2OEngine, ...]:
        """All engines created so far (a consistent copy)."""
        with self._lock:
            return tuple(self._engines.values())

    # Querying ------------------------------------------------------------------

    def execute(
        self,
        query: Union[Query, str],
        deadline: Optional[float] = None,
    ) -> QueryReport:
        """Route a query to its table's engine and execute it.

        ``deadline`` (absolute ``time.monotonic()`` instant, or
        ``None``) is passed straight through to
        :meth:`H2OEngine.execute` — the service uses it so a ticket
        whose deadline already passed never starts a new engine stage.
        """
        if isinstance(query, str):
            query = parse_query(query)
        if query.table not in self.catalog:
            raise CatalogError(
                f"unknown table {query.table!r} (registered: "
                + (", ".join(sorted(self.catalog)) or "<none>")
                + ")"
            )
        return self.engine_for(query.table).execute(
            query, deadline=deadline
        )

    def run_sequence(self, queries) -> List[QueryReport]:
        return [self.execute(q) for q in queries]

    # Reporting -------------------------------------------------------------------

    def cumulative_seconds(self) -> float:
        return sum(
            engine.cumulative_seconds() for engine in self.engines()
        )

    def describe(self) -> str:
        """Status of every active engine."""
        with self._lock:
            engines = dict(self._engines)
        if not engines:
            return (
                f"H2O system: {len(self.catalog)} table(s) registered, "
                "no queries yet"
            )
        parts = []
        for name in sorted(engines):
            parts.append(engines[name].describe())
        return "\n\n".join(parts)


def build_system(config: Optional[EngineConfig] = None):
    """The system the config asks for: sharded or single-process.

    ``shard_count > 0`` returns a
    :class:`~repro.sharding.coordinator.ShardedSystem` (N worker
    processes over shared-memory slices); otherwise a plain
    :class:`H2OSystem`.  Both expose the same register / drop /
    execute / run_sequence / describe surface, so callers (notably
    :class:`repro.service.H2OService`) need not care which they got.
    """
    config = config or EngineConfig()
    if config.shard_count > 0:
        # Imported lazily: repro.sharding imports this module.
        from ..sharding.coordinator import ShardedSystem

        return ShardedSystem(config)
    return H2OSystem(config=config)
