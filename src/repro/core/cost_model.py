"""The query cost model (paper section 3.5, Eq. 2).

For a query ``q`` over a set of accessed layouts ``L``::

    q(L) = sum_i max(costIO_i, costCPU_i)

- I/O cost is data volume over scan bandwidth (all experiments are
  memory-resident, so "I/O" is memory traffic, sequential or gathered).
- CPU cost is modelled from data-cache misses (the dominant stall source
  for scan-heavy plans [Ailamaki et al., VLDB'99]) plus per-value
  processing work.  Misses are derived from the layout width, the tuple
  count, the words actually useful to the query, and the access pattern
  (sequential vs. gather at some selectivity) — the HYRISE-style model
  the paper cites.  Intermediate-result traffic is charged explicitly,
  because strategies differ exactly there (late materialization pays it,
  fused scans avoid it).

The model is used for *relative* decisions (which plan / which layout /
is a transformation amortized), matching how the paper uses it.  All
estimates work on abstract group descriptors so the advisor can cost
hypothetical layouts that do not exist yet.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import (
    ClassVar,
    Dict,
    Iterable,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..config import MachineProfile
from ..errors import CostModelError
from ..execution.strategies import AccessPlan, ExecutionStrategy
from ..sql.analyzer import QueryInfo
from ..sql.expressions import (
    Arithmetic,
    BoolConnective,
    BooleanOp,
    Comparison,
    ComparisonOp,
    Expr,
    Not,
)

#: Default qualifying fraction assumed for a range comparison when no
#: observation is available (selinger-style magic number).
DEFAULT_COMPARISON_SELECTIVITY = 1.0 / 3.0
DEFAULT_EQUALITY_SELECTIVITY = 0.01


@dataclass(frozen=True)
class GroupSpec:
    """Abstract descriptor of one (possibly hypothetical) layout access.

    ``width`` is the layout's total attribute count; ``useful`` how many
    of them this query actually reads.  ``num_rows`` is the table size.
    ``bytes_per_value`` is the stored size of one value — 8 for plain
    word layouts, 1–4 for encoded columns whose kernels scan the code
    array instead of the decoded values (the Eq. 2 scan terms shrink
    proportionally; CPU work per value is unchanged).
    """

    width: int
    useful: int
    num_rows: int
    bytes_per_value: int = 8

    def __post_init__(self) -> None:
        if self.width <= 0 or self.useful < 0 or self.num_rows < 0:
            raise CostModelError(f"invalid group spec: {self}")
        if self.useful > self.width:
            raise CostModelError(
                f"useful attributes ({self.useful}) exceed width "
                f"({self.width})"
            )
        if self.bytes_per_value <= 0:
            raise CostModelError(
                f"bytes_per_value must be positive: {self}"
            )

    _interned: ClassVar[Dict[Tuple[int, int, int, int], "GroupSpec"]] = {}

    @classmethod
    def of(
        cls,
        width: int,
        useful: int,
        num_rows: int,
        bytes_per_value: int = 8,
    ) -> "GroupSpec":
        """Interned constructor — the advisor builds the same handful of
        descriptors hundreds of thousands of times per adaptation."""
        key = (width, useful, num_rows, bytes_per_value)
        spec = cls._interned.get(key)
        if spec is None:
            spec = cls(width, useful, num_rows, bytes_per_value)
            cls._interned[key] = spec
        return spec


class SelectivityEstimator:
    """Predicate selectivity: heuristics refined by observed feedback.

    The engine reports each executed predicate's observed selectivity
    (keyed by its masked SQL, so constants don't fragment the history);
    estimates blend toward observations with an exponential moving
    average, which is how H2O's "statistics from recent queries" inform
    cost estimation without a full optimizer statistics subsystem.
    """

    def __init__(self, blend: float = 0.5) -> None:
        if not 0.0 < blend <= 1.0:
            raise CostModelError(f"blend must be in (0, 1], got {blend}")
        self._observed: Dict[str, float] = {}
        self._blend = blend

    def observe(self, key: str, selectivity: float) -> None:
        """Fold one observed qualifying fraction into the history."""
        selectivity = min(1.0, max(0.0, selectivity))
        previous = self._observed.get(key)
        if previous is None:
            self._observed[key] = selectivity
        else:
            self._observed[key] = (
                (1.0 - self._blend) * previous + self._blend * selectivity
            )

    def export(self) -> Dict[str, float]:
        """The learned selectivities, keyed by masked predicate SQL.

        A defensive copy suitable for JSON persistence; feed it back
        through :meth:`restore` to pre-seed a fresh estimator (the
        gateway's snapshot/recovery path does exactly this).
        """
        return dict(self._observed)

    def restore(self, observed: "Mapping[str, float]") -> None:
        """Adopt previously exported selectivities verbatim (no blend)."""
        for key, value in observed.items():
            self._observed[str(key)] = min(1.0, max(0.0, float(value)))

    def estimate(self, predicate: Optional[Expr], key: str = "") -> float:
        """Estimated qualifying fraction of ``predicate``."""
        if predicate is None:
            return 1.0
        if key and key in self._observed:
            return self._observed[key]
        return self._heuristic(predicate)

    def _heuristic(self, predicate: Expr) -> float:
        if isinstance(predicate, Comparison):
            if predicate.op in (ComparisonOp.EQ,):
                return DEFAULT_EQUALITY_SELECTIVITY
            if predicate.op is ComparisonOp.NE:
                return 1.0 - DEFAULT_EQUALITY_SELECTIVITY
            return DEFAULT_COMPARISON_SELECTIVITY
        if isinstance(predicate, BooleanOp):
            left = self._heuristic(predicate.left)
            right = self._heuristic(predicate.right)
            if predicate.op is BoolConnective.AND:
                return left * right
            return min(1.0, left + right - left * right)
        if isinstance(predicate, Not):
            return 1.0 - self._heuristic(predicate.child)
        return 1.0


def count_arithmetic_ops(expr: Expr) -> int:
    """Number of per-tuple arithmetic operations in an expression tree."""
    if isinstance(expr, Arithmetic):
        return (
            1
            + count_arithmetic_ops(expr.left)
            + count_arithmetic_ops(expr.right)
        )
    total = 0
    for child in ("left", "right", "child", "arg"):
        node = getattr(expr, child, None)
        if isinstance(node, Expr):
            total += count_arithmetic_ops(node)
    return total


class CostModel:
    """Implements Eq. 2 plus the transformation term of Eq. 1."""

    def __init__(
        self,
        machine: Optional[MachineProfile] = None,
        selectivity: Optional[SelectivityEstimator] = None,
    ) -> None:
        self.machine = machine or MachineProfile()
        self.selectivity = selectivity or SelectivityEstimator()
        # (ops count, predicate key) memoized by query structure — the
        # advisor costs the same windowed patterns thousands of times.
        self._shape_cache: Dict[Tuple, Tuple[int, str]] = {}
        # Elementary access costs are pure functions of their inputs;
        # the advisor hits the same (spec, k) points constantly.
        self._seq_cache: Dict[GroupSpec, float] = {}
        self._stride_cache: Dict[GroupSpec, float] = {}
        self._gather_cache: Dict[Tuple[GroupSpec, int], float] = {}

    # Elementary access costs ------------------------------------------------

    def sequential_access(self, spec: GroupSpec) -> float:
        """max(IO, CPU) for one full sequential scan of a layout."""
        cached = self._seq_cache.get(spec)
        if cached is not None:
            return cached
        m = self.machine
        bytes_scanned = spec.num_rows * spec.width * spec.bytes_per_value
        io = bytes_scanned / m.io_bandwidth
        misses = bytes_scanned / m.cache_line_bytes
        work = spec.num_rows * spec.useful * m.cpu_per_word
        cpu = misses * m.miss_penalty + work
        result = max(io, cpu)
        self._seq_cache[spec] = result
        return result

    def column_stride_access(self, spec: GroupSpec) -> float:
        """max(IO, CPU) for reading ``useful`` columns *individually*
        out of a layout of ``width`` attributes (strided access).

        Every cache line containing a useful value is fetched; when the
        layout is wide, one value costs one whole line.
        """
        cached = self._stride_cache.get(spec)
        if cached is not None:
            return cached
        m = self.machine
        values_per_line = max(
            1, m.cache_line_bytes // (spec.width * spec.bytes_per_value)
        )
        lines_per_column = math.ceil(spec.num_rows / values_per_line)
        lines = spec.useful * lines_per_column
        # A wide layout cannot require more lines than a full scan per
        # column pass, nor fewer than the useful values demand.
        bytes_touched = lines * m.cache_line_bytes
        io = bytes_touched / m.io_bandwidth
        work = spec.num_rows * spec.useful * m.cpu_per_word
        cpu = lines * m.miss_penalty + work
        result = max(io, cpu)
        self._stride_cache[spec] = result
        return result

    def gather_access(self, spec: GroupSpec, k: int) -> float:
        """max(IO, CPU) for fetching ``k`` of ``num_rows`` tuples'
        useful values through a position list (random access)."""
        cache_key = (spec, k)
        cached = self._gather_cache.get(cache_key)
        if cached is not None:
            return cached
        m = self.machine
        values_per_line = max(
            1, m.cache_line_bytes // (spec.width * spec.bytes_per_value)
        )
        total_lines = spec.useful * math.ceil(
            spec.num_rows / values_per_line
        )
        touched = min(k * spec.useful, total_lines)
        bytes_touched = touched * m.cache_line_bytes
        io = bytes_touched / m.random_io_bandwidth
        work = k * spec.useful * m.cpu_per_word
        cpu = touched * m.miss_penalty + work
        result = max(io, cpu)
        self._gather_cache[cache_key] = result
        return result

    def intermediate(self, values: float) -> float:
        """Write + read back one intermediate of ``values`` words."""
        m = self.machine
        traffic = 2.0 * values * m.word_bytes
        io = traffic / m.io_bandwidth
        cpu = (traffic / m.cache_line_bytes) * m.miss_penalty
        return max(io, cpu)

    # Strategy-level query costs -------------------------------------------------

    def _query_shape(
        self, info: QueryInfo
    ) -> Tuple[float, int, int]:
        """(estimated selectivity, #select attrs, per-tuple ops)."""
        cache_key = info.query.signature().structure
        cached = self._shape_cache.get(cache_key)
        if cached is None:
            ops = sum(
                count_arithmetic_ops(out.expr) for out in info.query.select
            )
            cached = (ops, self._predicate_key(info))
            self._shape_cache[cache_key] = cached
        ops, predicate_key = cached
        selectivity = self.selectivity.estimate(
            info.query.where, predicate_key
        )
        return selectivity, len(info.select_attrs), ops

    @staticmethod
    def _predicate_key(info: QueryInfo) -> str:
        if info.query.where is None:
            return ""
        from ..codegen.exprc import masked_sql

        return masked_sql(info.query.where)

    def fused_cost(
        self,
        info: QueryInfo,
        cover: Sequence[GroupSpec],
        scan_fraction: float = 1.0,
    ) -> float:
        """Eq. 2 for a fused single-pass scan over ``cover``.

        ``scan_fraction`` is the fraction of morsels that survive
        zone-map pruning (1.0 when nothing prunes): pruning skips whole
        morsels before they are scanned, so only the *scan* term
        shrinks.  The qualifying-tuple terms are untouched — pruning is
        exact, every qualifying tuple lives in a surviving morsel.
        """
        selectivity, n_select, ops = self._query_shape(info)
        # Identical (interned) specs are grouped: cost is linear in the
        # number of *distinct* access shapes, not the number of layouts.
        total = scan_fraction * sum(
            count * self.sequential_access(spec)
            for spec, count in Counter(cover).items()
        )
        num_rows = cover[0].num_rows if cover else 0
        qualifying = selectivity * num_rows
        # Arithmetic on qualifying tuples only (predicate push-down).
        total += qualifying * ops * self.machine.cpu_per_word
        if info.has_predicate and n_select:
            # Compaction buffers for qualifying tuples.
            total += self.intermediate(qualifying * n_select)
        if not info.is_aggregation:
            total += self.intermediate(qualifying * len(info.query.select))
        return total

    def late_cost(
        self, info: QueryInfo, cover: Sequence[GroupSpec],
        where_cover: Optional[Sequence[GroupSpec]] = None,
        scan_fraction: float = 1.0,
    ) -> float:
        """Eq. 2 for a late-materialization plan.

        ``cover`` describes the accesses serving the SELECT clause and
        ``where_cover`` (default: derived from ``cover``) the predicate
        columns.  Predicate columns are read with strided column access;
        SELECT columns are gathered at the estimated selectivity, and
        every arithmetic operator materializes an intermediate.

        ``scan_fraction`` scales the predicate-column scan exactly as in
        :meth:`fused_cost`: zone-map pruning skips whole morsels of the
        filter scan, while the qualifying-tuple gathers are unchanged.
        """
        selectivity, n_select, ops = self._query_shape(info)
        num_rows = cover[0].num_rows if cover else 0
        total = 0.0
        if info.has_predicate:
            where_specs = where_cover if where_cover is not None else ()
            for spec, count in Counter(where_specs).items():
                total += scan_fraction * count * (
                    self.column_stride_access(spec)
                )
            qualifying = selectivity * num_rows
            # The selection vector itself is an intermediate.
            total += self.intermediate(qualifying)
            # Conjunct-by-conjunct refinement (paper section 2.1): every
            # predicate after the first fetches its qualifying values
            # into a fresh intermediate column and rewrites the position
            # list.  A fused scan evaluates the whole conjunction in one
            # pass and pays none of this.
            num_conjuncts = len(info.query.predicates)
            if num_conjuncts > 1:
                # Geometric per-conjunct selectivity; the chain gathers
                # at the running qualifying count after each conjunct.
                per_conjunct = selectivity ** (1.0 / num_conjuncts)
                running = float(num_rows)
                single = GroupSpec.of(1, 1, num_rows)
                for _ in range(num_conjuncts - 1):
                    running *= per_conjunct
                    total += self.gather_access(single, int(running))
                    total += 2.0 * self.intermediate(running)
        else:
            qualifying = float(num_rows)
        for spec, count in Counter(cover).items():
            if info.has_predicate:
                total += count * (
                    self.gather_access(spec, int(qualifying))
                    + self.intermediate(qualifying * spec.useful)
                )
            else:
                total += count * self.column_stride_access(spec)
        # Per-operator intermediates for the arithmetic pipeline.
        total += ops * self.intermediate(qualifying)
        total += qualifying * ops * self.machine.cpu_per_word
        if not info.is_aggregation:
            total += self.intermediate(qualifying * len(info.query.select))
        return total

    # Concrete-plan costing -------------------------------------------------------

    def _specs_for_layouts(
        self, layouts, attrs: Iterable[str]
    ) -> Tuple[GroupSpec, ...]:
        """GroupSpecs for concrete layouts given the needed attributes."""
        needed = set(attrs)
        specs = []
        for layout in layouts:
            useful = len(needed & layout.attr_set)
            if useful == 0:
                continue
            specs.append(
                GroupSpec.of(
                    layout.width,
                    useful,
                    layout.num_rows,
                    int(
                        getattr(
                            layout,
                            "scan_bytes_per_value",
                            self.machine.word_bytes,
                        )
                    ),
                )
            )
        return tuple(specs)

    def plan_cost(
        self,
        info: QueryInfo,
        plan: AccessPlan,
        scan_fraction: float = 1.0,
    ) -> float:
        """Estimated cost of executing ``info`` with ``plan`` (Eq. 2).

        ``scan_fraction`` is the fraction of morsels surviving zone-map
        pruning (the engine measures it against the pinned snapshot once
        per planning); it discounts the scan terms only.
        """
        if plan.strategy is ExecutionStrategy.FUSED:
            cover = self._specs_for_layouts(plan.layouts, info.all_attrs)
            return self.fused_cost(info, cover, scan_fraction)
        select_specs = self._specs_for_layouts(
            plan.layouts, info.select_attrs
        )
        where_specs = self._specs_for_layouts(plan.layouts, info.where_attrs)
        return self.late_cost(
            info, select_specs, where_specs, scan_fraction
        )

    # Transformation cost (the T term of Eq. 1) -----------------------------------

    def transformation_cost(
        self, bytes_read: float, bytes_written: float
    ) -> float:
        """Estimated seconds to stitch a new layout from existing ones."""
        m = self.machine
        traffic = bytes_read + bytes_written
        io = traffic / m.io_bandwidth
        cpu = (traffic / m.cache_line_bytes) * m.miss_penalty
        return max(io, cpu)

    def build_cost_estimate(
        self, num_rows: int, new_width: int, source_width_total: int
    ) -> float:
        """Transformation cost of a hypothetical ``new_width`` group.

        ``source_width_total`` is the summed width of the layouts that
        would be scanned to provide the attributes.
        """
        word = self.machine.word_bytes
        return self.transformation_cost(
            bytes_read=num_rows * source_width_total * word,
            bytes_written=num_rows * new_width * word,
        )
