"""The H2O core: continuous, query-driven layout & strategy adaptation.

Components map one-to-one onto the paper's architecture (Fig. 3):

- :mod:`~repro.core.monitor` + :mod:`~repro.core.affinity` — access
  statistics over a window of recent queries (two affinity matrices),
- :mod:`~repro.core.window` — the dynamic adaptation window,
- :mod:`~repro.core.history` — workload-shift detection,
- :mod:`~repro.core.cost_model` — I/O + cache-miss cost model (Eq. 2),
- :mod:`~repro.core.advisor` — candidate-layout generation by iterative
  merging, costed with workload + transformation cost (Eq. 1),
- :mod:`~repro.core.adaptation_policy` — the layout-switching policy
  (greedy-paper vs the regret-bounded guarded ledger),
- :mod:`~repro.core.layout_manager` — owns the physical layouts,
- :mod:`~repro.core.reorganizer` — offline and online (fused with query
  execution) data reorganization,
- :mod:`~repro.core.plan_cache` — the steady-state fast lane: cached
  (plan, kernel, parameter extractor) per query shape signature,
- :mod:`~repro.core.engine` — the query processor tying it together.
"""

from .adaptation_policy import (
    AdaptationPolicy,
    GuardedPolicy,
    LedgerEntry,
    SwitchRecord,
    make_policy,
)
from .affinity import AffinityMatrix
from .cost_model import CostModel, SelectivityEstimator
from .monitor import AccessPattern, Monitor
from .window import DynamicWindow
from .history import ShiftDetector
from .advisor import CandidateLayout, LayoutAdvisor
from .layout_manager import LayoutManager
from .plan_cache import CachedPlan, PlanCache
from .reorganizer import Reorganizer
from .engine import H2OEngine, QueryReport
from .system import H2OSystem, build_system

__all__ = [
    "AdaptationPolicy",
    "GuardedPolicy",
    "LedgerEntry",
    "SwitchRecord",
    "make_policy",
    "AffinityMatrix",
    "CostModel",
    "SelectivityEstimator",
    "Monitor",
    "AccessPattern",
    "DynamicWindow",
    "ShiftDetector",
    "LayoutAdvisor",
    "CandidateLayout",
    "LayoutManager",
    "PlanCache",
    "CachedPlan",
    "Reorganizer",
    "H2OEngine",
    "H2OSystem",
    "build_system",
    "QueryReport",
]
