"""Workload monitoring over a window of recent queries.

H2O "uses a dynamic window of N queries to monitor the access patterns
of the incoming queries" and keeps "statistics about attribute usage and
frequency of attributes accessed together" in two affinity matrices
(paper section 3.2).  The monitor maintains exactly that: a bounded
deque of query signatures, the two matrices updated incrementally on
entry/eviction, and pattern frequencies the advisor consumes.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, FrozenSet, List, Tuple

from ..sql.query import Query, QuerySignature
from ..storage.schema import Schema
from .affinity import AffinityMatrix


@dataclass(frozen=True)
class AccessPattern:
    """One observed clause-level access set with its frequency."""

    attrs: FrozenSet[str]
    clause: str  # "select" | "where"
    count: int


class Monitor:
    """Sliding-window access statistics."""

    def __init__(self, schema: Schema, capacity: int) -> None:
        self.schema = schema
        self.capacity = capacity
        self._window: Deque[Query] = deque()
        self.select_affinity = AffinityMatrix(schema)
        self.where_affinity = AffinityMatrix(schema)
        self._select_patterns: Counter = Counter()
        self._where_patterns: Counter = Counter()
        #: Whole-query attribute sets, maintained incrementally so that
        #: :meth:`distinct_access_sets` and :meth:`pattern_frequency` are
        #: O(distinct patterns) rather than O(window) — both run on the
        #: engine's per-query path and would otherwise dominate the
        #: steady state the plan cache is built to accelerate.
        self._access_sets: Counter = Counter()
        self._distinct_cache: "List[Tuple[FrozenSet[str], int]] | None" = None
        self.queries_seen = 0

    # Window maintenance ----------------------------------------------------

    def observe(self, query: Query) -> None:
        """Record one query; evicts the oldest beyond the capacity."""
        signature = query.signature()
        self.queries_seen += 1
        self._window.append(query)
        if signature.select_attrs:
            self.select_affinity.add(signature.select_attrs)
            self._select_patterns[signature.select_attrs] += 1
        if signature.where_attrs:
            self.where_affinity.add(signature.where_attrs)
            self._where_patterns[signature.where_attrs] += 1
        if query.attributes:
            self._access_sets[query.attributes] += 1
            self._distinct_cache = None
        while len(self._window) > self.capacity:
            self._evict()

    def _evict(self) -> None:
        evicted_query = self._window.popleft()
        evicted = evicted_query.signature()
        if evicted.select_attrs:
            self.select_affinity.remove(evicted.select_attrs)
            self._select_patterns[evicted.select_attrs] -= 1
            if self._select_patterns[evicted.select_attrs] <= 0:
                del self._select_patterns[evicted.select_attrs]
        if evicted.where_attrs:
            self.where_affinity.remove(evicted.where_attrs)
            self._where_patterns[evicted.where_attrs] -= 1
            if self._where_patterns[evicted.where_attrs] <= 0:
                del self._where_patterns[evicted.where_attrs]
        if evicted_query.attributes:
            self._access_sets[evicted_query.attributes] -= 1
            if self._access_sets[evicted_query.attributes] <= 0:
                del self._access_sets[evicted_query.attributes]
            self._distinct_cache = None

    def resize(self, capacity: int) -> None:
        """Adjust the window capacity (the dynamic-window mechanism)."""
        self.capacity = capacity
        while len(self._window) > self.capacity:
            self._evict()

    # Views for the advisor ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._window)

    @property
    def window(self) -> Tuple[Query, ...]:
        """The windowed queries, oldest first."""
        return tuple(self._window)

    def patterns(self) -> List[AccessPattern]:
        """Distinct clause-level access sets with frequencies,
        most frequent first — the advisor's initial candidate pool."""
        result: List[AccessPattern] = []
        for attrs, count in self._select_patterns.items():
            result.append(AccessPattern(attrs, "select", count))
        for attrs, count in self._where_patterns.items():
            result.append(AccessPattern(attrs, "where", count))
        result.sort(key=lambda p: (-p.count, -len(p.attrs), sorted(p.attrs)))
        return result

    def pattern_frequency(self, attrs: FrozenSet[str]) -> int:
        """How many windowed queries' full access set is ⊆ ``attrs``.

        Answered from the incrementally-maintained distinct-set counter:
        O(distinct patterns) instead of O(window size).
        """
        return sum(
            count
            for pattern, count in self._access_sets.items()
            if pattern <= attrs
        )

    def distinct_access_sets(self) -> List[Tuple[FrozenSet[str], int]]:
        """Distinct whole-query attribute sets with frequencies.

        The sorted view is cached between window mutations; the engine
        consults it several times per query (shift reference, adaptation
        snapshot) and repeated calls in the steady state are O(1).
        """
        if self._distinct_cache is None:
            self._distinct_cache = sorted(
                self._access_sets.items(),
                key=lambda item: (-item[1], sorted(item[0])),
            )
        return self._distinct_cache
