"""Workload-shift detection (paper section 3.2, "Oscillating Workloads").

"H2O detects workload shifts by comparing new queries with queries
observed in the previous query window.  It examines whether the input
query access pattern is new or if it has been observed with low
frequency.  New access patterns are an indication that there might be a
shift in the workload."

A query counts as *seen* when its attribute set overlaps some windowed
pattern strongly enough (Jaccard similarity against the best-matching
recent pattern).  When the recent fraction of unseen queries crosses the
trigger threshold, a shift is reported — once per burst, so oscillating
noise does not shrink the window repeatedly.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, FrozenSet, Iterable

from ..config import EngineConfig


def jaccard(first: FrozenSet[str], second: FrozenSet[str]) -> float:
    """Jaccard similarity of two attribute sets (1.0 for two empties)."""
    if not first and not second:
        return 1.0
    union = len(first | second)
    if union == 0:
        return 1.0
    return len(first & second) / union


def containment(query_attrs: FrozenSet[str], pattern: FrozenSet[str]) -> float:
    """Fraction of the query's attributes covered by a known pattern.

    Containment, not Jaccard: a query touching a *subset* of a known
    pattern is familiar (score 1.0) even though its Jaccard similarity
    to the wide pattern is low — narrow queries over a hot attribute
    cluster must not read as workload shifts.
    """
    if not query_attrs:
        return 1.0
    return len(query_attrs & pattern) / len(query_attrs)


class ShiftDetector:
    """Tracks how novel recent query patterns are."""

    def __init__(
        self, config: EngineConfig, recent: int = 10, warmup: int = 0
    ) -> None:
        self.config = config
        self._recent_flags: Deque[bool] = deque(maxlen=recent)
        self._in_shift = False
        self._seen = 0
        #: Queries to observe before a shift may fire — the first few
        #: queries of a fresh engine are all trivially "novel".
        self.warmup = warmup if warmup else recent

    def assess(
        self,
        attrs: FrozenSet[str],
        known_patterns: Iterable[FrozenSet[str]],
    ) -> bool:
        """Record one query's novelty; return True when a (new) shift
        is detected at this query."""
        best = 0.0
        for pattern in known_patterns:
            similarity = containment(attrs, pattern)
            if similarity > best:
                best = similarity
                if best >= self.config.shift_overlap_threshold:
                    break
        unseen = best < self.config.shift_overlap_threshold
        self._recent_flags.append(unseen)
        self._seen += 1
        fraction = (
            sum(self._recent_flags) / len(self._recent_flags)
            if self._recent_flags
            else 0.0
        )
        shifted = fraction >= self.config.shift_trigger_fraction
        if self._seen <= self.warmup:
            self._in_shift = shifted
            return False
        if shifted and not self._in_shift:
            self._in_shift = True
            return True
        if not shifted:
            self._in_shift = False
        return False

    @property
    def unseen_fraction(self) -> float:
        if not self._recent_flags:
            return 0.0
        return sum(self._recent_flags) / len(self._recent_flags)
