"""The Data Layout Manager (paper Fig. 3).

Owns a table's physical layouts: creates new column groups through the
stitcher, keeps a creation log (who/when/how long — the layout-creation
time that Fig. 8 reports separately), tracks per-layout usage, and can
garbage-collect unused replicated groups under a memory budget.

Thread-safety: the engine invokes the mutating paths under its own
lock, but the creation log and usage counters are also read by report
threads (``describe``, benchmarks) and written by the background
adaptation scheduler's publish path — so the manager guards its own
bookkeeping with an internal lock and hands out defensive copies.
The table mutations themselves (``add_layout``/``drop_layout``) are
atomic snapshot publications, independent of this lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..config import EngineConfig
from ..storage.column_group import ColumnGroup
from ..storage.layout import Layout, LayoutKind
from ..storage.relation import Table
from ..storage.stitcher import stitch_group
from ..util.timing import Timer


@dataclass
class LayoutEvent:
    """One layout-creation record."""

    attrs: Tuple[str, ...]
    seconds: float
    bytes_read: int
    bytes_written: int
    query_index: Optional[int] = None
    mode: str = "offline"  # "offline" | "online" | "background"


class LayoutManager:
    """Creates, tracks and retires physical layouts for one table."""

    def __init__(
        self, table: Table, config: Optional[EngineConfig] = None
    ) -> None:
        self.table = table
        self.config = config or EngineConfig()
        self._log_lock = threading.Lock()
        self._creation_log: List[LayoutEvent] = []
        self._uses: Dict[int, int] = {}

    @property
    def creation_log(self) -> Tuple[LayoutEvent, ...]:
        """A consistent defensive copy of the creation records."""
        with self._log_lock:
            return tuple(self._creation_log)

    @property
    def layout_epoch(self) -> int:
        """The table's layout epoch (see :class:`Table.layout_epoch`).

        Every create/retire path of this manager goes through
        ``Table.add_layout`` / ``Table.drop_layout``, which bump the
        epoch; consumers caching layout-derived decisions (the engine's
        plan cache) validate against this counter.
        """
        return self.table.layout_epoch

    # Creation ------------------------------------------------------------------

    def build_group(
        self,
        attrs: Iterable[str],
        query_index: Optional[int] = None,
    ) -> Tuple[ColumnGroup, float]:
        """Materialize a new column group offline (stitch, then add).

        Returns the group and the creation time in seconds; the time is
        also appended to the creation log so reports can attribute it.
        """
        ordered = self.table.schema.ordered(attrs)
        existing = self.table.find_group(ordered)
        if existing is not None:
            return existing, 0.0
        sources = self.table.covering_layouts(ordered)
        full_width = len(ordered) == self.table.schema.width
        with Timer() as timer:
            group, stats = stitch_group(
                sources,
                ordered,
                self.table.schema,
                full_width=full_width,
                morsel_rows=(
                    self.config.morsel_rows if self.config.zone_maps else 0
                ),
            )
        self.table.add_layout(group)
        with self._log_lock:
            self._creation_log.append(
                LayoutEvent(
                    attrs=ordered,
                    seconds=timer.elapsed,
                    bytes_read=stats.bytes_read,
                    bytes_written=stats.bytes_written,
                    query_index=query_index,
                    mode="offline",
                )
            )
        return group, timer.elapsed

    def register_group(
        self,
        group: ColumnGroup,
        seconds: float,
        query_index: Optional[int] = None,
        mode: str = "online",
    ) -> None:
        """Adopt a group built elsewhere (the online reorganizer)."""
        self.table.add_layout(group)
        with self._log_lock:
            self._creation_log.append(
                LayoutEvent(
                    attrs=group.attrs,
                    seconds=seconds,
                    bytes_read=0,
                    bytes_written=group.nbytes,
                    query_index=query_index,
                    mode=mode,
                )
            )

    def record_transform(
        self,
        attrs: Iterable[str],
        seconds: float,
        mode: str,
        query_index: Optional[int] = None,
        bytes_written: int = 0,
    ) -> None:
        """Log a physical transform that is not a new column group.

        Used for the adaptive-clustering reorder (``mode="cluster"`` /
        ``"cluster-refine"``) and encoded-replica builds
        (``mode="encode"``), so ``creation_log`` stays the single ledger
        the oracle balances against the policy's switch count.
        """
        with self._log_lock:
            self._creation_log.append(
                LayoutEvent(
                    attrs=tuple(attrs),
                    seconds=seconds,
                    bytes_read=0,
                    bytes_written=bytes_written,
                    query_index=query_index,
                    mode=mode,
                )
            )

    # Usage tracking & retirement ---------------------------------------------------

    def record_use(self, layouts: Iterable[Layout]) -> None:
        with self._log_lock:
            for layout in layouts:
                self._uses[id(layout)] = self._uses.get(id(layout), 0) + 1

    def uses_of(self, layout: Layout) -> int:
        with self._log_lock:
            return self._uses.get(id(layout), 0)

    def creation_seconds(self) -> float:
        """Total time ever spent creating layouts (Fig. 8's dark bar)."""
        with self._log_lock:
            return sum(event.seconds for event in self._creation_log)

    def retire_cold_groups(self, max_bytes: int) -> List[Layout]:
        """Drop least-used *group* layouts until the table fits the
        budget, never breaking attribute coverage.  Returns the dropped
        layouts (empty when the budget already holds)."""
        dropped: List[Layout] = []
        candidates = [
            layout
            for layout in self.table.layouts
            if layout.kind is LayoutKind.GROUP
        ]
        with self._log_lock:
            uses = dict(self._uses)
        candidates.sort(key=lambda lay: (uses.get(id(lay), 0), -lay.nbytes))
        for layout in candidates:
            if self.table.nbytes <= max_bytes:
                break
            try:
                self.table.drop_layout(layout)
            except Exception:
                continue  # would break coverage; keep it
            dropped.append(layout)
        return dropped
