"""Interactive SQL shell over an adaptive H2O engine.

Run::

    python -m repro.shell                 # demo table (50 attrs, 100k rows)
    python -m repro.shell --table t.npz   # a table saved with save_table
    python -m repro.shell --attrs 200 --rows 500000 --seed 3

Inside the shell, any ``SELECT`` statement of the supported subset runs
against the engine.  Meta-commands:

- ``\\layouts``  — the table's current physical layouts,
- ``\\status``   — engine state (window, candidates, operator cache),
- ``\\plan SQL`` — the costed access plans for a query, without running,
- ``\\source SQL`` — the generated operator source for the best plan,
- ``\\history``  — per-query response times so far,
- ``\\help``, ``\\quit``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .config import EngineConfig
from .core.engine import H2OEngine
from .errors import H2OError
from .execution.strategies import enumerate_plans
from .sql.analyzer import analyze_query
from .sql.parser import parse_query
from .storage.generator import generate_table
from .storage.io import load_table
from .util.timing import format_seconds

HELP = """\
Enter a SELECT statement, or one of:
  \\layouts        show the table's physical layouts
  \\status         show engine adaptation state
  \\plan SQL       show costed access plans for SQL (does not execute)
  \\source SQL     show the generated operator for SQL's best plan
  \\history        show response times of the session's queries
  \\help           this message
  \\quit           exit"""

MAX_PRINTED_ROWS = 20


def _print_result(report) -> None:
    result = report.result
    print(" | ".join(result.column_names))
    for row in result.rows()[:MAX_PRINTED_ROWS]:
        print(" | ".join(f"{v:g}" if isinstance(v, float) else str(v) for v in row))
    if result.num_rows > MAX_PRINTED_ROWS:
        print(f"... ({result.num_rows} rows total)")
    extras = []
    if report.layout_created:
        extras.append(
            f"built a {len(report.layout_created)}-attribute group online"
        )
    if report.adaptation_ran:
        extras.append("adaptation phase ran")
    print(
        f"-- {format_seconds(report.seconds)} "
        f"[{report.strategy}] {' '.join(extras)}"
    )


def _show_plans(engine: H2OEngine, sql: str) -> None:
    info = analyze_query(parse_query(sql), engine.table.schema)
    plans = enumerate_plans(engine.table, info)
    costed = sorted(
        ((engine.cost_model.plan_cost(info, plan), i, plan)
         for i, plan in enumerate(plans))
    )
    for rank, (cost, _i, plan) in enumerate(costed):
        marker = "->" if rank == 0 else "  "
        print(f"{marker} est {cost * 1e3:9.3f} ms  {plan.describe()}")


def _show_source(engine: H2OEngine, sql: str) -> None:
    from .codegen.generator import operator_source

    info = analyze_query(parse_query(sql), engine.table.schema)
    plans = enumerate_plans(engine.table, info)
    _cost, _i, plan = min(
        (engine.cost_model.plan_cost(info, plan), i, plan)
        for i, plan in enumerate(plans)
    )
    print(f"# plan: {plan.describe()}")
    print(operator_source(info, plan, engine.config))


def run_shell(engine: H2OEngine, stream=None) -> None:
    """The REPL loop (``stream`` overrides stdin for tests)."""
    lines = stream if stream is not None else sys.stdin
    interactive = stream is None and sys.stdin.isatty()
    if interactive:
        print(
            f"H2O shell — table {engine.table.name!r} "
            f"({engine.table.num_rows} rows x "
            f"{engine.table.schema.width} attrs). \\help for commands."
        )
    while True:
        if interactive:
            print("h2o> ", end="", flush=True)
        line = lines.readline()
        if not line:
            break
        line = line.strip()
        if not line:
            continue
        try:
            if line in ("\\quit", "\\q", "exit"):
                break
            elif line == "\\help":
                print(HELP)
            elif line == "\\layouts":
                print(engine.table.layout_summary())
            elif line == "\\status":
                print(engine.describe())
            elif line == "\\history":
                for report in engine.reports:
                    print(
                        f"  q{report.index:3d} "
                        f"{format_seconds(report.seconds):>10s} "
                        f"[{report.strategy}] {report.query.to_sql()[:60]}"
                    )
            elif line.startswith("\\plan "):
                _show_plans(engine, line[len("\\plan "):])
            elif line.startswith("\\source "):
                _show_source(engine, line[len("\\source "):])
            elif line.startswith("\\"):
                print(f"unknown command {line.split()[0]!r}; \\help lists them")
            else:
                _print_result(engine.execute(line))
        except H2OError as exc:
            print(f"error: {exc}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.shell",
        description="Interactive SQL shell over an adaptive H2O engine.",
    )
    parser.add_argument("--table", help="path of a table saved via save_table")
    parser.add_argument("--attrs", type=int, default=50)
    parser.add_argument("--rows", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--window", type=int, default=None, help="adaptation window size"
    )
    args = parser.parse_args(argv)

    if args.table:
        table = load_table(Path(args.table))
    else:
        table = generate_table(
            "r", args.attrs, args.rows, rng=args.seed
        )
    config = EngineConfig()
    if args.window:
        config = config.with_overrides(window_size=args.window)
    run_shell(H2OEngine(table, config))
    return 0


if __name__ == "__main__":
    sys.exit(main())
