"""Very-wide-table scientific workload (the paper's motivation, §1).

"Neuro-imaging datasets used to study the structure of human brain
consist of more than 7000 attributes" — the paper motivates adaptive
layouts with exactly this class: exploratory analysis over tables far
wider than any query, where each analysis session focuses on a small,
shifting subset of attributes.

This generator models such a study: a subjects table with per-region
measurements (volume/thickness/surface-area per brain region plus
clinical covariates), analysed in *sessions*.  Each session picks a
region-of-interest set and runs a burst of correlated queries over it
(cohort filters + statistics), then the focus moves on — the drifting,
clustered access pattern H2O thrives on and static layouts cannot serve.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import WorkloadError
from ..sql.builder import QueryBuilder
from ..sql.expressions import col
from ..sql.query import Query
from ..storage.generator import PAPER_HIGH, PAPER_LOW
from ..storage.schema import Schema
from ..util.rng import RngLike, derive_rng, ensure_rng
from .microbench import threshold_for_selectivity
from .workload import TableSpec, Workload

#: Anatomical regions (measurements are generated per region x metric).
_REGIONS = (
    "frontal", "parietal", "temporal", "occipital", "insula",
    "cingulate", "hippocampus", "amygdala", "thalamus", "putamen",
    "caudate", "pallidum", "accumbens", "brainstem", "cerebellum",
    "precuneus", "cuneus", "fusiform", "lingual", "pericalcarine",
)

_METRICS = ("vol", "thick", "area", "curv", "intensity")

_COVARIATES = (
    "subject_id", "age", "sex", "education_years", "handedness",
    "scanner_id", "session_no", "icv", "diagnosis", "score_memory",
    "score_attention", "score_language",
)


def neuro_schema(extra_metrics: int = 0) -> Schema:
    """A wide subjects schema: covariates + per-(region, metric) columns.

    The default is 12 + 20x5 = 112 attributes; ``extra_metrics`` widens
    it further (e.g. 20 extra metrics → 512 attributes) toward the
    paper's 7000-attribute motivation as memory allows.
    """
    names: List[str] = list(_COVARIATES)
    metrics = list(_METRICS) + [f"m{i}" for i in range(extra_metrics)]
    for metric in metrics:
        for region in _REGIONS:
            names.append(f"{metric}_{region}")
    return Schema.from_names(names)


def neuroscience_workload(
    num_rows: int = 50_000,
    num_sessions: int = 8,
    queries_per_session: int = 12,
    regions_per_session: int = 4,
    extra_metrics: int = 0,
    rng: RngLike = None,
    table: str = "subjects",
) -> Workload:
    """Session-structured exploratory analysis over the wide table."""
    if regions_per_session > len(_REGIONS):
        raise WorkloadError(
            f"at most {len(_REGIONS)} regions per session"
        )
    schema = neuro_schema(extra_metrics)
    parent = ensure_rng(rng)
    focus_rng = derive_rng(parent, "focus")
    shape_rng = derive_rng(parent, "shape")
    metrics = list(_METRICS) + [f"m{i}" for i in range(extra_metrics)]
    order = {name: i for i, name in enumerate(schema.names)}

    queries: List[Query] = []
    for _session in range(num_sessions):
        region_idx = focus_rng.choice(
            len(_REGIONS), size=regions_per_session, replace=False
        )
        regions = [_REGIONS[i] for i in region_idx]
        metric_idx = focus_rng.choice(
            len(metrics), size=min(3, len(metrics)), replace=False
        )
        session_metrics = [metrics[i] for i in metric_idx]
        roi = sorted(
            (
                f"{metric}_{region}"
                for metric in session_metrics
                for region in regions
            ),
            key=order.__getitem__,
        )
        age_cut = threshold_for_selectivity(
            float(shape_rng.choice([0.2, 0.5])), PAPER_LOW, PAPER_HIGH
        )
        for _q in range(queries_per_session):
            builder = QueryBuilder(table)
            kind = shape_rng.random()
            take = int(shape_rng.integers(max(2, len(roi) // 2), len(roi) + 1))
            picked_idx = shape_rng.choice(len(roi), size=take, replace=False)
            picked = sorted(
                (roi[i] for i in picked_idx), key=order.__getitem__
            )
            if kind < 0.5:
                # Cohort statistics over the ROI measurements.
                for name in picked:
                    builder.select_avg(name)
                builder.select_count()
            elif kind < 0.8:
                # Per-subject composite score across the ROI.
                expr = col(picked[0])
                for name in picked[1:]:
                    expr = expr + col(name)
                builder.select_sum(expr)
            else:
                # Raw export of the ROI for offline plotting.
                builder.select_columns(picked)
            builder.where(col("age") < age_cut)
            if shape_rng.random() < 0.5:
                builder.where(col("diagnosis") < 0)
            queries.append(builder.build())

    return Workload(
        name="neuroscience",
        table_spec=TableSpec(
            table,
            schema.width,
            num_rows,
            initial_layout="row",
            schema=schema,
        ),
        queries=queries,
        description=(
            f"{num_sessions} analysis sessions x {queries_per_session} "
            f"queries over a {schema.width}-attribute subjects table "
            f"({regions_per_session} regions of interest per session)"
        ),
    )
