"""The adversarial scenario pack: workloads built to punish greedy
adaptation.

Each scenario is a deterministic, seed-driven generator of one table
plus an operation stream (queries interleaved with appends) that the
differential oracle (repro/testkit/oracle.py), the service stress suite
(tests/test_service_stress.py) and the policy benchmark
(benchmarks/bench_scenarios.py) can all replay bit-identically:

- **periodic-shift** — the workload alternates between two query
  classes every phase ("Automatic Clustering in Hyrise"'s shifting
  tenants): greedy re-optimizes for each phase, paying reorganizations
  the next phase abandons;
- **ping-pong** — the hot attribute trio *rotates* every (short)
  phase, so each phase proposes a brand-new column group: the
  worst case for up-front investment;
- **flash-crowd** — uniform background traffic, then one hot-key
  shape bursts to dominance and vanishes again: the burst must not
  buy layouts the steady state never uses;
- **mixed-olap-point** — wide aggregations interleaved with point
  lookups, the classic hybrid tension: neither class alone justifies
  the other's layout;
- **trickle-append** — a recurring analytical workload with small
  appends between rounds: every append bumps the epoch and re-opens
  every cached decision, so adaptation must stay profitable under
  constant low-grade invalidation.

Values are integers in ``[-VALUE_BOUND, VALUE_BOUND]`` (the testkit's
exactness discipline: float64 arithmetic on sums of such values is
exact, so results compare bit-for-bit across engines and policies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..storage.generator import generate_table
from ..storage.relation import Table

#: Largest absolute attribute value generated (exact float64 discipline,
#: mirrors repro/testkit/generate.py).
VALUE_BOUND = 1000

#: One operation of a scenario stream:
#: ``("query", sql)`` or ``("append", batch_seed, num_rows)``.
Op = Tuple[object, ...]


@dataclass(frozen=True)
class Scenario:
    """A deterministic adversarial workload over one generated table."""

    name: str
    seed: int
    num_attrs: int
    num_rows: int
    ops: Tuple[Op, ...]
    description: str = ""
    table_name: str = "s"

    def make_table(self) -> Table:
        """A fresh instance of the scenario's table (deterministic)."""
        return generate_table(
            self.table_name,
            self.num_attrs,
            self.num_rows,
            rng=self.seed,
            low=-VALUE_BOUND,
            high=VALUE_BOUND,
        )

    def append_batch(self, batch_seed: int, rows: int) -> Dict[str, np.ndarray]:
        """The deterministic rows of one ``("append", ...)`` op."""
        rng = np.random.default_rng(batch_seed)
        names = [f"a{i + 1}" for i in range(self.num_attrs)]
        return {
            name: rng.integers(
                -VALUE_BOUND, VALUE_BOUND + 1, size=rows, dtype=np.int64
            )
            for name in names
        }

    # Convenience views ----------------------------------------------------

    @property
    def queries(self) -> List[str]:
        return [op[1] for op in self.ops if op[0] == "query"]

    @property
    def append_count(self) -> int:
        return sum(1 for op in self.ops if op[0] == "append")

    def describe(self) -> str:
        return (
            f"{self.name} (seed {self.seed}): {len(self.queries)} queries"
            f" + {self.append_count} appends over "
            f"{self.num_attrs}x{self.num_rows} table — {self.description}"
        )


def _literal(rng: np.random.Generator) -> int:
    """A predicate literal inside the generated value range."""
    return int(rng.integers(-VALUE_BOUND // 2, VALUE_BOUND // 2 + 1))


def _phase_queries(
    rng: np.random.Generator,
    attrs: Tuple[str, ...],
    count: int,
    table: str,
) -> List[str]:
    """``count`` queries cycling 3 recurring shapes over one hot set.

    Recurrence is the point: the monitor must see the same access
    pattern often enough for the advisor to propose the group covering
    ``attrs``.
    """
    a, b, c = attrs[0], attrs[1], attrs[2 % len(attrs)]
    queries = []
    for i in range(count):
        shape = i % 3
        lit = _literal(rng)
        if shape == 0:
            queries.append(f"SELECT {a}, {b} FROM {table} WHERE {c} > {lit}")
        elif shape == 1:
            queries.append(
                f"SELECT sum({a} + {b}) FROM {table} WHERE {c} < {lit}"
            )
        else:
            queries.append(
                f"SELECT {a}, {c} FROM {table} WHERE {b} >= {lit}"
            )
    return queries


def periodic_shift(
    seed: int = 0,
    *,
    phases: int = 6,
    phase_len: int = 18,
    num_attrs: int = 10,
    num_rows: int = 4096,
) -> Scenario:
    """Alternate between two query classes every ``phase_len`` queries.

    The hot trio also *drifts* by one attribute on every revisit of a
    class (region A: the low attributes, region B: the high ones), so
    each phase proposes a fresh column group — a returning class never
    finds its old layout still a perfect fit, exactly the pattern that
    makes greedy re-pay a reorganization per phase.
    """
    rng = np.random.default_rng(seed * 7919 + 11)
    names = [f"a{i + 1}" for i in range(num_attrs)]
    half = num_attrs // 2
    regions = (names[:half], names[half:])
    ops: List[Op] = []
    for p in range(phases):
        region = regions[p % 2]
        drift = p // 2  # advances once per revisit of this class
        hot = tuple(
            region[(drift + k) % len(region)] for k in range(3)
        )
        for sql in _phase_queries(rng, hot, phase_len, "s"):
            ops.append(("query", sql))
    return Scenario(
        name="periodic-shift",
        seed=seed,
        num_attrs=num_attrs,
        num_rows=num_rows,
        ops=tuple(ops),
        description="two query classes alternating per phase",
    )


def ping_pong(
    seed: int = 0,
    *,
    phases: int = 8,
    phase_len: int = 12,
    num_attrs: int = 12,
    num_rows: int = 4096,
) -> Scenario:
    """The hot attribute trio rotates every phase — each phase proposes
    a brand-new column group, the worst case for greedy investment."""
    rng = np.random.default_rng(seed * 7919 + 23)
    names = [f"a{i + 1}" for i in range(num_attrs)]
    ops: List[Op] = []
    for p in range(phases):
        hot = tuple(
            names[(p + k * 2) % num_attrs] for k in range(3)
        )
        for sql in _phase_queries(rng, hot, phase_len, "s"):
            ops.append(("query", sql))
    return Scenario(
        name="ping-pong",
        seed=seed,
        num_attrs=num_attrs,
        num_rows=num_rows,
        ops=tuple(ops),
        description="hot attribute trio rotating every short phase",
    )


def flash_crowd(
    seed: int = 0,
    *,
    background: int = 30,
    burst: int = 40,
    cooldown: int = 30,
    num_attrs: int = 10,
    num_rows: int = 4096,
) -> Scenario:
    """Uniform background traffic, one hot-key shape bursts, then
    vanishes — the burst must not buy layouts the steady state never
    uses."""
    rng = np.random.default_rng(seed * 7919 + 37)
    names = [f"a{i + 1}" for i in range(num_attrs)]
    ops: List[Op] = []

    def background_query() -> str:
        picked = rng.choice(len(names), size=3, replace=False)
        a, b, c = (names[int(i)] for i in picked)
        return f"SELECT {a}, {b} FROM s WHERE {c} > {_literal(rng)}"

    for _ in range(background):
        ops.append(("query", background_query()))
    # The flash crowd: one shape, hot-key literals from a narrow band.
    for i in range(burst):
        key = int(rng.integers(0, 40)) - 20
        if i % 2 == 0:
            sql = f"SELECT a1, a2 FROM s WHERE a3 > {key}"
        else:
            sql = f"SELECT sum(a1 + a2) FROM s WHERE a3 < {key}"
        ops.append(("query", sql))
    for _ in range(cooldown):
        ops.append(("query", background_query()))
    return Scenario(
        name="flash-crowd",
        seed=seed,
        num_attrs=num_attrs,
        num_rows=num_rows,
        ops=tuple(ops),
        description="hot-key burst inside uniform background traffic",
    )


def mixed_olap_point(
    seed: int = 0,
    *,
    rounds: int = 40,
    num_attrs: int = 12,
    num_rows: int = 4096,
) -> Scenario:
    """Wide aggregations interleaved with point lookups — neither class
    alone justifies the other's layout."""
    rng = np.random.default_rng(seed * 7919 + 53)
    names = [f"a{i + 1}" for i in range(num_attrs)]
    ops: List[Op] = []
    for i in range(rounds):
        wide = names[0:4] if i % 2 == 0 else names[2:6]
        expr = " + ".join(wide)
        ops.append(
            (
                "query",
                f"SELECT sum({expr}) FROM s WHERE {names[6]} > "
                f"{_literal(rng)}",
            )
        )
        ops.append(
            (
                "query",
                f"SELECT {names[8]} FROM s WHERE {names[9]} = "
                f"{_literal(rng)}",
            )
        )
        if i % 5 == 4:
            ops.append(
                (
                    "query",
                    f"SELECT {names[8]}, {names[10]} FROM s WHERE "
                    f"{names[9]} > {_literal(rng)}",
                )
            )
    return Scenario(
        name="mixed-olap-point",
        seed=seed,
        num_attrs=num_attrs,
        num_rows=num_rows,
        ops=tuple(ops),
        description="wide aggregations interleaved with point lookups",
    )


def trickle_append(
    seed: int = 0,
    *,
    rounds: int = 8,
    queries_per_round: int = 12,
    append_rows: int = 64,
    num_attrs: int = 8,
    num_rows: int = 4096,
) -> Scenario:
    """A recurring analytical workload with a small append between
    rounds: every append bumps the layout epoch and re-opens every
    cached decision."""
    rng = np.random.default_rng(seed * 7919 + 71)
    names = [f"a{i + 1}" for i in range(num_attrs)]
    hot = tuple(names[0:3])
    ops: List[Op] = []
    for r in range(rounds):
        for sql in _phase_queries(rng, hot, queries_per_round, "s"):
            ops.append(("query", sql))
        if r < rounds - 1:
            # Batch seed is a pure function of (seed, round): the same
            # rows regardless of who replays, engine or oracle.
            ops.append(("append", seed * 100003 + r * 17 + 5, append_rows))
    return Scenario(
        name="trickle-append",
        seed=seed,
        num_attrs=num_attrs,
        num_rows=num_rows,
        ops=tuple(ops),
        description="recurring analytics under steady small appends",
    )


#: The registry every replayer iterates (insertion order is the
#: canonical replay order).
SCENARIOS: Dict[str, Callable[..., Scenario]] = {
    "periodic-shift": periodic_shift,
    "ping-pong": ping_pong,
    "flash-crowd": flash_crowd,
    "mixed-olap-point": mixed_olap_point,
    "trickle-append": trickle_append,
}


def build_scenario(name: str, seed: int = 0, **kwargs: object) -> Scenario:
    """Instantiate a registered scenario by name."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})")
    return factory(seed, **kwargs)
