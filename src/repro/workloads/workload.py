"""Workload containers: a table specification plus a query sequence."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..sql.query import Query
from ..storage.generator import generate_table
from ..storage.relation import Table
from ..storage.schema import Schema
from ..util.rng import RngLike


@dataclass(frozen=True)
class TableSpec:
    """How to build a workload's input relation."""

    name: str
    num_attrs: int
    num_rows: int
    initial_layout: str = "column"
    schema: Optional[Schema] = None

    def make_table(self, rng: RngLike = None) -> Table:
        """Materialize a fresh table for this spec (deterministic)."""
        return generate_table(
            self.name,
            self.num_attrs,
            self.num_rows,
            rng=rng,
            initial_layout=self.initial_layout,
            schema=self.schema,
        )


@dataclass
class Workload:
    """A named query sequence over one table spec."""

    name: str
    table_spec: TableSpec
    queries: List[Query] = field(default_factory=list)
    description: str = ""

    def __len__(self) -> int:
        return len(self.queries)

    def make_table(self, rng: RngLike = None) -> Table:
        return self.table_spec.make_table(rng)

    # Workload statistics (used in reports and tests) --------------------------

    def attribute_footprint(self) -> Tuple[int, int]:
        """(distinct attributes touched, min over queries, )"""
        touched = set()
        for query in self.queries:
            touched |= query.attributes
        return len(touched), self.table_spec.num_attrs

    def pattern_histogram(self) -> List[Tuple[frozenset, int]]:
        """Distinct whole-query access sets with frequencies."""
        counter: Counter = Counter(q.attributes for q in self.queries)
        return sorted(counter.items(), key=lambda item: -item[1])

    def mean_attrs_per_query(self) -> float:
        if not self.queries:
            return 0.0
        return sum(len(q.attributes) for q in self.queries) / len(self.queries)
