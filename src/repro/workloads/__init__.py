"""Workload generators for the paper's evaluation (section 4).

- :mod:`~repro.workloads.microbench` — the three query templates of
  section 4.2.1 (projection / aggregation / arithmetic expression) with
  controlled projectivity and selectivity, used by Figs. 1, 2, 10–14;
- :mod:`~repro.workloads.sequences` — the adaptive query sequences of
  section 4.1 (Fig. 7 / Table 1) and the workload-shift sequence of
  Fig. 9;
- :mod:`~repro.workloads.skyserver` — a synthetic surrogate of the SDSS
  SkyServer "PhotoObjAll" workload used by Fig. 8 (see DESIGN.md for
  the substitution rationale);
- :mod:`~repro.workloads.scenarios` — the adversarial scenario pack
  (periodic shift, ping-pong, flash crowd, mixed OLAP/point, trickle
  append) replayed by the oracle, the stress suite and
  benchmarks/bench_scenarios.py (see docs/adaptation.md).
"""

from .workload import Workload, TableSpec
from .microbench import (
    aggregation_query,
    arithmetic_query,
    projection_query,
    projectivity_sweep,
    selectivity_sweep,
    threshold_for_selectivity,
)
from .scenarios import SCENARIOS, Scenario, build_scenario
from .sequences import fig7_sequence, fig9_sequence
from .skyserver import skyserver_workload
from .neuroscience import neuro_schema, neuroscience_workload

__all__ = [
    "Workload",
    "TableSpec",
    "projection_query",
    "aggregation_query",
    "arithmetic_query",
    "projectivity_sweep",
    "selectivity_sweep",
    "threshold_for_selectivity",
    "SCENARIOS",
    "Scenario",
    "build_scenario",
    "fig7_sequence",
    "fig9_sequence",
    "skyserver_workload",
    "neuro_schema",
    "neuroscience_workload",
]
