"""Synthetic SkyServer (SDSS) surrogate workload (paper Fig. 8).

The paper evaluates H2O against the AutoPart offline tool on a subset of
SDSS's "PhotoObjAll" table and 250 SkyServer queries.  The real table
and query log are not redistributable here, so this module synthesizes
a surrogate that preserves the properties the experiment depends on
(see DESIGN.md):

- a wide table whose attribute names follow PhotoObjAll's structure
  (per-band photometry ``psfMag_u..z``, ``modelMag_*``, ``petroRad_*``,
  astrometry, flags, ...),
- queries drawn from a small number of *template clusters* with a
  Zipf-skewed frequency distribution — SkyServer traffic is dominated
  by a few hot templates (photometric color cuts, cone-search
  projections) with a long exploratory tail,
- cluster attribute sets that overlap partially, so no single static
  partitioning serves them all — the headroom per-query adaptation
  exploits.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import WorkloadError
from ..sql.builder import QueryBuilder
from ..sql.expressions import col
from ..sql.query import Query
from ..storage.generator import PAPER_HIGH, PAPER_LOW
from ..storage.schema import Schema
from ..util.rng import RngLike, derive_rng, ensure_rng
from .microbench import threshold_for_selectivity
from .workload import TableSpec, Workload

_BANDS = ("u", "g", "r", "i", "z")

#: PhotoObjAll-style attribute families (name templates per band).
_PER_BAND_FAMILIES = (
    "psfMag_{b}",
    "psfMagErr_{b}",
    "modelMag_{b}",
    "modelMagErr_{b}",
    "petroMag_{b}",
    "petroRad_{b}",
    "petroR50_{b}",
    "extinction_{b}",
    "dered_{b}",
    "fiberMag_{b}",
    "expRad_{b}",
    "deVRad_{b}",
    "fracDeV_{b}",
    "flags_{b}",
    "sky_{b}",
    "skyErr_{b}",
    "psffwhm_{b}",
    "airmass_{b}",
    "nProf_{b}",
    "lnLExp_{b}",
)

_SCALAR_ATTRS = (
    "objID",
    "run",
    "rerun",
    "camcol",
    "field",
    "obj",
    "mode",
    "nChild",
    "objtype",
    "clean",
    "probPSF",
    "insideMask",
    "flags",
    "rowc",
    "colc",
    "ra",
    "dec",
    "raErr",
    "decErr",
    "b_gal",
    "l_gal",
    "offsetRa",
    "offsetDec",
    "mjd",
    "specObjID",
    "parentID",
    "fieldID",
    "status",
)


def photoobj_schema() -> Schema:
    """A 128-attribute PhotoObjAll-style schema."""
    names: List[str] = list(_SCALAR_ATTRS)
    for family in _PER_BAND_FAMILIES:
        for band in _BANDS:
            names.append(family.format(b=band))
    return Schema.from_names(names)


def _cluster_definitions(schema: Schema) -> List[List[str]]:
    """The template clusters' attribute sets (overlapping on purpose)."""

    def per_band(*families: str, bands: Sequence[str] = _BANDS) -> List[str]:
        return [f.format(b=b) for f in families for b in bands]

    clusters = [
        # 1. Photometric colour cuts: the SkyServer workhorse.
        per_band("psfMag_{b}", "psfMagErr_{b}", "extinction_{b}")
        + ["objtype", "clean"],
        # 2. Cone-search projections around a position.
        ["ra", "dec", "raErr", "decErr", "objID", "run", "field", "mode"]
        + per_band("modelMag_{b}", bands=("g", "r", "i")),
        # 3. Galaxy morphology studies.
        per_band("petroMag_{b}", "petroRad_{b}", "petroR50_{b}", "fracDeV_{b}")
        + ["objtype"],
        # 4. De-reddened magnitudes + extinction.
        per_band("dered_{b}", "extinction_{b}") + ["ra", "dec"],
        # 5. Quality/flags screening.
        ["flags", "clean", "insideMask", "status", "probPSF", "nChild"]
        + per_band("flags_{b}", bands=("g", "r")),
        # 6. Imaging-condition diagnostics.
        per_band("sky_{b}", "skyErr_{b}", "psffwhm_{b}", "airmass_{b}",
                 bands=("u", "g", "r")),
        # 7. Fiber targeting.
        per_band("fiberMag_{b}") + ["ra", "dec", "mjd", "specObjID"],
        # 8. Profile fitting (long tail).
        per_band("expRad_{b}", "deVRad_{b}", "lnLExp_{b}", "nProf_{b}",
                 bands=("r", "i")),
    ]
    known = set(schema.names)
    for cluster in clusters:
        missing = [a for a in cluster if a not in known]
        if missing:
            raise WorkloadError(f"cluster references unknown attrs: {missing}")
    return clusters


def _zipf_weights(n: int, exponent: float = 1.1) -> List[float]:
    raw = [1.0 / (rank + 1) ** exponent for rank in range(n)]
    total = sum(raw)
    return [w / total for w in raw]


def skyserver_workload(
    num_rows: int = 100_000,
    num_queries: int = 250,
    rng: RngLike = None,
    table: str = "photoobjall",
) -> Workload:
    """The Fig. 8 surrogate: 250 clustered SkyServer-style queries."""
    parent = ensure_rng(rng)
    pick_rng = derive_rng(parent, "cluster-picks")
    shape_rng = derive_rng(parent, "query-shapes")
    schema = photoobj_schema()
    clusters = _cluster_definitions(schema)
    weights = _zipf_weights(len(clusters))
    order = {name: i for i, name in enumerate(schema.names)}

    # SkyServer traffic is template-driven: each cluster has a few fixed
    # query *shapes* (column subsets); what varies per query is mostly
    # the constants.  Derive 3 deterministic variants per cluster.
    variants: List[List[List[str]]] = []
    for cluster in clusters:
        cluster_variants = []
        for variant_index in range(3):
            width = max(3, len(cluster) - 4 * variant_index)
            chosen_idx = shape_rng.choice(
                len(cluster), size=min(width, len(cluster)), replace=False
            )
            cluster_variants.append(
                sorted(
                    (cluster[i] for i in chosen_idx),
                    key=order.__getitem__,
                )
            )
        variants.append(cluster_variants)

    queries: List[Query] = []
    for _ in range(num_queries):
        cluster_index = int(pick_rng.choice(len(clusters), p=weights))
        cluster = clusters[cluster_index]
        attrs = list(variants[cluster_index][int(pick_rng.integers(3))])
        # Real SkyServer queries jitter around their template: users add
        # or drop a column or two.  This long tail is what defeats a
        # single offline partitioning.
        extras = int(pick_rng.integers(0, 3))
        if extras:
            candidates = [a for a in cluster if a not in attrs]
            if candidates:
                take = min(extras, len(candidates))
                picked = pick_rng.choice(
                    len(candidates), size=take, replace=False
                )
                attrs.extend(candidates[i] for i in picked)
        if len(attrs) > 3 and pick_rng.random() < 0.3:
            attrs.pop(int(pick_rng.integers(len(attrs))))
        attrs = sorted(set(attrs), key=order.__getitem__)
        builder = QueryBuilder(table)
        aggregate = pick_rng.random() < 0.5
        if aggregate:
            for name in attrs[:-1] or attrs:
                builder.select_max(name)
        else:
            builder.select_columns(attrs[:-1] or attrs)
        if len(attrs) > 1:
            selectivity = float(pick_rng.choice([0.01, 0.1, 0.3]))
            threshold = threshold_for_selectivity(
                selectivity, PAPER_LOW, PAPER_HIGH
            )
            builder.where(col(attrs[-1]) < threshold)
        queries.append(builder.build())

    return Workload(
        name="skyserver",
        table_spec=TableSpec(
            table,
            schema.width,
            num_rows,
            initial_layout="row",
            schema=schema,
        ),
        queries=queries,
        description=(
            f"{num_queries} queries over a {schema.width}-attribute "
            f"PhotoObjAll-style table, {len(clusters)} Zipf-weighted "
            "template clusters"
        ),
    )
