"""The micro-benchmark query templates (paper section 4.2.1).

Three templates over a wide uniform relation:

i.   ``SELECT a, b, ... FROM R [WHERE <predicates>]``       (projection)
ii.  ``SELECT max(a), max(b), ... FROM R [WHERE ...]``      (aggregation)
iii. ``SELECT a + b + ... FROM R [WHERE ...]``              (arithmetic)

Predicate thresholds are computed analytically from the generator's
uniform value range so a requested selectivity is hit exactly in
expectation; multi-conjunct predicates split the target selectivity
evenly across conjuncts (the paper "generates the filter conditions so
as the selectivity remains the same for all queries").
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..errors import WorkloadError
from ..sql.builder import QueryBuilder
from ..sql.expressions import ColumnRef, Expr, col
from ..sql.query import Query
from ..storage.generator import PAPER_HIGH, PAPER_LOW
from ..util.rng import RngLike, ensure_rng


def threshold_for_selectivity(
    selectivity: float,
    low: int = PAPER_LOW,
    high: int = PAPER_HIGH,
) -> int:
    """Value ``v`` such that ``attr < v`` keeps ``selectivity`` of a
    uniform [low, high) attribute."""
    if not 0.0 <= selectivity <= 1.0:
        raise WorkloadError(f"selectivity must be in [0, 1]: {selectivity}")
    return int(low + selectivity * (high - low))


def _where_for(
    builder: QueryBuilder,
    attrs: Sequence[str],
    selectivity: Optional[float],
    low: int,
    high: int,
) -> QueryBuilder:
    """AND one ``attr < v`` conjunct per attribute, splitting the target
    selectivity evenly (per-conjunct p = s^(1/k))."""
    if selectivity is None or not attrs:
        return builder
    per_conjunct = selectivity ** (1.0 / len(attrs))
    threshold = threshold_for_selectivity(per_conjunct, low, high)
    for name in attrs:
        builder.where(col(name) < threshold)
    return builder


def projection_query(
    attrs: Sequence[str],
    where_attrs: Sequence[str] = (),
    selectivity: Optional[float] = None,
    table: str = "r",
    low: int = PAPER_LOW,
    high: int = PAPER_HIGH,
) -> Query:
    """Template i: project ``attrs``, optionally filtered."""
    if not attrs:
        raise WorkloadError("projection needs at least one attribute")
    builder = QueryBuilder(table).select_columns(attrs)
    return _where_for(builder, where_attrs, selectivity, low, high).build()


def aggregation_query(
    attrs: Sequence[str],
    where_attrs: Sequence[str] = (),
    selectivity: Optional[float] = None,
    func: str = "max",
    table: str = "r",
    low: int = PAPER_LOW,
    high: int = PAPER_HIGH,
) -> Query:
    """Template ii: one aggregate per attribute, optionally filtered."""
    if not attrs:
        raise WorkloadError("aggregation needs at least one attribute")
    builder = QueryBuilder(table)
    add = {
        "max": builder.select_max,
        "min": builder.select_min,
        "sum": builder.select_sum,
        "avg": builder.select_avg,
    }.get(func)
    if add is None:
        raise WorkloadError(f"unsupported aggregate function {func!r}")
    for name in attrs:
        add(name)
    return _where_for(builder, where_attrs, selectivity, low, high).build()


def arithmetic_query(
    attrs: Sequence[str],
    where_attrs: Sequence[str] = (),
    selectivity: Optional[float] = None,
    aggregate: bool = True,
    table: str = "r",
    low: int = PAPER_LOW,
    high: int = PAPER_HIGH,
) -> Query:
    """Template iii: ``a + b + ...`` — the paper computes the expression
    per qualifying tuple; ``aggregate=True`` wraps it in ``sum()`` to
    keep result shipping out of the measurement (as the paper's
    aggregations do)."""
    if not attrs:
        raise WorkloadError("arithmetic expression needs attributes")
    expr: Expr = ColumnRef(attrs[0])
    for name in attrs[1:]:
        expr = expr + col(name)
    builder = QueryBuilder(table)
    if aggregate:
        builder.select_sum(expr)
    else:
        builder.select(expr)
    return _where_for(builder, where_attrs, selectivity, low, high).build()


QUERY_TEMPLATES = {
    "projection": projection_query,
    "aggregation": aggregation_query,
    "arithmetic": arithmetic_query,
}


def _pick_attrs(
    num_attrs: int, count: int, rng: RngLike, prefix: str = "a"
) -> List[str]:
    generator = ensure_rng(rng)
    if count > num_attrs:
        raise WorkloadError(
            f"cannot pick {count} of {num_attrs} attributes"
        )
    chosen = generator.choice(num_attrs, size=count, replace=False)
    return [f"{prefix}{i + 1}" for i in sorted(chosen)]


def projectivity_sweep(
    num_attrs: int,
    fractions: Sequence[float],
    template: str = "aggregation",
    selectivity: Optional[float] = None,
    rng: RngLike = None,
    where_same_attrs: bool = True,
    table: str = "r",
) -> List[Query]:
    """One query per projectivity fraction (Figs. 1, 2, 10a–c).

    ``where_same_attrs`` follows the Fig. 1/2 setup: the WHERE clause
    filters on the same attributes the SELECT clause accesses.
    """
    generator = ensure_rng(rng)
    make = QUERY_TEMPLATES[template]
    queries = []
    for fraction in fractions:
        count = max(1, min(num_attrs, math.ceil(fraction * num_attrs)))
        attrs = _pick_attrs(num_attrs, count, generator)
        where_attrs = attrs if (where_same_attrs and selectivity is not None) else ()
        queries.append(
            make(
                attrs,
                where_attrs=where_attrs,
                selectivity=selectivity,
                table=table,
            )
        )
    return queries


def selectivity_sweep(
    num_attrs: int,
    attrs_accessed: int,
    selectivities: Sequence[float],
    template: str = "aggregation",
    rng: RngLike = None,
    table: str = "r",
) -> List[Query]:
    """Fixed attribute count, varying selectivity (Figs. 10d–f).

    As in the paper, one of the accessed attributes carries the
    predicate; the rest feed the SELECT clause.
    """
    generator = ensure_rng(rng)
    make = QUERY_TEMPLATES[template]
    attrs = _pick_attrs(num_attrs, attrs_accessed, generator)
    select_attrs, where_attr = attrs[:-1], attrs[-1]
    queries = []
    for selectivity in selectivities:
        queries.append(
            make(
                select_attrs,
                where_attrs=[where_attr],
                selectivity=selectivity,
                table=table,
            )
        )
    return queries
