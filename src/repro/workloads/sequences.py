"""Adaptive-workload query sequences (paper section 4.1).

``fig7_sequence`` — 100 select-project-aggregation queries over a wide
relation, each touching z ∈ [10, 30] attributes.  The paper's narrative
makes clear the sequence contains *recurring* access patterns ("5 out of
the 20 queries refer to attributes a1, a5, a8, a9, a10"), so queries are
drawn from a pool of attribute-set patterns with reuse, plus occasional
fresh patterns; the pattern pool itself drifts over the sequence so
H2O has to keep adapting.

``fig9_sequence`` — 60 arithmetic-expression queries, 5–20 attributes
each; the first 15 focus on one set of 20 attributes and the remaining
45 on a different set (the mid-sequence workload shift the dynamic
window reacts to).
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import WorkloadError
from ..sql.query import Query
from ..util.rng import RngLike, derive_rng, ensure_rng
from .microbench import aggregation_query, arithmetic_query
from .workload import TableSpec, Workload


def _attr_names(indexes: Sequence[int]) -> List[str]:
    return [f"a{i + 1}" for i in sorted(set(int(i) for i in indexes))]


def fig7_sequence(
    num_attrs: int = 150,
    num_rows: int = 100_000,
    num_queries: int = 100,
    z_low: int = 10,
    z_high: int = 30,
    num_patterns: int = 6,
    reuse_probability: float = 0.85,
    rng: RngLike = None,
    table: str = "r",
) -> Workload:
    """The Fig. 7 / Table 1 workload (scaled row count).

    Queries compute ``sum(...)`` over most of a pattern's attributes
    with a moderately selective predicate on the remaining one, so both
    SELECT- and WHERE-clause patterns recur.
    """
    if not 2 <= z_low <= z_high <= num_attrs:
        raise WorkloadError(
            f"need 2 <= z_low <= z_high <= num_attrs, got "
            f"{z_low}, {z_high}, {num_attrs}"
        )
    parent = ensure_rng(rng)
    pattern_rng = derive_rng(parent, "patterns")
    pick_rng = derive_rng(parent, "picks")

    def fresh_pattern() -> List[str]:
        z = int(pattern_rng.integers(z_low, z_high + 1))
        indexes = pattern_rng.choice(num_attrs, size=z, replace=False)
        return _attr_names(indexes)

    # A drifting pool: patterns are periodically replaced so the
    # workload keeps evolving, as in the paper's narrative.
    pool = [fresh_pattern() for _ in range(num_patterns)]
    queries: List[Query] = []
    for index in range(num_queries):
        if index and index % max(1, num_queries // 4) == 0:
            # Retire a couple of patterns; the workload drifts.
            for _ in range(max(1, num_patterns // 4)):
                pool[int(pick_rng.integers(len(pool)))] = fresh_pattern()
        if pick_rng.random() < reuse_probability:
            attrs = pool[int(pick_rng.integers(len(pool)))]
        else:
            attrs = fresh_pattern()
        # Select-project-aggregate in the Fig. 1/2 shape: the WHERE
        # clause filters on the same attributes the SELECT aggregates,
        # with the combined selectivity held at 40%.  This is the query
        # class where the layout choice matters most (paper section 2.2)
        # and hence where adaptation pays.
        queries.append(
            aggregation_query(
                attrs,
                where_attrs=attrs,
                selectivity=0.4,
                func="sum",
                table=table,
            )
        )
    return Workload(
        name="fig7",
        table_spec=TableSpec(table, num_attrs, num_rows, "column"),
        queries=queries,
        description=(
            f"{num_queries} select-project-aggregation queries, "
            f"z in [{z_low},{z_high}] of {num_attrs} attrs, "
            f"pattern pool of {num_patterns} with drift"
        ),
    )


def fig9_sequence(
    num_attrs: int = 150,
    num_rows: int = 100_000,
    focus_width: int = 20,
    first_phase: int = 15,
    num_queries: int = 60,
    attrs_low: int = 5,
    attrs_high: int = 20,
    rng: RngLike = None,
    table: str = "r",
) -> Workload:
    """The Fig. 9 workload-shift sequence (row-major start).

    Phase 1 (queries 1..first_phase) draws arithmetic-expression queries
    from one 20-attribute focus set; phase 2 (the rest) from a disjoint
    focus set — an abrupt, non-periodic shift.
    """
    if 2 * focus_width > num_attrs:
        raise WorkloadError(
            f"two disjoint focus sets of {focus_width} need "
            f"{2 * focus_width} <= {num_attrs} attributes"
        )
    parent = ensure_rng(rng)
    setup_rng = derive_rng(parent, "focus")
    pick_rng = derive_rng(parent, "picks")
    shuffled = setup_rng.permutation(num_attrs)
    focus_a = _attr_names(shuffled[:focus_width])
    focus_b = _attr_names(shuffled[focus_width : 2 * focus_width])

    queries: List[Query] = []
    for index in range(num_queries):
        focus = focus_a if index < first_phase else focus_b
        width = int(
            pick_rng.integers(attrs_low, min(attrs_high, len(focus)) + 1)
        )
        start = int(pick_rng.integers(0, len(focus) - width + 1))
        attrs = focus[start : start + width]
        queries.append(arithmetic_query(attrs, table=table))
    return Workload(
        name="fig9",
        table_spec=TableSpec(table, num_attrs, num_rows, "row"),
        queries=queries,
        description=(
            f"{num_queries} arithmetic-expression queries; shift from a "
            f"{focus_width}-attr focus set to a disjoint one after query "
            f"{first_phase}"
        ),
    )
