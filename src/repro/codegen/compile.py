"""Compilation and "linking" of generated operator source.

The paper compiles generated C++ with an external compiler into a shared
library and dynamically links it into the running engine; the Python
analog is :func:`compile` + ``exec`` into a fresh namespace.  Compilation
time is real here too and is measured by the generator so it can be
charged to the triggering query.
"""

from __future__ import annotations

import itertools
import linecache
from typing import Callable, Tuple

import numpy as np

from ..errors import CodegenError
from ..util.faultpoints import fault_point

_counter = itertools.count()


def compile_kernel(
    source: str, kernel_name: str = "kernel"
) -> Tuple[Callable, str]:
    """Compile generated ``source`` and return (function, filename).

    The source is registered with :mod:`linecache` under a synthetic
    filename so tracebacks from inside generated operators show the
    generated lines — the debuggability equivalent of keeping the
    emitted ``.cpp`` files around.
    """
    filename = f"<h2o-operator-{next(_counter)}>"
    # Injectable failure site: a compiler rejecting generated source.
    # The testkit raises CodegenError here; the executor's interpreted
    # fallback must then answer the query identically (see
    # Executor._run_generated and docs/testing.md).
    fault_point("codegen.compile", kernel_name=kernel_name)
    try:
        code = compile(source, filename, "exec")
    except SyntaxError as exc:
        raise CodegenError(
            f"generated source does not compile: {exc}\n--- source ---\n"
            f"{source}"
        ) from exc
    namespace = {"np": np}
    exec(code, namespace)  # noqa: S102 - executing our own generated code
    try:
        function = namespace[kernel_name]
    except KeyError:
        raise CodegenError(
            f"generated source defines no {kernel_name!r} function"
        ) from None
    linecache.cache[filename] = (
        len(source),
        None,
        source.splitlines(keepends=True),
        filename,
    )
    function.__h2o_source__ = source
    return function, filename
