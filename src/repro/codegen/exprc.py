"""Expression-to-source compilation.

Turns expression ASTs into straight-line numpy statements with two key
specializations a generic interpreter cannot apply:

- **parameter lifting**: literals become ``params[i]`` so one compiled
  operator serves every query that differs only in constants (the
  paper's ``val1``/``val2`` arguments in Fig. 5/6);
- **temporary reuse**: when an operand is a temporary this compiler
  created and the result dtype matches, the operation writes back into
  it (``np.add(t0, v2, out=t0)``) instead of allocating — the in-register
  accumulation of the paper's generated loops, which is exactly what the
  generic evaluator's per-node allocation does not do.

dtype propagation uses the layout dtypes known at generation time, so
the reuse decision is safe; the operator cache key includes those dtypes
and the parameter type signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import CodegenError
from ..sql.expressions import (
    Arithmetic,
    ArithmeticOp,
    BoolConnective,
    BooleanOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    Literal,
    Not,
)
from .source import SourceBuilder

_ARITH_UFUNC = {
    ArithmeticOp.ADD: "np.add",
    ArithmeticOp.SUB: "np.subtract",
    ArithmeticOp.MUL: "np.multiply",
}

_CMP_UFUNC = {
    ComparisonOp.LT: "np.less",
    ComparisonOp.LE: "np.less_equal",
    ComparisonOp.GT: "np.greater",
    ComparisonOp.GE: "np.greater_equal",
    ComparisonOp.EQ: "np.equal",
    ComparisonOp.NE: "np.not_equal",
}

_COMMUTATIVE = {ArithmeticOp.ADD, ArithmeticOp.MUL}


@dataclass(frozen=True)
class Binding:
    """How a column name is spelled in the generated source.

    ``base``/``position`` carry the provenance of a 2-D buffer column
    (``base[:, position]``) so the compiler can fuse ADD-chains over one
    buffer into a single contiguous row-wise reduction (Fig. 5's
    per-tuple ``ptr[0] + ptr[1] + ptr[2]``).
    """

    source: str
    dtype: np.dtype
    base: "str | None" = None
    position: "int | None" = None


@dataclass
class Operand:
    """A compiled sub-expression: its source spelling and type facts."""

    source: str
    dtype: np.dtype
    is_temp: bool  # a local array temporary owned by this compiler
    is_array: bool


class ParamRegistry:
    """Collects literal values into the runtime parameter vector.

    When ``expected`` is given (the canonical literal order computed by
    :func:`repro.codegen.generator.collect_literals`), every
    registration is validated against it — any divergence between the
    canonical order and a template's actual emission order is a codegen
    bug and fails loudly instead of silently binding the wrong constant.
    """

    def __init__(self, expected: "List[object] | None" = None) -> None:
        self.values: List[object] = []
        self._expected = expected

    def register(self, value: object) -> str:
        index = len(self.values)
        if self._expected is not None:
            if index >= len(self._expected):
                raise CodegenError(
                    f"template registered more literals than the query "
                    f"contains (extra: {value!r})"
                )
            want = self._expected[index]
            if want != value or type(want) is not type(value):
                raise CodegenError(
                    f"literal order mismatch at parameter {index}: "
                    f"template saw {value!r}, canonical order expects "
                    f"{want!r}"
                )
        self.values.append(value)
        return f"params[{index}]"

    @property
    def type_signature(self) -> Tuple[str, ...]:
        """Per-parameter Python type names (part of the cache key)."""
        return tuple(type(v).__name__ for v in self.values)


class ExprCompiler:
    """Emits numpy statements for value and predicate expressions.

    Parameters
    ----------
    bindings:
        Maps attribute name to its :class:`Binding` (a local variable the
        template has already assigned, e.g. a block slice or a full
        column view) with the dtype known at generation time.
    params:
        Shared registry collecting the literal parameter vector.
    fused:
        True for fused-scan templates: temporaries are reused in place
        and ADD-chains over one buffer collapse into contiguous row-wise
        reductions.  False for late-materialization templates, which —
        faithfully to the column-store execution model (paper section
        2.1) — materialize a fresh intermediate per operator.
    """

    def __init__(
        self,
        bindings: Dict[str, Binding],
        params: ParamRegistry,
        fused: bool = True,
    ) -> None:
        self._bindings = bindings
        self._params = params
        self._fused = fused

    # Value expressions -----------------------------------------------------

    def _flatten_add_chain(self, expr: Expr) -> "list | None":
        """The ColumnRef leaves of a pure-ADD tree, or None."""
        if isinstance(expr, ColumnRef):
            return [expr]
        if isinstance(expr, Arithmetic) and expr.op is ArithmeticOp.ADD:
            left = self._flatten_add_chain(expr.left)
            if left is None:
                return None
            right = self._flatten_add_chain(expr.right)
            if right is None:
                return None
            return left + right
        return None

    def _try_rowsum(self, expr: Expr, sb: SourceBuilder) -> "Operand | None":
        """Fuse ``a + b + c + ...`` over one 2-D buffer into a row-wise
        reduction — the contiguous equivalent of the paper's per-tuple
        evaluation loop (Fig. 5, line 11)."""
        if not self._fused:
            return None
        refs = self._flatten_add_chain(expr)
        if refs is None or len(refs) < 3:
            return None
        bindings = []
        for ref in refs:
            binding = self._bindings.get(ref.name)
            if binding is None or binding.base is None:
                return None
            bindings.append(binding)
        base = bindings[0].base
        if any(b.base != base for b in bindings):
            return None
        positions = sorted(b.position for b in bindings)
        temp = sb.fresh("t")
        lo, hi = positions[0], positions[-1]
        # einsum is the fastest contiguous row reduction numpy offers
        # (~3x over sum(axis=1)); int64 accumulation is exact for the
        # engine's value ranges.
        if positions == list(range(lo, hi + 1)):
            sb.line(
                f"{temp} = np.einsum('ij->i', {base}[:, {lo}:{hi + 1}])"
            )
        else:
            sb.line(
                f"{temp} = np.einsum('ij->i', "
                f"{base}.take({positions!r}, axis=1))"
            )
        dtype = np.result_type(*[b.dtype for b in bindings])
        return Operand(temp, dtype, True, True)

    def compile_value(self, expr: Expr, sb: SourceBuilder) -> Operand:
        """Emit statements computing ``expr``; return the result operand."""
        rowsum = self._try_rowsum(expr, sb)
        if rowsum is not None:
            return rowsum
        if isinstance(expr, Literal):
            dtype = np.dtype(np.int64 if isinstance(expr.value, int) else np.float64)
            return Operand(
                source=self._params.register(expr.value),
                dtype=dtype,
                is_temp=False,
                is_array=False,
            )
        if isinstance(expr, ColumnRef):
            try:
                binding = self._bindings[expr.name]
            except KeyError:
                raise CodegenError(
                    f"no binding for attribute {expr.name!r}"
                ) from None
            return Operand(
                source=binding.source,
                dtype=binding.dtype,
                is_temp=False,
                is_array=True,
            )
        if isinstance(expr, Arithmetic):
            left = self.compile_value(expr.left, sb)
            right = self.compile_value(expr.right, sb)
            return self._emit_arith(expr.op, left, right, sb)
        raise CodegenError(f"cannot compile {expr!r} as a value")

    def _emit_arith(
        self,
        op: ArithmeticOp,
        left: Operand,
        right: Operand,
        sb: SourceBuilder,
    ) -> Operand:
        ufunc = _ARITH_UFUNC[op]
        out_dtype = np.result_type(left.dtype, right.dtype)
        is_array = left.is_array or right.is_array
        if not is_array:
            # Pure scalar arithmetic folds into one expression.
            symbol = {"+": "+", "-": "-", "*": "*"}[op.value]
            return Operand(
                source=f"({left.source} {symbol} {right.source})",
                dtype=out_dtype,
                is_temp=False,
                is_array=False,
            )
        # Reuse a temporary in place when dtype-safe (the specialization
        # a fused operator applies and an operator-at-a-time column
        # pipeline, by construction, cannot — it materializes one
        # intermediate per operator).
        if self._fused:
            if left.is_temp and left.is_array and left.dtype == out_dtype:
                sb.line(
                    f"{ufunc}({left.source}, {right.source}, "
                    f"out={left.source})"
                )
                return Operand(left.source, out_dtype, True, True)
            if (
                op in _COMMUTATIVE
                and right.is_temp
                and right.is_array
                and right.dtype == out_dtype
            ):
                sb.line(
                    f"{ufunc}({left.source}, {right.source}, "
                    f"out={right.source})"
                )
                return Operand(right.source, out_dtype, True, True)
        temp = sb.fresh("t")
        sb.line(f"{temp} = {ufunc}({left.source}, {right.source})")
        return Operand(temp, out_dtype, True, True)

    # Predicates ---------------------------------------------------------------

    def compile_mask(self, expr: Expr, sb: SourceBuilder) -> str:
        """Emit statements computing a boolean mask; return its name."""
        if isinstance(expr, Comparison):
            left = self.compile_value(expr.left, sb)
            right = self.compile_value(expr.right, sb)
            mask = sb.fresh("m")
            sb.line(
                f"{mask} = {_CMP_UFUNC[expr.op]}"
                f"({left.source}, {right.source})"
            )
            return mask
        if isinstance(expr, BooleanOp):
            left_mask = self.compile_mask(expr.left, sb)
            right_mask = self.compile_mask(expr.right, sb)
            func = (
                "np.logical_and"
                if expr.op is BoolConnective.AND
                else "np.logical_or"
            )
            sb.line(f"{func}({left_mask}, {right_mask}, out={left_mask})")
            return left_mask
        if isinstance(expr, Not):
            mask = self.compile_mask(expr.child, sb)
            sb.line(f"np.logical_not({mask}, out={mask})")
            return mask
        raise CodegenError(f"cannot compile {expr!r} as a predicate")


def masked_sql(expr: Expr) -> str:
    """Render ``expr`` with every literal replaced by ``?``.

    Delegates to the canonical implementation in
    :mod:`repro.sql.signature` (shared with the engine's plan cache) so
    the operator cache and the fast lane agree on structural identity.
    """
    from ..errors import AnalysisError
    from ..sql.signature import masked_sql as _canonical_masked_sql

    try:
        return _canonical_masked_sql(expr)
    except AnalysisError as exc:
        raise CodegenError(str(exc)) from None
