"""Expression-to-source compilation.

Turns expression ASTs into straight-line numpy statements with two key
specializations a generic interpreter cannot apply:

- **parameter lifting**: literals become ``params[i]`` so one compiled
  operator serves every query that differs only in constants (the
  paper's ``val1``/``val2`` arguments in Fig. 5/6);
- **temporary reuse**: when an operand is a temporary this compiler
  created and the result dtype matches, the operation writes back into
  it (``np.add(t0, v2, out=t0)``) instead of allocating — the in-register
  accumulation of the paper's generated loops, which is exactly what the
  generic evaluator's per-node allocation does not do.

dtype propagation uses the layout dtypes known at generation time, so
the reuse decision is safe; the operator cache key includes those dtypes
and the parameter type signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import CodegenError
from ..sql.expressions import (
    Arithmetic,
    ArithmeticOp,
    BoolConnective,
    BooleanOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    Literal,
    Not,
)
from .source import SourceBuilder

_ARITH_UFUNC = {
    ArithmeticOp.ADD: "np.add",
    ArithmeticOp.SUB: "np.subtract",
    ArithmeticOp.MUL: "np.multiply",
}

_CMP_UFUNC = {
    ComparisonOp.LT: "np.less",
    ComparisonOp.LE: "np.less_equal",
    ComparisonOp.GT: "np.greater",
    ComparisonOp.GE: "np.greater_equal",
    ComparisonOp.EQ: "np.equal",
    ComparisonOp.NE: "np.not_equal",
}

_COMMUTATIVE = {ArithmeticOp.ADD, ArithmeticOp.MUL}


@dataclass(frozen=True)
class Binding:
    """How a column name is spelled in the generated source.

    ``base``/``position`` carry the provenance of a 2-D buffer column
    (``base[:, position]``) so the compiler can fuse ADD-chains over one
    buffer into a single contiguous row-wise reduction (Fig. 5's
    per-tuple ``ptr[0] + ptr[1] + ptr[2]``).

    ``encoding`` marks a binding whose ``source`` holds *codes* of an
    encoded layout rather than decoded values:

    - ``("dict", dict_source)``: codes into the sorted dictionary bound
      at ``dict_source``; comparisons against literals become code-range
      tests via ``searchsorted`` and values decode with one ``take``;
    - ``("pack", offset, max_code)``: order-preserving ``value - offset``
      codes; comparisons become clamped integer thresholds.

    ``dtype`` is always the *decoded* value dtype, so arithmetic typing
    is independent of the physical encoding.
    """

    source: str
    dtype: np.dtype
    base: "str | None" = None
    position: "int | None" = None
    encoding: "tuple | None" = None


@dataclass
class Operand:
    """A compiled sub-expression: its source spelling and type facts."""

    source: str
    dtype: np.dtype
    is_temp: bool  # a local array temporary owned by this compiler
    is_array: bool


class ParamRegistry:
    """Collects literal values into the runtime parameter vector.

    When ``expected`` is given (the canonical literal order computed by
    :func:`repro.codegen.generator.collect_literals`), every
    registration is validated against it — any divergence between the
    canonical order and a template's actual emission order is a codegen
    bug and fails loudly instead of silently binding the wrong constant.
    """

    def __init__(self, expected: "List[object] | None" = None) -> None:
        self.values: List[object] = []
        self._expected = expected

    def register(self, value: object) -> str:
        index = len(self.values)
        if self._expected is not None:
            if index >= len(self._expected):
                raise CodegenError(
                    f"template registered more literals than the query "
                    f"contains (extra: {value!r})"
                )
            want = self._expected[index]
            if want != value or type(want) is not type(value):
                raise CodegenError(
                    f"literal order mismatch at parameter {index}: "
                    f"template saw {value!r}, canonical order expects "
                    f"{want!r}"
                )
        self.values.append(value)
        return f"params[{index}]"

    @property
    def type_signature(self) -> Tuple[str, ...]:
        """Per-parameter Python type names (part of the cache key)."""
        return tuple(type(v).__name__ for v in self.values)


class ExprCompiler:
    """Emits numpy statements for value and predicate expressions.

    Parameters
    ----------
    bindings:
        Maps attribute name to its :class:`Binding` (a local variable the
        template has already assigned, e.g. a block slice or a full
        column view) with the dtype known at generation time.
    params:
        Shared registry collecting the literal parameter vector.
    fused:
        True for fused-scan templates: temporaries are reused in place
        and ADD-chains over one buffer collapse into contiguous row-wise
        reductions.  False for late-materialization templates, which —
        faithfully to the column-store execution model (paper section
        2.1) — materialize a fresh intermediate per operator.
    """

    def __init__(
        self,
        bindings: Dict[str, Binding],
        params: ParamRegistry,
        fused: bool = True,
    ) -> None:
        self._bindings = bindings
        self._params = params
        self._fused = fused
        # Decoded-temp cache: one decode per encoded binding, shared by
        # every expression that reads it.  Deliberately registered as
        # non-temporary operands so in-place arithmetic reuse can never
        # clobber a cached decode.
        self._decoded: Dict[str, str] = {}

    # Value expressions -----------------------------------------------------

    def _flatten_add_chain(self, expr: Expr) -> "list | None":
        """The ColumnRef leaves of a pure-ADD tree, or None."""
        if isinstance(expr, ColumnRef):
            return [expr]
        if isinstance(expr, Arithmetic) and expr.op is ArithmeticOp.ADD:
            left = self._flatten_add_chain(expr.left)
            if left is None:
                return None
            right = self._flatten_add_chain(expr.right)
            if right is None:
                return None
            return left + right
        return None

    def _try_rowsum(self, expr: Expr, sb: SourceBuilder) -> "Operand | None":
        """Fuse ``a + b + c + ...`` over one 2-D buffer into a row-wise
        reduction — the contiguous equivalent of the paper's per-tuple
        evaluation loop (Fig. 5, line 11)."""
        if not self._fused:
            return None
        refs = self._flatten_add_chain(expr)
        if refs is None or len(refs) < 3:
            return None
        bindings = []
        for ref in refs:
            binding = self._bindings.get(ref.name)
            if binding is None or binding.base is None:
                return None
            bindings.append(binding)
        base = bindings[0].base
        if any(b.base != base for b in bindings):
            return None
        positions = sorted(b.position for b in bindings)
        temp = sb.fresh("t")
        lo, hi = positions[0], positions[-1]
        # einsum is the fastest contiguous row reduction numpy offers
        # (~3x over sum(axis=1)); int64 accumulation is exact for the
        # engine's value ranges.
        if positions == list(range(lo, hi + 1)):
            sb.line(
                f"{temp} = np.einsum('ij->i', {base}[:, {lo}:{hi + 1}])"
            )
        else:
            sb.line(
                f"{temp} = np.einsum('ij->i', "
                f"{base}.take({positions!r}, axis=1))"
            )
        dtype = np.result_type(*[b.dtype for b in bindings])
        return Operand(temp, dtype, True, True)

    def compile_value(self, expr: Expr, sb: SourceBuilder) -> Operand:
        """Emit statements computing ``expr``; return the result operand."""
        rowsum = self._try_rowsum(expr, sb)
        if rowsum is not None:
            return rowsum
        if isinstance(expr, Literal):
            dtype = np.dtype(np.int64 if isinstance(expr.value, int) else np.float64)
            return Operand(
                source=self._params.register(expr.value),
                dtype=dtype,
                is_temp=False,
                is_array=False,
            )
        if isinstance(expr, ColumnRef):
            try:
                binding = self._bindings[expr.name]
            except KeyError:
                raise CodegenError(
                    f"no binding for attribute {expr.name!r}"
                ) from None
            if binding.encoding is not None:
                return Operand(
                    source=self._decode(binding, sb),
                    dtype=binding.dtype,
                    is_temp=False,  # cached; never mutated in place
                    is_array=True,
                )
            return Operand(
                source=binding.source,
                dtype=binding.dtype,
                is_temp=False,
                is_array=True,
            )
        if isinstance(expr, Arithmetic):
            left = self.compile_value(expr.left, sb)
            right = self.compile_value(expr.right, sb)
            return self._emit_arith(expr.op, left, right, sb)
        raise CodegenError(f"cannot compile {expr!r} as a value")

    def _emit_arith(
        self,
        op: ArithmeticOp,
        left: Operand,
        right: Operand,
        sb: SourceBuilder,
    ) -> Operand:
        ufunc = _ARITH_UFUNC[op]
        out_dtype = np.result_type(left.dtype, right.dtype)
        is_array = left.is_array or right.is_array
        if not is_array:
            # Pure scalar arithmetic folds into one expression.
            symbol = {"+": "+", "-": "-", "*": "*"}[op.value]
            return Operand(
                source=f"({left.source} {symbol} {right.source})",
                dtype=out_dtype,
                is_temp=False,
                is_array=False,
            )
        # Reuse a temporary in place when dtype-safe (the specialization
        # a fused operator applies and an operator-at-a-time column
        # pipeline, by construction, cannot — it materializes one
        # intermediate per operator).
        if self._fused:
            if left.is_temp and left.is_array and left.dtype == out_dtype:
                sb.line(
                    f"{ufunc}({left.source}, {right.source}, "
                    f"out={left.source})"
                )
                return Operand(left.source, out_dtype, True, True)
            if (
                op in _COMMUTATIVE
                and right.is_temp
                and right.is_array
                and right.dtype == out_dtype
            ):
                sb.line(
                    f"{ufunc}({left.source}, {right.source}, "
                    f"out={right.source})"
                )
                return Operand(right.source, out_dtype, True, True)
        temp = sb.fresh("t")
        sb.line(f"{temp} = {ufunc}({left.source}, {right.source})")
        return Operand(temp, out_dtype, True, True)

    # Encoded-column access -----------------------------------------------------

    def _decode(self, binding: Binding, sb: SourceBuilder) -> str:
        """Decode an encoded binding's codes into values (once)."""
        cached = self._decoded.get(binding.source)
        if cached is not None:
            return cached
        encoding = binding.encoding
        temp = sb.fresh("dv")
        if encoding[0] == "dict":
            sb.line(f"{temp} = {encoding[1]}.take({binding.source})")
        else:  # pack
            offset = encoding[1]
            sb.line(f"{temp} = {binding.source}.astype(np.int64)")
            if offset:
                sb.line(f"np.add({temp}, {offset}, out={temp})")
        self._decoded[binding.source] = temp
        return temp

    def _encoded_comparison(self, expr: Comparison):
        """(binding, op, literal) when ``expr`` is an encoded column
        compared against a literal, else None."""
        left, right, op = expr.left, expr.right, expr.op
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            left, right, op = right, left, op.flipped()
        if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
            return None
        binding = self._bindings.get(left.name)
        if binding is None or binding.encoding is None:
            return None
        return binding, op, right

    def _encoded_mask(
        self,
        binding: Binding,
        op: ComparisonOp,
        literal: Literal,
        sb: SourceBuilder,
    ) -> str:
        """Evaluate ``column OP literal`` directly in code space.

        The comparison never touches decoded values: dictionary codes
        are tested against a ``searchsorted`` code range (the dictionary
        is sorted with ``-0.0`` before ``+0.0`` and NaNs last, so the
        range semantics match numpy's comparisons bit for bit, NaN rows
        never qualifying for ``<,<=,>,>=,=``); bit-packed codes are
        tested against one clamped integer threshold.  The literal stays
        a runtime parameter either way, so operator caching by query
        shape is unaffected.
        """
        lit = self._params.register(literal.value)
        codes = binding.source
        encoding = binding.encoding
        mask = sb.fresh("m")
        if encoding[0] == "dict":
            dic = encoding[1]
            lo = sb.fresh("elo")
            hi = sb.fresh("ehi")
            sb.line(f"{lo} = np.searchsorted({dic}, {lit}, side='left')")
            sb.line(f"{hi} = np.searchsorted({dic}, {lit}, side='right')")
            if op in (ComparisonOp.EQ, ComparisonOp.NE):
                sb.line(
                    f"{mask} = ({codes} >= {lo}) & ({codes} < {hi})"
                )
                if op is ComparisonOp.NE:
                    sb.line(f"np.logical_not({mask}, out={mask})")
            elif op is ComparisonOp.LT:
                sb.line(f"{mask} = {codes} < {lo}")
            elif op is ComparisonOp.LE:
                sb.line(f"{mask} = {codes} < {hi}")
            else:  # GT / GE exclude the NaN codes at the dictionary tail
                nv = sb.fresh("env")
                sb.line(
                    f"{nv} = np.searchsorted({dic}, np.inf, side='right')"
                )
                bound = hi if op is ComparisonOp.GT else lo
                sb.line(
                    f"{mask} = ({codes} >= {bound}) & ({codes} < {nv})"
                )
            return mask
        # Bit-packed: translate the literal into code space (pv) and
        # clamp.  Every branch below mirrors numpy's semantics on the
        # decoded int64 values, including NaN/fractional/out-of-range
        # literals.
        offset, max_code = encoding[1], encoding[2]
        pv = sb.fresh("pv")
        sb.line(f"{pv} = {lit} - {offset}")
        zeros = f"np.zeros({codes}.shape, dtype=np.bool_)"
        ones = f"np.ones({codes}.shape, dtype=np.bool_)"
        if op in (ComparisonOp.EQ, ComparisonOp.NE):
            with sb.block(
                f"if {pv} != {pv} or {pv} < 0 or {pv} > {max_code}:"
            ):
                sb.line(f"{mask} = {zeros}")
            with sb.block(f"elif {pv} != int({pv}):"):
                sb.line(f"{mask} = {zeros}")
            with sb.block("else:"):
                sb.line(f"{mask} = np.equal({codes}, int({pv}))")
            if op is ComparisonOp.NE:
                sb.line(f"np.logical_not({mask}, out={mask})")
            return mask
        if op is ComparisonOp.GE:
            low_mask, high_mask = ones, zeros
            low = f"{pv} <= 0"
            high = f"{pv} > {max_code}"
            test = f"{mask} = {codes} >= int(np.ceil({pv}))"
        elif op is ComparisonOp.GT:
            low_mask, high_mask = ones, zeros
            low = f"{pv} < 0"
            high = f"{pv} >= {max_code}"
            test = f"{mask} = {codes} >= int(np.floor({pv})) + 1"
        elif op is ComparisonOp.LT:
            low_mask, high_mask = zeros, ones
            low = f"{pv} <= 0"
            high = f"{pv} > {max_code}"
            test = f"{mask} = {codes} < int(np.ceil({pv}))"
        else:  # LE
            low_mask, high_mask = zeros, ones
            low = f"{pv} < 0"
            high = f"{pv} >= {max_code}"
            test = f"{mask} = {codes} < int(np.floor({pv})) + 1"
        with sb.block(f"if {pv} != {pv}:"):
            sb.line(f"{mask} = {zeros}")  # NaN compares False everywhere
        with sb.block(f"elif {low}:"):
            sb.line(f"{mask} = {low_mask}")
        with sb.block(f"elif {high}:"):
            sb.line(f"{mask} = {high_mask}")
        with sb.block("else:"):
            sb.line(test)
        return mask

    # Predicates ---------------------------------------------------------------

    def compile_mask(self, expr: Expr, sb: SourceBuilder) -> str:
        """Emit statements computing a boolean mask; return its name."""
        if isinstance(expr, Comparison):
            encoded = self._encoded_comparison(expr)
            if encoded is not None:
                return self._encoded_mask(*encoded, sb)
            left = self.compile_value(expr.left, sb)
            right = self.compile_value(expr.right, sb)
            mask = sb.fresh("m")
            sb.line(
                f"{mask} = {_CMP_UFUNC[expr.op]}"
                f"({left.source}, {right.source})"
            )
            return mask
        if isinstance(expr, BooleanOp):
            left_mask = self.compile_mask(expr.left, sb)
            right_mask = self.compile_mask(expr.right, sb)
            func = (
                "np.logical_and"
                if expr.op is BoolConnective.AND
                else "np.logical_or"
            )
            sb.line(f"{func}({left_mask}, {right_mask}, out={left_mask})")
            return left_mask
        if isinstance(expr, Not):
            mask = self.compile_mask(expr.child, sb)
            sb.line(f"np.logical_not({mask}, out={mask})")
            return mask
        raise CodegenError(f"cannot compile {expr!r} as a predicate")


def masked_sql(expr: Expr) -> str:
    """Render ``expr`` with every literal replaced by ``?``.

    Delegates to the canonical implementation in
    :mod:`repro.sql.signature` (shared with the engine's plan cache) so
    the operator cache and the fast lane agree on structural identity.
    """
    from ..errors import AnalysisError
    from ..sql.signature import masked_sql as _canonical_masked_sql

    try:
        return _canonical_masked_sql(expr)
    except AnalysisError as exc:
        raise CodegenError(str(exc)) from None
