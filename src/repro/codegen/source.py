"""Indentation-aware source emission."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List


class SourceBuilder:
    """Accumulates Python source lines with managed indentation.

    >>> sb = SourceBuilder()
    >>> sb.line("def f(x):")
    >>> with sb.indented():
    ...     sb.line("return x + 1")
    >>> print(sb.render())
    def f(x):
        return x + 1
    """

    INDENT = "    "

    def __init__(self) -> None:
        self._lines: List[str] = []
        self._depth = 0
        self._temp_counter = 0

    def line(self, text: str = "") -> None:
        """Emit one line at the current indentation."""
        if text:
            self._lines.append(self.INDENT * self._depth + text)
        else:
            self._lines.append("")

    def lines(self, *texts: str) -> None:
        for text in texts:
            self.line(text)

    @contextmanager
    def indented(self) -> Iterator[None]:
        """Emit the body of a block one level deeper."""
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1

    @contextmanager
    def block(self, header: str) -> Iterator[None]:
        """Emit ``header`` then an indented body."""
        self.line(header)
        with self.indented():
            yield

    def fresh(self, prefix: str = "t") -> str:
        """A new unique local-variable name."""
        name = f"{prefix}{self._temp_counter}"
        self._temp_counter += 1
        return name

    def render(self) -> str:
        return "\n".join(self._lines)
