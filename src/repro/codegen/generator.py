"""Operator generation: template selection, caching, runtime wrapping.

This is the paper's Operator Generator (Fig. 3): it receives the needed
data layouts and the query's attribute/predicate structure, selects the
proper template, generates specialized source, compiles it, and injects
the compiled operator into the execution path, caching it for reuse.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..config import EngineConfig
from ..errors import CodegenError
from ..execution.result import QueryResult
from ..execution.strategies import AccessPlan, ExecutionStrategy
from ..execution.volcano import projection_dtype
from ..sql.analyzer import QueryInfo
from ..storage.layout import Layout, flatten_kernel_buffers
from .cache import CacheEntry, OperatorCache
from .compile import compile_kernel
from .exprc import ParamRegistry, masked_sql
from .templates import KERNEL_NAME, build_source


def collect_literals(info: QueryInfo) -> List[object]:
    """The canonical runtime-parameter vector for one query.

    Delegates to :func:`repro.sql.signature.query_literals` — the single
    source of truth shared with the engine's plan cache, whose order
    mirrors template emission exactly: predicate conjuncts first
    (pre-order each), then — for aggregations — the unique aggregate
    arguments in collection order followed by the output expressions
    with aggregate subtrees skipped; for projections, the output
    expressions in order.  :class:`ParamRegistry` validates templates
    against this order at generation time.
    """
    from ..sql.signature import query_literals

    return query_literals(info.query)


def _layout_signature(layouts: Sequence[Layout]) -> Tuple:
    """Hashable identity of a layout combination, order-sensitive.

    Kind and codec identity ride along: an encoded replica generates
    different source than the plain column over the same attribute (and
    a bit-packed column burns its offset/max_code into the source), so
    they must never share a cache entry.  ``encoding_signature`` covers
    exactly what the source depends on; runtime buffers (a dictionary's
    contents) stay out of the key.
    """
    return tuple(
        (
            layout.kind.value,
            layout.attrs,
            layout.data.dtype.name,
            layout.data.ndim,
            getattr(layout, "encoding_signature", lambda: None)(),
        )
        for layout in layouts
    )


def operator_key(
    info: QueryInfo, plan: AccessPlan, config: EngineConfig
) -> Hashable:
    """The operator-cache key: structural query shape × layouts × knobs."""
    masked_outputs = tuple(masked_sql(out.expr) for out in info.query.select)
    masked_where = (
        masked_sql(info.query.where) if info.query.where is not None else None
    )
    param_types = tuple(type(v).__name__ for v in collect_literals(info))
    out_dtype = (
        "agg" if info.is_aggregation else projection_dtype(info).name
    )
    return (
        masked_outputs,
        masked_where,
        plan.strategy,
        _layout_signature(plan.layouts),
        config.vector_size,
        out_dtype,
        param_types,
    )


@dataclass
class GeneratedOperator:
    """A compiled kernel bound to one query's parameter values."""

    kernel: object
    params: Tuple[object, ...]
    info: QueryInfo
    source: str
    filename: str

    def run(
        self, layouts: Sequence[Layout]
    ) -> Tuple[QueryResult, int, int]:
        """Execute against the given layouts' buffers.

        The buffers are bound late so the cached operator serves any
        table whose layout combination matches the generation signature.
        Returns ``(result, intermediate_bytes, qualifying_rows)`` —
        aggregation kernels report how many tuples passed the predicate
        (the shared ``cnt`` accumulator), which feeds the selectivity
        estimator even though the result itself is a single row.
        """
        buffers = flatten_kernel_buffers(layouts)
        payload = self.kernel(buffers, self.params)
        names = [out.name for out in self.info.query.select]
        if self.info.is_aggregation:
            values, qualifying = payload
            result = QueryResult.scalar_row(names, values)
            return result, 0, int(qualifying)
        result = QueryResult(names, payload)
        return result, 0, result.num_rows


def operator_source(
    info: QueryInfo, plan: AccessPlan, config: Optional[EngineConfig] = None
) -> str:
    """The specialized source for (query, plan) — for inspection/docs."""
    config = config or EngineConfig()
    out_dtype = (
        np.dtype(np.float64)
        if info.is_aggregation
        else projection_dtype(info)
    )
    expected = collect_literals(info)
    source, registry = _build_validated_source(
        info, plan, config, out_dtype, expected
    )
    del registry
    return source


def _build_validated_source(
    info: QueryInfo,
    plan: AccessPlan,
    config: EngineConfig,
    out_dtype: np.dtype,
    expected: List[object],
) -> Tuple[str, ParamRegistry]:
    # ``build_source`` constructs its own registry internally; rebuild
    # with validation by monkey-free injection: templates accept the
    # info/plan only, so validation happens here by re-walking.
    source, registry = build_source(
        info, plan, config.vector_size, out_dtype
    )
    if registry.values != expected or any(
        type(a) is not type(b) for a, b in zip(registry.values, expected)
    ):
        raise CodegenError(
            "template literal order diverged from canonical order: "
            f"template={registry.values!r} canonical={expected!r}"
        )
    return source, registry


def generate_operator(
    info: QueryInfo,
    plan: AccessPlan,
    config: EngineConfig,
    cache: OperatorCache,
) -> Tuple[GeneratedOperator, float, bool]:
    """Produce the operator for (query, plan), using the cache.

    Returns ``(operator, seconds, cache_hit)`` where ``seconds`` is the
    generation + compilation time actually spent (≈0 on a hit), charged
    by the engine to the running query as in the paper.
    """
    started = time.perf_counter()
    key = operator_key(info, plan, config)
    params = tuple(collect_literals(info))
    entry = cache.lookup(key)
    if entry is not None:
        elapsed = time.perf_counter() - started
        operator = GeneratedOperator(
            kernel=entry.kernel,
            params=params,
            info=info,
            source=entry.source,
            filename=entry.filename,
        )
        return operator, elapsed, True

    out_dtype = (
        np.dtype(np.float64)
        if info.is_aggregation
        else projection_dtype(info)
    )
    source, _registry = _build_validated_source(
        info, plan, config, out_dtype, list(params)
    )
    kernel, filename = compile_kernel(source, KERNEL_NAME)
    elapsed = time.perf_counter() - started
    cache.store(
        key,
        CacheEntry(
            kernel=kernel,
            source=source,
            filename=filename,
            build_seconds=elapsed,
        ),
    )
    operator = GeneratedOperator(
        kernel=kernel,
        params=params,
        info=info,
        source=source,
        filename=filename,
    )
    return operator, elapsed, False
