"""Source-code templates for the generated access operators.

Each template produces the full source of one ``kernel(bufs, params)``
function, specialized at generation time for:

- the layout combination (which buffer provides each attribute, at which
  physical column position, 1-D or 2-D),
- the execution strategy (fused scan vs. late materialization),
- the query shape (aggregation vs. projection, predicate structure,
  arithmetic pipelines).

The generated code is the Python/numpy analog of the paper's Fig. 5
(single-group fused evaluation) and Fig. 6 (two-group selection-vector
plan).  Literals are parameters; everything else — column positions,
predicate chains, accumulator layouts, even whether a fast memcpy or
axis-reduction path applies — is burned into the source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CodegenError
from ..sql.analyzer import QueryInfo
from ..sql.expressions import (
    Aggregate,
    AggregateFunc,
    Arithmetic,
    ArithmeticOp,
    ColumnRef,
    Expr,
    Literal,
)
from ..storage.layout import Layout, LayoutKind
from ..execution.strategies import AccessPlan, ExecutionStrategy
from ..execution.evaluator import collect_aggregates
from .exprc import Binding, ExprCompiler, ParamRegistry
from .source import SourceBuilder

KERNEL_NAME = "kernel"

#: Shared signature of every generated kernel.  ``lo``/``hi`` select the
#: row slice the kernel scans (defaults scan everything, so serial
#: callers are unchanged — one compiled operator serves both the serial
#: and the morsel-parallel path, sharing the operator cache).  With
#: ``partial=True`` an aggregation kernel returns its raw accumulator
#: states ``(qualifying_count, (state, ...))`` instead of finalized
#: outputs, so the morsel runner can combine per-morsel states in
#: morsel-index order; projection kernels ignore the flag (their sliced
#: output blocks concatenate in order).
KERNEL_DEF = f"def {KERNEL_NAME}(bufs, params, lo=0, hi=None, partial=False):"


@dataclass(frozen=True)
class _Provider:
    """Where one attribute lives: which buffer, at which position.

    ``buffer_index`` is the attribute's *flat* index into the kernel's
    ``bufs`` tuple — each layout contributes ``kernel_buffers()`` in
    order, so a plan of only plain layouts keeps buffer_index == layout
    index, while a dictionary layout occupies two slots (codes at
    ``buffer_index``, dictionary at ``dict_index``).

    ``dtype`` is always the *decoded* value dtype.  ``dict_index`` /
    ``pack`` carry the encoding: exactly one is set for an encoded
    provider, neither for a plain one.
    """

    buffer_index: int
    position: Optional[int]  # None for a 1-D single-column buffer
    dtype: np.dtype
    width: int = 1  # total attributes stored in the providing buffer
    dict_index: Optional[int] = None
    pack: Optional[Tuple[int, int]] = None  # (offset, max_code)

    @property
    def encoding(self) -> Optional[tuple]:
        """The :class:`~repro.codegen.exprc.Binding` encoding tag."""
        if self.dict_index is not None:
            return ("dict", f"buf{self.dict_index}")
        if self.pack is not None:
            return ("pack", self.pack[0], self.pack[1])
        return None


def _assign_providers(
    layouts: Sequence[Layout], attrs: Sequence[str]
) -> Dict[str, _Provider]:
    """Bind each attribute to its narrowest providing layout."""
    bases: List[int] = []
    base = 0
    for layout in layouts:
        bases.append(base)
        base += len(layout.kernel_buffers())
    providers: Dict[str, _Provider] = {}
    for attr in attrs:
        candidates = [
            (index, layout)
            for index, layout in enumerate(layouts)
            if attr in layout.attr_set
        ]
        if not candidates:
            raise CodegenError(f"no layout provides attribute {attr!r}")
        index, layout = min(candidates, key=lambda pair: pair[1].width)
        if layout.kind is LayoutKind.ENCODED:
            dict_index = None
            pack = None
            if layout.codec == "dict":
                dict_index = bases[index] + 1
            else:
                pack = (layout.offset, layout.max_code)
            providers[attr] = _Provider(
                bases[index],
                None,
                layout.value_dtype,
                layout.width,
                dict_index=dict_index,
                pack=pack,
            )
            continue
        # A width-1 ColumnGroup is still a 2-D buffer; dimensionality,
        # not width, decides whether a position subscript is needed.
        if layout.data.ndim == 1:
            position = None
        else:
            position = layout.index_of(attr)
        dtype = layout.data.dtype  # both concrete layouts expose .data
        providers[attr] = _Provider(
            bases[index], position, dtype, layout.width
        )
    return providers


def _used_buffers(providers: Dict[str, _Provider]) -> List[int]:
    return sorted({p.buffer_index for p in providers.values()})


def _emit_prelude(sb: SourceBuilder, providers: Dict[str, _Provider]) -> None:
    """Bind the used buffers to locals and determine the row count.

    Row buffers are bound through the kernel's ``lo:hi`` row slice
    (views, no copies; a row slice of a C-contiguous 2-D buffer stays
    C-contiguous).  With the default ``lo=0, hi=None`` the slice is the
    whole buffer, so the serial path pays nothing.  Side buffers (a
    dictionary) are row-independent and bound whole.
    """
    used = _used_buffers(providers)
    for index in used:
        sb.line(f"buf{index} = bufs[{index}][lo:hi]")
    side = sorted(
        {
            p.dict_index
            for p in providers.values()
            if p.dict_index is not None
        }
    )
    for index in side:
        sb.line(f"buf{index} = bufs[{index}]")
    first = used[0]
    sb.line(f"n = buf{first}.shape[0]")


def _slice_source(provider: _Provider, rows: str) -> str:
    """Source expression slicing one attribute for a row range or ':'"""
    buf = f"buf{provider.buffer_index}"
    if provider.position is None:
        return buf if rows == ":" else f"{buf}[{rows}]"
    if rows == ":":
        return f"{buf}[:, {provider.position}]"
    return f"{buf}[{rows}, {provider.position}]"


# --- Aggregate accumulation -------------------------------------------------


@dataclass
class _AggSlot:
    """Generation-time bookkeeping for one aggregate call."""

    index: int
    agg: Aggregate

    @property
    def func(self) -> AggregateFunc:
        return self.agg.func


def _emit_agg_init(sb: SourceBuilder, slots: Sequence[_AggSlot]) -> None:
    sb.line("cnt = 0")
    _emit_agg_init_slots(sb, slots)


def _emit_agg_init_slots(
    sb: SourceBuilder, slots: Sequence[_AggSlot]
) -> None:
    for slot in slots:
        if slot.func in (AggregateFunc.SUM, AggregateFunc.AVG):
            sb.line(f"acc_s{slot.index} = 0.0")
        elif slot.func is AggregateFunc.MIN:
            sb.line(f"acc_m{slot.index} = None")
        elif slot.func is AggregateFunc.MAX:
            sb.line(f"acc_x{slot.index} = None")


def _emit_agg_update(
    sb: SourceBuilder,
    slot: _AggSlot,
    compiler: ExprCompiler,
    count_var: str,
) -> None:
    """Fold one batch of qualifying values into the slot's accumulator."""
    if slot.func is AggregateFunc.COUNT:
        return  # the shared cnt covers COUNT (no NULLs in this engine)
    operand = compiler.compile_value(slot.agg.arg, sb)
    if slot.func in (AggregateFunc.SUM, AggregateFunc.AVG):
        if operand.is_array:
            sb.line(
                f"acc_s{slot.index} += "
                f"float({operand.source}.sum(dtype=np.float64))"
            )
        else:
            sb.line(
                f"acc_s{slot.index} += float({operand.source}) * {count_var}"
            )
    elif slot.func is AggregateFunc.MIN:
        value = (
            f"float({operand.source}.min())"
            if operand.is_array
            else f"float({operand.source})"
        )
        sb.line(f"_b{slot.index} = {value}")
        with sb.block(
            f"if acc_m{slot.index} is None or _b{slot.index} < acc_m{slot.index}:"
        ):
            sb.line(f"acc_m{slot.index} = _b{slot.index}")
    elif slot.func is AggregateFunc.MAX:
        value = (
            f"float({operand.source}.max())"
            if operand.is_array
            else f"float({operand.source})"
        )
        sb.line(f"_b{slot.index} = {value}")
        with sb.block(
            f"if acc_x{slot.index} is None or _b{slot.index} > acc_x{slot.index}:"
        ):
            sb.line(f"acc_x{slot.index} = _b{slot.index}")


def _emit_agg_finalize(sb: SourceBuilder, slots: Sequence[_AggSlot]) -> None:
    """Turn accumulators into ``agg{i}`` scalars with empty-input rules."""
    _emit_agg_finalize_slots(sb, slots)


def _emit_agg_finalize_slots(
    sb: SourceBuilder, slots: Sequence[_AggSlot]
) -> None:
    for slot in slots:
        if slot.func is AggregateFunc.COUNT:
            sb.line(f"agg{slot.index} = float(cnt)")
        elif slot.func is AggregateFunc.SUM:
            sb.line(f"agg{slot.index} = acc_s{slot.index}")
        elif slot.func is AggregateFunc.AVG:
            sb.line(
                f"agg{slot.index} = (acc_s{slot.index} / cnt) "
                f"if cnt else float('nan')"
            )
        elif slot.func is AggregateFunc.MIN:
            sb.line(
                f"agg{slot.index} = acc_m{slot.index} "
                f"if acc_m{slot.index} is not None else float('nan')"
            )
        elif slot.func is AggregateFunc.MAX:
            sb.line(
                f"agg{slot.index} = acc_x{slot.index} "
                f"if acc_x{slot.index} is not None else float('nan')"
            )


def _scalar_state_expr(slot: _AggSlot) -> str:
    """Raw-accumulator source for one scalar slot's partial state.

    The morsel combiner's state contract per slot: COUNT carries None
    (the shared qualifying count covers it), SUM/AVG carry the float
    running sum, MIN/MAX carry float-or-None.
    """
    if slot.func is AggregateFunc.COUNT:
        return "None"
    if slot.func in (AggregateFunc.SUM, AggregateFunc.AVG):
        return f"acc_s{slot.index}"
    if slot.func is AggregateFunc.MIN:
        return f"acc_m{slot.index}"
    return f"acc_x{slot.index}"


def _emit_partial_return(
    sb: SourceBuilder, cnt_expr: str, state_exprs: Sequence[str]
) -> None:
    """Emit ``if partial: return (float(cnt), (state, ...))``."""
    states = "".join(f"{expr}, " for expr in state_exprs)
    with sb.block("if partial:"):
        sb.line(f"return (float({cnt_expr}), ({states}))")


def _finalize_expr_source(
    expr: Expr, agg_names: Dict[Aggregate, str], params: ParamRegistry
) -> str:
    """Inline scalar source for an output expression over aggregates."""
    if isinstance(expr, Aggregate):
        return agg_names[expr]
    if isinstance(expr, Literal):
        return params.register(expr.value)
    if isinstance(expr, Arithmetic):
        symbol = {
            ArithmeticOp.ADD: "+",
            ArithmeticOp.SUB: "-",
            ArithmeticOp.MUL: "*",
        }[expr.op]
        left = _finalize_expr_source(expr.left, agg_names, params)
        right = _finalize_expr_source(expr.right, agg_names, params)
        return f"({left} {symbol} {right})"
    raise CodegenError(
        f"unsupported output expression over aggregates: {expr.to_sql()}"
    )


def _emit_return_aggregates(
    sb: SourceBuilder,
    info: QueryInfo,
    slots: Sequence[_AggSlot],
    params: ParamRegistry,
) -> None:
    """Return ``((out0, out1, ...), cnt)``.

    Every aggregation template maintains a ``cnt`` accumulator (the
    number of qualifying tuples); returning it alongside the outputs
    lets the engine feed observed predicate selectivity back into the
    cost model even for aggregation queries, whose one-row result would
    otherwise hide the qualifying count.
    """
    agg_names = {slot.agg: f"agg{slot.index}" for slot in slots}
    outs = []
    for out in info.query.select:
        outs.append(
            f"float({_finalize_expr_source(out.expr, agg_names, params)})"
        )
    sb.line(f"return (({', '.join(outs)},), float(cnt))")


# --- Fused (volcano-style) templates -----------------------------------------


def _block_bindings(
    sb: SourceBuilder,
    providers: Dict[str, _Provider],
    attrs: Sequence[str],
    rows: str,
    prefix: str,
) -> Dict[str, Binding]:
    """Emit block-slice bindings for ``attrs``.

    2-D buffers get one shared block local (``blk{i}``) and per-column
    views carrying base/position provenance, enabling the compiler's
    row-sum fusion; 1-D buffers get one local each.
    """
    bindings: Dict[str, Binding] = {}
    blocks: Dict[int, str] = {}
    for position, attr in enumerate(attrs):
        provider = providers[attr]
        if provider.position is None:
            var = f"{prefix}{position}"
            sb.line(f"{var} = {_slice_source(provider, rows)}")
            bindings[attr] = Binding(
                source=var,
                dtype=provider.dtype,
                encoding=provider.encoding,
            )
            continue
        index = provider.buffer_index
        if index not in blocks:
            block_var = f"{prefix}blk{index}"
            sb.line(f"{block_var} = buf{index}[{rows}]")
            blocks[index] = block_var
        base = blocks[index]
        bindings[attr] = Binding(
            source=f"{base}[:, {provider.position}]",
            dtype=provider.dtype,
            base=base,
            position=provider.position,
        )
    return bindings


def _emit_compaction(
    sb: SourceBuilder,
    providers: Dict[str, _Provider],
    attrs: Sequence[str],
    rows: str,
    mask: str,
) -> Dict[str, Binding]:
    """Compact qualifying tuples per buffer with one row gather each.

    The position list is materialized once (``np.flatnonzero``) and each
    buffer's qualifying tuples are fetched with ``take(axis=0)`` — the
    group-layout analog of the paper's early tuple filtering, and
    several times faster than a boolean row gather per buffer.  Returns
    bindings of each attribute into its compacted block.
    """
    bindings: Dict[str, Binding] = {}
    compacted: Dict[object, str] = {}
    sb.line(f"idx = np.flatnonzero({mask})")
    # Buffers whose width far exceeds the query's needs (the row-major
    # case) are compacted column by column — copying 150-attribute
    # tuples to use 20 of them would dominate the query.
    needed_positions: Dict[int, set] = {}
    for attr in attrs:
        provider = providers[attr]
        if provider.position is not None:
            needed_positions.setdefault(
                provider.buffer_index, set()
            ).add(provider.position)
    for attr in attrs:
        provider = providers[attr]
        index = provider.buffer_index
        if (
            provider.position is not None
            and 2 * len(needed_positions[index]) < provider.width
        ):
            key = (index, provider.position)
            if key not in compacted:
                var = f"qc{index}_{provider.position}"
                sb.line(
                    f"{var} = buf{index}[{rows}, "
                    f"{provider.position}].take(idx)"
                )
                compacted[key] = var
            bindings[attr] = Binding(compacted[key], provider.dtype)
            continue
        if index not in compacted:
            var = f"qb{index}"
            if provider.position is None:
                sb.line(f"{var} = buf{index}[{rows}].take(idx)")
            else:
                sb.line(f"{var} = buf{index}[{rows}].take(idx, axis=0)")
            compacted[index] = var
        var = compacted[index]
        if provider.position is None:
            bindings[attr] = Binding(
                var, provider.dtype, encoding=provider.encoding
            )
        else:
            bindings[attr] = Binding(
                f"{var}[:, {provider.position}]",
                provider.dtype,
                base=var,
                position=provider.position,
            )
    return bindings


def _columnar_fast_path_applies(
    info: QueryInfo, slots, providers: Dict[str, _Provider]
) -> bool:
    """Whole-array axis reductions apply when there is no predicate and
    every aggregate is SUM/MIN/MAX/AVG/COUNT over a plain column.
    Encoded providers are excluded — reducing raw codes would be wrong;
    they take the blocked path, which decodes before accumulating."""
    if info.has_predicate:
        return False
    for slot in slots:
        if slot.func is AggregateFunc.COUNT:
            continue
        if not isinstance(slot.agg.arg, ColumnRef):
            return False
        if providers[slot.agg.arg.name].encoding is not None:
            return False
    return True


def _emit_columnar_aggregates(
    sb: SourceBuilder,
    info: QueryInfo,
    slots: Sequence[_AggSlot],
    providers: Dict[str, _Provider],
    params: ParamRegistry,
    plan: AccessPlan,
) -> None:
    """Specialized no-predicate aggregation: one contiguous axis-0
    reduction per (buffer, function) pair, then constant-position picks.

    For a group layout this is the single sequential pass of Fig. 5 —
    whole tuples stream through the cache once regardless of how many
    of the group's attributes are aggregated.
    """
    sb.line("cnt = n")
    with sb.block("if n == 0:"):
        empty_states = [
            "None"
            if slot.func is AggregateFunc.COUNT
            else (
                "0.0"
                if slot.func in (AggregateFunc.SUM, AggregateFunc.AVG)
                else "None"
            )
            for slot in slots
        ]
        _emit_partial_return(sb, "0", empty_states)
        _emit_agg_init(sb, slots)  # zero/None accumulators
        _emit_agg_finalize(sb, slots)
        _emit_return_aggregates(sb, info, slots, params)

    # Which buffers are *densely* aggregated?  A whole-buffer axis-0
    # reduction processes every column; it only pays off when most of
    # the buffer's columns are needed (the tailored-group case).  For a
    # wide buffer with few needed columns (row-major layout), reduce the
    # needed columns individually instead.
    needed_per_buffer: Dict[int, set] = {}
    for slot in slots:
        if slot.func is AggregateFunc.COUNT:
            continue
        provider = providers[slot.agg.arg.name]
        if provider.position is not None:
            needed_per_buffer.setdefault(
                provider.buffer_index, set()
            ).add(provider.position)
    # provider.buffer_index is a *flat* kernel-buffer index, which can
    # diverge from the layout index once multi-buffer (encoded) layouts
    # exist — width therefore comes from the provider, not the plan.
    widths: Dict[int, int] = {}
    for slot in slots:
        if slot.func is AggregateFunc.COUNT:
            continue
        provider = providers[slot.agg.arg.name]
        widths[provider.buffer_index] = provider.width
    dense_buffers = {
        index
        for index, positions in needed_per_buffer.items()
        if 2 * len(positions) >= widths[index]
    }

    kind_of = {
        AggregateFunc.SUM: "sum",
        AggregateFunc.AVG: "sum",
        AggregateFunc.MIN: "min",
        AggregateFunc.MAX: "max",
    }
    reductions = {}  # (buffer_index, kind) -> var name
    for slot in slots:
        if slot.func is AggregateFunc.COUNT:
            continue
        provider = providers[slot.agg.arg.name]
        kind = kind_of[slot.func]
        if (
            provider.position is not None
            and provider.buffer_index not in dense_buffers
        ):
            continue  # sparse buffer: reduced per slot below
        key = (provider.buffer_index, kind)
        if key not in reductions:
            var = f"red_{provider.buffer_index}_{kind}"
            reductions[key] = var
            buf = f"buf{provider.buffer_index}"
            if provider.position is None:
                if kind == "sum":
                    sb.line(f"{var} = {buf}.sum(dtype=np.float64)")
                else:
                    sb.line(f"{var} = {buf}.{kind}()")
            else:
                if kind == "sum":
                    # einsum reduces a C-order 2-D block ~4x faster than
                    # sum(axis=0); int64 accumulation is exact for the
                    # value ranges the engine stores (|v| < 2^31).
                    sb.line(f"{var} = np.einsum('ij->j', {buf})")
                else:
                    sb.line(f"{var} = {buf}.{kind}(axis=0)")
    for slot in slots:
        if slot.func is AggregateFunc.COUNT:
            sb.line(f"agg{slot.index} = float(n)")
            continue
        provider = providers[slot.agg.arg.name]
        kind = kind_of[slot.func]
        if (
            provider.position is not None
            and provider.buffer_index not in dense_buffers
        ):
            # Single strided-column reduction; no wasted compute on the
            # buffer's unneeded columns.
            column = f"buf{provider.buffer_index}[:, {provider.position}]"
            if kind == "sum":
                pick = f"{column}.sum(dtype=np.float64)"
            else:
                pick = f"{column}.{kind}()"
        else:
            var = reductions[(provider.buffer_index, kind)]
            pick = (
                var
                if provider.position is None
                else f"{var}[{provider.position}]"
            )
        if slot.func is AggregateFunc.AVG:
            # Keep the raw sum in its own local: the partial-state
            # contract carries sums, not averages (the combiner divides
            # by the global count once, matching serial semantics).
            sb.line(f"psum{slot.index} = float({pick})")
            sb.line(f"agg{slot.index} = psum{slot.index} / n")
        else:
            sb.line(f"agg{slot.index} = float({pick})")
    columnar_states = []
    for slot in slots:
        if slot.func is AggregateFunc.COUNT:
            columnar_states.append("None")
        elif slot.func is AggregateFunc.AVG:
            columnar_states.append(f"psum{slot.index}")
        else:
            columnar_states.append(f"agg{slot.index}")
    _emit_partial_return(sb, "cnt", columnar_states)
    _emit_return_aggregates(sb, info, slots, params)


_VEC_KIND = {
    AggregateFunc.SUM: "sum",
    AggregateFunc.AVG: "sum",
    AggregateFunc.MIN: "min",
    AggregateFunc.MAX: "max",
}


def _vectorizable_slots(
    info: QueryInfo,
    slots: Sequence[_AggSlot],
    providers: Dict[str, _Provider],
) -> List[_AggSlot]:
    """Filtered-scan slots that reduce a plain column of a 2-D buffer —
    these fold into one contiguous axis-0 reduction per (buffer, kind)
    over the compacted block instead of one strided pass each."""
    if not info.has_predicate:
        return []
    # Mirror the compaction rule: sparse buffers (width far beyond the
    # query's needs) are compacted per column, so no 2-D ``qb`` block
    # exists to reduce over.
    needed_positions: Dict[int, set] = {}
    for attr in info.select_attrs:
        provider = providers[attr]
        if provider.position is not None:
            needed_positions.setdefault(
                provider.buffer_index, set()
            ).add(provider.position)
    out = []
    for slot in slots:
        if slot.func not in _VEC_KIND:
            continue
        if not isinstance(slot.agg.arg, ColumnRef):
            continue
        provider = providers[slot.agg.arg.name]
        if provider.position is None:
            continue
        if 2 * len(needed_positions[provider.buffer_index]) < provider.width:
            continue
        out.append(slot)
    return out


def fused_aggregate_source(
    info: QueryInfo, plan: AccessPlan, block_rows: int
) -> Tuple[str, ParamRegistry]:
    """Generate the fused-scan aggregation kernel (cf. paper Fig. 5)."""
    params = ParamRegistry()
    providers = _assign_providers(plan.layouts, info.all_attrs)
    slots = [
        _AggSlot(i, agg)
        for i, agg in enumerate(collect_aggregates(info.query.select))
    ]
    sb = SourceBuilder()
    with sb.block(KERNEL_DEF):
        _emit_prelude(sb, providers)
        if _columnar_fast_path_applies(info, slots, providers):
            _emit_columnar_aggregates(
                sb, info, slots, providers, params, plan
            )
            return sb.render(), params

        vec_slots = _vectorizable_slots(info, slots, providers)
        vec_set = {slot.index for slot in vec_slots}
        scalar_slots = [s for s in slots if s.index not in vec_set]
        reductions: Dict[Tuple[int, str], str] = {}
        for slot in vec_slots:
            provider = providers[slot.agg.arg.name]
            key = (provider.buffer_index, _VEC_KIND[slot.func])
            if key not in reductions:
                var = f"vr_{key[0]}_{key[1]}"
                reductions[key] = var
                sb.line(f"{var} = None")

        sb.line("cnt = 0")
        _emit_agg_init_slots(sb, scalar_slots)
        with sb.block(f"for start in range(0, n, {block_rows}):"):
            sb.line(f"stop = min(start + {block_rows}, n)")
            rows = "start:stop"
            if info.has_predicate:
                where_bindings = _block_bindings(
                    sb, providers, info.where_attrs, rows, "w"
                )
                compiler = ExprCompiler(where_bindings, params)
                mask = compiler.compile_mask(info.query.where, sb)
                sb.line(f"k = int(np.count_nonzero({mask}))")
                with sb.block("if k == 0:"):
                    sb.line("continue")
                sb.line("cnt += k")
                # Compact whole tuples per buffer in one row gather (the
                # vectorized equivalent of Fig. 5's early filtering) and
                # bind attributes to the compacted, cache-hot block.
                agg_bindings = _emit_compaction(
                    sb, providers, info.select_attrs, rows, mask
                )
                # One contiguous axis-0 reduction per (buffer, kind).
                for (buffer_index, kind), var in reductions.items():
                    partial = sb.fresh("pr")
                    if kind == "sum":
                        sb.line(
                            f"{partial} = "
                            f"np.einsum('ij->j', qb{buffer_index})"
                        )
                        combine = f"{var} + {partial}"
                    else:
                        sb.line(f"{partial} = qb{buffer_index}.{kind}(axis=0)")
                        fn = "np.minimum" if kind == "min" else "np.maximum"
                        combine = f"{fn}({var}, {partial})"
                    sb.line(
                        f"{var} = {partial} if {var} is None else {combine}"
                    )
            else:
                sb.line("cnt += stop - start")
                agg_bindings = _block_bindings(
                    sb, providers, info.select_attrs, rows, "v"
                )
            if scalar_slots:
                agg_compiler = ExprCompiler(agg_bindings, params)
                count_var = "k" if info.has_predicate else "(stop - start)"
                for slot in scalar_slots:
                    _emit_agg_update(sb, slot, agg_compiler, count_var)
        partial_states = []
        for slot in slots:
            if slot.index in vec_set:
                provider = providers[slot.agg.arg.name]
                var = reductions[
                    (provider.buffer_index, _VEC_KIND[slot.func])
                ]
                pick = f"float({var}[{provider.position}])"
                if slot.func in (AggregateFunc.SUM, AggregateFunc.AVG):
                    partial_states.append(
                        f"({pick} if {var} is not None else 0.0)"
                    )
                else:
                    partial_states.append(
                        f"({pick} if {var} is not None else None)"
                    )
            else:
                partial_states.append(_scalar_state_expr(slot))
        _emit_partial_return(sb, "cnt", partial_states)
        _emit_agg_finalize_slots(sb, scalar_slots)
        for slot in vec_slots:
            provider = providers[slot.agg.arg.name]
            var = reductions[(provider.buffer_index, _VEC_KIND[slot.func])]
            pick = f"float({var}[{provider.position}])"
            if slot.func is AggregateFunc.SUM:
                sb.line(
                    f"agg{slot.index} = {pick} if {var} is not None else 0.0"
                )
            elif slot.func is AggregateFunc.AVG:
                sb.line(
                    f"agg{slot.index} = ({pick} / cnt) "
                    f"if cnt else float('nan')"
                )
            else:
                sb.line(
                    f"agg{slot.index} = {pick} "
                    f"if {var} is not None else float('nan')"
                )
        _emit_return_aggregates(sb, info, slots, params)
    return sb.render(), params


def _contiguous_run(positions: Sequence[int]) -> Optional[Tuple[int, int]]:
    """(lo, hi) when positions are a contiguous ascending run, else None."""
    if not positions:
        return None
    lo = positions[0]
    for offset, position in enumerate(positions):
        if position != lo + offset:
            return None
    return lo, lo + len(positions)


def fused_project_source(
    info: QueryInfo, plan: AccessPlan, block_rows: int, out_dtype: np.dtype
) -> Tuple[str, ParamRegistry]:
    """Generate the fused-scan projection kernel.

    When the query is a plain unfiltered projection whose attributes all
    sit in one group, the kernel degenerates to a single block copy —
    the best case the group layout was built for (Fig. 10a).
    """
    params = ParamRegistry()
    providers = _assign_providers(plan.layouts, info.all_attrs)
    outputs = info.query.select
    num_outputs = len(outputs)
    sb = SourceBuilder()
    with sb.block(KERNEL_DEF):
        _emit_prelude(sb, providers)

        plain = (
            not info.has_predicate
            and all(isinstance(out.expr, ColumnRef) for out in outputs)
        )
        if plain:
            buffer_indexes = {
                providers[out.expr.name].buffer_index for out in outputs
            }
            if len(buffer_indexes) == 1 and all(
                providers[out.expr.name].position is not None
                for out in outputs
            ):
                (buffer_index,) = buffer_indexes
                positions = [
                    providers[out.expr.name].position for out in outputs
                ]
                run = _contiguous_run(positions)
                # Always materialize a fresh output block (the engine's
                # contract): a contiguous slice copy is a plain memcpy.
                if run is not None:
                    lo, hi = run
                    source = f"buf{buffer_index}[:, {lo}:{hi}]"
                else:
                    source = f"buf{buffer_index}[:, {positions!r}]"
                sb.line(
                    f"out = {source}.astype(np.{out_dtype.name}, "
                    f"copy=True)"
                )
                sb.line("return out")
                return sb.render(), params

        if not info.has_predicate:
            # Known output size: fill one preallocated row-major array.
            sb.line(f"out = np.empty((n, {num_outputs}), dtype=np.{out_dtype.name})")
            with sb.block(f"for start in range(0, n, {block_rows}):"):
                sb.line(f"stop = min(start + {block_rows}, n)")
                bindings = _block_bindings(
                    sb, providers, info.select_attrs, "start:stop", "v"
                )
                compiler = ExprCompiler(bindings, params)
                sb.line("ob = out[start:stop]")
                for position, out in enumerate(outputs):
                    operand = compiler.compile_value(out.expr, sb)
                    sb.line(f"ob[:, {position}] = {operand.source}")
            sb.line("return out")
            return sb.render(), params

        # Filtered projection: unknown output size, collect compacted blocks.
        sb.line("out_blocks = []")
        with sb.block(f"for start in range(0, n, {block_rows}):"):
            sb.line(f"stop = min(start + {block_rows}, n)")
            rows = "start:stop"
            where_bindings = _block_bindings(
                sb, providers, info.where_attrs, rows, "w"
            )
            compiler = ExprCompiler(where_bindings, params)
            mask = compiler.compile_mask(info.query.where, sb)
            sb.line(f"k = int(np.count_nonzero({mask}))")
            with sb.block("if k == 0:"):
                sb.line("continue")
            out_bindings = _emit_compaction(
                sb, providers, info.select_attrs, rows, mask
            )
            out_compiler = ExprCompiler(out_bindings, params)
            sb.line(f"ob = np.empty((k, {num_outputs}), dtype=np.{out_dtype.name})")
            for position, out in enumerate(outputs):
                operand = out_compiler.compile_value(out.expr, sb)
                sb.line(f"ob[:, {position}] = {operand.source}")
            sb.line("out_blocks.append(ob)")
        with sb.block("if not out_blocks:"):
            sb.line(
                f"return np.empty((0, {num_outputs}), dtype=np.{out_dtype.name})"
            )
        sb.line("return np.concatenate(out_blocks, axis=0)")
    return sb.render(), params


# --- Late-materialization templates -------------------------------------------


def _emit_late_selection(
    sb: SourceBuilder,
    info: QueryInfo,
    providers: Dict[str, _Provider],
    params: ParamRegistry,
    count_only: bool = False,
) -> str:
    """Emit the selection-vector phase (cf. paper Fig. 6).

    Returns ``"sel"`` when a selection vector ``sel`` exists afterwards,
    ``"mask"`` when only a boolean mask ``qmask`` does, ``"none"`` when
    the query has no predicate.  Column bindings ``c{j}`` for all
    attributes are emitted first.

    ``count_only`` marks kernels that never gather qualifying rows
    (COUNT(*)-only aggregations): with a single conjunct the position
    list would be built just to take its length, so the kernel keeps the
    boolean mask instead and counts it directly — the dominant
    ``np.flatnonzero`` pass disappears from the scan.
    """
    for position, attr in enumerate(info.all_attrs):
        provider = providers[attr]
        sb.line(f"c{position} = {_slice_source(provider, ':')}")
    if not info.has_predicate:
        return "none"
    column_index = {attr: i for i, attr in enumerate(info.all_attrs)}
    predicates = info.query.predicates
    if count_only and len(predicates) == 1:
        (conjunct,) = predicates
        bindings = {
            attr: Binding(
                f"c{column_index[attr]}",
                providers[attr].dtype,
                encoding=providers[attr].encoding,
            )
            for attr in conjunct.columns()
        }
        compiler = ExprCompiler(bindings, params, fused=False)
        mask = compiler.compile_mask(conjunct, sb)
        sb.line(f"qmask = {mask}")
        return "mask"
    have_sel = False
    for conjunct in predicates:
        bindings: Dict[str, Binding] = {}
        for attr in sorted(conjunct.columns(), key=column_index.__getitem__):
            provider = providers[attr]
            base = f"c{column_index[attr]}"
            if have_sel:
                # Fetch qualifying values into a new intermediate column
                # (for an encoded provider these are gathered *codes*;
                # the compiler filters or decodes them as needed).
                var = sb.fresh("g")
                sb.line(f"{var} = {base}[sel]")
                bindings[attr] = Binding(
                    var, provider.dtype, encoding=provider.encoding
                )
            else:
                bindings[attr] = Binding(
                    base, provider.dtype, encoding=provider.encoding
                )
        compiler = ExprCompiler(bindings, params, fused=False)
        mask = compiler.compile_mask(conjunct, sb)
        if have_sel:
            sb.line(f"sel = sel[{mask}]")
        else:
            sb.line(f"sel = np.flatnonzero({mask})")
            have_sel = True
    return "sel"


def late_aggregate_source(
    info: QueryInfo, plan: AccessPlan
) -> Tuple[str, ParamRegistry]:
    """Generate the late-materialization aggregation kernel (Fig. 6)."""
    params = ParamRegistry()
    providers = _assign_providers(plan.layouts, info.all_attrs)
    slots = [
        _AggSlot(i, agg)
        for i, agg in enumerate(collect_aggregates(info.query.select))
    ]
    column_index = {attr: i for i, attr in enumerate(info.all_attrs)}
    sb = SourceBuilder()
    with sb.block(KERNEL_DEF):
        _emit_prelude(sb, providers)
        sel_mode = _emit_late_selection(
            sb, info, providers, params, count_only=not info.select_attrs
        )
        has_sel = sel_mode == "sel"
        _emit_agg_init(sb, slots)
        if sel_mode == "sel":
            sb.line("cnt = int(sel.shape[0])")
        elif sel_mode == "mask":
            sb.line("cnt = int(np.count_nonzero(qmask))")
        else:
            sb.line("cnt = n")
        with sb.block("if cnt != 0:"):
            # COUNT(*)-only queries need no gathers or updates; keep the
            # guarded block syntactically valid.
            sb.line("pass")
            bindings: Dict[str, Binding] = {}
            for position, attr in enumerate(info.select_attrs):
                provider = providers[attr]
                base = f"c{column_index[attr]}"
                if has_sel:
                    var = f"q{position}"
                    sb.line(f"{var} = {base}[sel]")
                    bindings[attr] = Binding(
                        var, provider.dtype, encoding=provider.encoding
                    )
                else:
                    bindings[attr] = Binding(
                        base, provider.dtype, encoding=provider.encoding
                    )
            compiler = ExprCompiler(bindings, params, fused=False)
            for slot in slots:
                _emit_agg_update(sb, slot, compiler, "cnt")
        _emit_partial_return(
            sb, "cnt", [_scalar_state_expr(slot) for slot in slots]
        )
        _emit_agg_finalize(sb, slots)
        _emit_return_aggregates(sb, info, slots, params)
    return sb.render(), params


def late_project_source(
    info: QueryInfo, plan: AccessPlan, out_dtype: np.dtype
) -> Tuple[str, ParamRegistry]:
    """Generate the late-materialization projection kernel."""
    params = ParamRegistry()
    providers = _assign_providers(plan.layouts, info.all_attrs)
    outputs = info.query.select
    num_outputs = len(outputs)
    column_index = {attr: i for i, attr in enumerate(info.all_attrs)}
    sb = SourceBuilder()
    with sb.block(KERNEL_DEF):
        _emit_prelude(sb, providers)
        has_sel = _emit_late_selection(sb, info, providers, params) == "sel"
        sb.line(f"cnt = {'int(sel.shape[0])' if has_sel else 'n'}")
        bindings: Dict[str, Binding] = {}
        for position, attr in enumerate(info.select_attrs):
            provider = providers[attr]
            base = f"c{column_index[attr]}"
            if has_sel:
                var = f"q{position}"
                sb.line(f"{var} = {base}[sel]")
                bindings[attr] = Binding(
                    var, provider.dtype, encoding=provider.encoding
                )
            else:
                bindings[attr] = Binding(
                    base, provider.dtype, encoding=provider.encoding
                )
        compiler = ExprCompiler(bindings, params, fused=False)
        sb.line(f"out = np.empty((cnt, {num_outputs}), dtype=np.{out_dtype.name})")
        for position, out in enumerate(outputs):
            operand = compiler.compile_value(out.expr, sb)
            sb.line(f"out[:, {position}] = {operand.source}")
        sb.line("return out")
    return sb.render(), params


def build_source(
    info: QueryInfo, plan: AccessPlan, block_rows: int, out_dtype: np.dtype
) -> Tuple[str, ParamRegistry]:
    """Dispatch to the right template for (strategy, query shape)."""
    if plan.strategy is ExecutionStrategy.FUSED:
        if info.is_aggregation:
            return fused_aggregate_source(info, plan, block_rows)
        return fused_project_source(info, plan, block_rows, out_dtype)
    if info.is_aggregation:
        return late_aggregate_source(info, plan)
    return late_project_source(info, plan, out_dtype)
