"""On-the-fly operator generation (paper section 3.4).

H2O refuses to pay generic-operator interpretation overhead: for each
(query shape, layout combination, strategy) it generates *specialized
source code* — attribute positions, predicate chains and arithmetic
pipelines bound as constants — compiles it, and caches the compiled
operator for reuse by future queries.

The paper emits C++ through macro templates and compiles with icc; we
emit Python/numpy through source templates and compile with
:func:`compile`.  The pipeline is the same: template selection →
specialization → compilation → dynamic linking (namespace injection) →
operator cache.  Generation+compilation time is measured and charged to
the triggering query, exactly as the paper charges its 10–150 ms.

Literals are lifted into runtime parameters so that queries differing
only in constants share one compiled operator (the paper passes ``val1``
/ ``val2`` as arguments for the same reason — see Fig. 5 and 6).
"""

from .cache import OperatorCache
from .compile import compile_kernel
from .generator import GeneratedOperator, generate_operator, operator_source
from .source import SourceBuilder

__all__ = [
    "OperatorCache",
    "compile_kernel",
    "GeneratedOperator",
    "generate_operator",
    "operator_source",
    "SourceBuilder",
]
