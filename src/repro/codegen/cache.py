"""The operator cache.

"To minimize the overhead of code generation, H2O stores newly generated
operators into a cache.  If the same operator is requested by a future
query, H2O accesses it directly from the cache." (paper section 3.4)

Keys are structural: masked query shape (literals replaced by ``?``),
execution strategy, and the exact layout-combination signature.  Two
queries differing only in constants therefore share one compiled kernel,
with the constants passed as runtime parameters.

The cache is bounded: beyond ``capacity`` entries the least-recently
used operator is evicted (a long-running engine serving a drifting
workload would otherwise accumulate one compiled kernel per shape ×
layout combination it ever saw).  ``capacity = 0`` means unbounded.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional, Tuple


@dataclass
class CacheEntry:
    """One compiled operator and its provenance."""

    kernel: Callable
    source: str
    filename: str
    #: Seconds spent generating + compiling this operator originally.
    build_seconds: float = 0.0
    uses: int = 0


@dataclass
class OperatorCache:
    """Maps operator signatures to compiled kernels (bounded LRU)."""

    enabled: bool = True
    #: Maximum number of cached operators; 0 means unbounded.
    capacity: int = 0
    _entries: "OrderedDict[Hashable, CacheEntry]" = field(
        default_factory=OrderedDict
    )
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def lookup(self, key: Hashable) -> Optional[CacheEntry]:
        """The cached entry for ``key``, counting hit/miss statistics."""
        if not self.enabled:
            self.misses += 1
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)  # most recently used
        self.hits += 1
        entry.uses += 1
        return entry

    def store(self, key: Hashable, entry: CacheEntry) -> None:
        if not self.enabled:
            return
        self._entries[key] = entry
        self._entries.move_to_end(key)
        if self.capacity > 0:
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> Tuple[int, int, int, int]:
        """(cached operators, hits, misses, evictions)."""
        return len(self._entries), self.hits, self.misses, self.evictions
