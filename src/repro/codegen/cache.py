"""The operator cache.

"To minimize the overhead of code generation, H2O stores newly generated
operators into a cache.  If the same operator is requested by a future
query, H2O accesses it directly from the cache." (paper section 3.4)

Keys are structural: masked query shape (literals replaced by ``?``),
execution strategy, and the exact layout-combination signature.  Two
queries differing only in constants therefore share one compiled kernel,
with the constants passed as runtime parameters.

The cache is bounded: beyond ``capacity`` entries the least-recently
used operator is evicted (a long-running engine serving a drifting
workload would otherwise accumulate one compiled kernel per shape ×
layout combination it ever saw).  ``capacity = 0`` means unbounded.

**Thread safety.**  One operator cache is shared by all workers of the
concurrent query service (codegen happens *outside* the engine's
decision lock so compilation never stalls other queries' planning), so
every operation — including the LRU reordering a lookup performs — runs
under an internal lock.  Two workers racing to compile the same key do
redundant work once; both stores are consistent and the last one wins.
:meth:`stats` and :meth:`stats_dict` return defensive copies.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Optional, Tuple


@dataclass
class CacheEntry:
    """One compiled operator and its provenance."""

    kernel: Callable
    source: str
    filename: str
    #: Seconds spent generating + compiling this operator originally.
    build_seconds: float = 0.0
    uses: int = 0


@dataclass
class OperatorCache:
    """Maps operator signatures to compiled kernels (bounded LRU).

    All methods are safe to call from multiple threads.
    """

    enabled: bool = True
    #: Maximum number of cached operators; 0 means unbounded.
    capacity: int = 0
    _entries: "OrderedDict[Hashable, CacheEntry]" = field(
        default_factory=OrderedDict
    )
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def lookup(self, key: Hashable) -> Optional[CacheEntry]:
        """The cached entry for ``key``, counting hit/miss statistics."""
        with self._lock:
            if not self.enabled:
                self.misses += 1
                return None
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)  # most recently used
            self.hits += 1
            entry.uses += 1
            return entry

    def store(self, key: Hashable, entry: CacheEntry) -> None:
        with self._lock:
            if not self.enabled:
                return
            self._entries[key] = entry
            self._entries.move_to_end(key)
            if self.capacity > 0:
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries(self) -> Tuple[Tuple[Hashable, CacheEntry], ...]:
        """A consistent (key, entry) copy for auditing.

        The testkit oracle walks this to assert key/source agreement:
        every cached kernel must still carry the exact source it was
        compiled from (``kernel.__h2o_source__ == entry.source``), so a
        cache corruption or a kernel swapped under a stale key is
        caught the moment it happens.
        """
        with self._lock:
            return tuple(self._entries.items())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> Tuple[int, int, int, int]:
        """(cached operators, hits, misses, evictions).

        A consistent immutable copy taken under the lock — never a view
        of live internal state.
        """
        with self._lock:
            return (
                len(self._entries),
                self.hits,
                self.misses,
                self.evictions,
            )

    def stats_dict(self) -> Dict[str, int]:
        """Named counters as a fresh (defensive) dict."""
        size, hits, misses, evictions = self.stats()
        return {
            "size": size,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
        }
